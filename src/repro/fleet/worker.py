"""One fleet worker: a crash-isolated process running one machine.

The worker owns at most one job machine (built per job) plus one
resident RSP debug session (built lazily when the mux routes a client
here), both fully inside this process — a crash takes down *one*
worker, never the fleet.  All communication with the supervisor runs
over a single duplex pipe carrying JSON-compatible dicts:

supervisor → worker:
  ``{"op": "job", "id", "kind", "params", "attempt", "spool",
     "resume"}`` — run a job (``resume`` replays journals first);
  ``{"op": "rsp", "data": <hex>}`` — client bytes for the resident
  debug session;  ``{"op": "rsp-detach"}`` — the mux client left;
  ``{"op": "ping"}``, ``{"op": "stop"}`` — liveness / graceful exit;
  ``{"op": "hang"}`` / ``{"op": "crash"}`` — fault hooks for
  supervision tests (silent heartbeat stop / ``os._exit(3)``).

worker → supervisor:
  ``{"ev": "hello", "pid"}`` once ready;
  ``{"ev": "heartbeat", "seq", "job", "progress", "metrics"}`` every
  ``heartbeat_interval`` seconds, carrying the worker's whole
  :func:`~repro.obs.metrics.global_registry` snapshot — health and
  observability ride the same message;
  ``{"ev": "result", "id", "ok", "value" | "error"}`` per job;
  ``{"ev": "rsp", "data": <hex>}`` — target bytes for the mux.

``exec-slices`` is the *recoverable* job kind: it runs a deterministic
guest in fixed instruction slices under a :class:`FlightRecorder`
spooling to disk (fsync at every frame boundary), one checkpoint
digest per slice.  When the supervisor restarts a killed worker it
sends the journal paths in ``resume``: the worker replays the original
journal (relaxed), re-applies any continuation journals, verifies it
landed on the recorded digest, then seeds a fresh recorder with the
replayer's rolling t2h digest and keeps going — the resumed run's
checkpoint digests are byte-identical to an uninterrupted run's.
"""

from __future__ import annotations

import os
import signal
import sys
import time
from typing import Dict, List, Optional

#: Pump quanta granted to the resident RSP session per inbound batch.
RSP_PUMP_CREDIT = 50
#: Pipe poll interval when idle (seconds); busy loops poll at 0.
IDLE_POLL_S = 0.02


def _ensure_path(cfg: Dict) -> None:
    for entry in cfg.get("sys_path", []):
        if entry not in sys.path:
            sys.path.insert(0, entry)


# ----------------------------------------------------------------------
# Job implementations
# ----------------------------------------------------------------------

def _exec_guest_program(params: Dict):
    """The deterministic exec-slices guest: an endless NOP loop, so a
    slice of N instructions always retires exactly N."""
    from repro.asm import assemble
    from repro.hw import firmware
    body = params.get("guest_body", "loop:\n    NOP\n    JMP loop")
    return assemble(f".org {firmware.GUEST_KERNEL_BASE}\n{body}\n")


class ExecSlices:
    """A recoverable deterministic execution campaign.

    Fresh: build machine + LVMM, attach a spooling recorder *before*
    boot, then run ``slices`` slices of ``slice_insns`` instructions,
    checkpointing every slice.  Resumed: rebuild from the journals,
    then continue the remaining slices under a continuation recorder.
    ``think_ms`` sleeps between slices model interactive client think
    time (and release the GIL, which is what the fleet scaling bench
    measures).
    """

    def __init__(self, params: Dict, spool: Optional[str] = None,
                 resume: Optional[Dict] = None,
                 spool_fsync: bool = True) -> None:
        self.params = params
        self.slices = int(params.get("slices", 8))
        self.slice_insns = int(params.get("slice_insns", 2000))
        self.think_ms = float(params.get("think_ms", 0.0))
        self.record = bool(params.get("record", True))
        self.digests: List[str] = []
        self.done = 0
        self.resumed = resume is not None
        self.recorder = None
        if resume is not None:
            self._build_resumed(resume, spool_fsync)
        else:
            self._build_fresh(spool, spool_fsync)

    # -- construction --------------------------------------------------------

    def _build_fresh(self, spool: Optional[str],
                     spool_fsync: bool) -> None:
        from repro.hw.machine import Machine, MachineConfig
        from repro.vmm.monitor import LightweightVmm
        self.machine = Machine(MachineConfig())
        self.monitor = LightweightVmm(self.machine)
        self.monitor.install()
        program = _exec_guest_program(self.params)
        if self.record:
            from repro.replay.recorder import FlightRecorder
            self.recorder = FlightRecorder(
                self.machine, self.monitor, program=program,
                scenario="fleet-exec",
                seed=self.params.get("seed"),
                checkpoint_every=1, spool=spool,
                spool_fsync=spool_fsync)
        program.load_into(self.machine.memory)
        self.monitor.boot_guest(program.origin)
        self.monitor.stopped = True

    def _build_resumed(self, resume: Dict, spool_fsync: bool) -> None:
        from repro.replay.digest import state_digest
        from repro.replay.journal import load_journal
        from repro.replay.recorder import FlightRecorder
        from repro.replay.replayer import Replayer

        journal = load_journal(resume["journal"])
        replayer = Replayer(journal, strict=False)
        replayer.run()
        replayer.detach()
        self.machine = replayer.machine
        self.monitor = replayer.monitor
        digests = [frame.data["digest"] for frame in journal.frames
                   if frame.kind == "checkpoint"]
        runs = sum(1 for frame in journal.frames
                   if frame.kind == "run")
        for path in resume.get("continuations", []):
            applied, extra = self._apply_continuation(path)
            runs += applied
            digests.extend(extra)
        if len(digests) < runs:
            # Killed between a run frame and its checkpoint: the state
            # is still exact, only the digest frame is missing —
            # recompute it from the rebuilt machine.
            digests.append(state_digest(
                self.machine, self.monitor,
                extra={"t2h": [replayer._t2h_count,
                               replayer._t2h.hexdigest()[:16]]}))
        self.digests = digests[:runs]
        self.done = runs
        self.recorder = FlightRecorder(
            self.machine, self.monitor, scenario="fleet-exec-cont",
            seed=self.params.get("seed"), checkpoint_every=1,
            spool=resume.get("spool"), spool_fsync=spool_fsync)
        self.recorder.seed_t2h(replayer._t2h_count, replayer._t2h)

    def _apply_continuation(self, path: str):
        """Re-drive run frames of a continuation journal (a spool that
        began mid-stream, so it has no bootable header of its own)."""
        from repro.errors import TripleFault
        from repro.replay.journal import load_journal
        journal = load_journal(path)
        applied, digests = 0, []
        for frame in journal.frames:
            kind = frame.kind
            if kind == "run":
                self.monitor.stopped = frame.data["pre_stopped"]
                try:
                    self.monitor.run(frame.data["max"])
                except TripleFault as fault:
                    self.monitor._guest_died(str(fault))
                applied += 1
            elif kind == "checkpoint":
                digests.append(frame.data["digest"])
            elif kind in ("uart-rx", "wild-write", "spurious-irq"):
                raise RuntimeError(
                    "continuation journal contains input frames; "
                    "only input-free workloads are resumable")
        return applied, digests

    # -- stepping ------------------------------------------------------------

    @property
    def finished(self) -> bool:
        return self.done >= self.slices

    def step(self) -> None:
        """One slice: run, checkpoint, think."""
        from repro.errors import TripleFault
        self.monitor.stopped = False
        try:
            self.monitor.run(self.slice_insns)
        except TripleFault as fault:
            self.monitor._guest_died(str(fault))
        if self.recorder is not None:
            # checkpoint_every=1 fired inside run-end; the digest is
            # the newest checkpoint frame.
            self.digests.append(self.recorder.frames[-1].data["digest"])
        self.done += 1
        if self.think_ms > 0:
            time.sleep(self.think_ms / 1000.0)

    def result(self) -> Dict:
        if self.recorder is not None and not self.recorder.finished:
            self.recorder.finish()
        return {"slices": self.done,
                "instret": self.machine.cpu.instret,
                "digests": self.digests,
                "resumed": self.resumed}


def run_exec_slices(params: Dict) -> Dict:
    """In-process reference run (tests and benchmarks compare against
    this uninterrupted execution)."""
    job = ExecSlices(params)
    while not job.finished:
        job.step()
    return job.result()


def _run_chaos(params: Dict) -> Dict:
    from repro.faults.campaign import run_scenario
    result = run_scenario(params.get("scenario", "wild-writes"),
                          int(params.get("seed", 1234)),
                          record=bool(params.get("record", False)))
    return {"scenario": result["scenario"], "seed": result["seed"],
            "ok": result["ok"], "violations": result["violations"],
            "trace_digest": result["trace_digest"]}


def _run_replay(params: Dict) -> Dict:
    from repro.replay import bisect_divergence, load_journal, \
        replay_journal
    journal = load_journal(params["journal"])
    if params.get("bisect"):
        report = bisect_divergence(journal)
        return {"bisect": report.to_dict() if report else None}
    result = replay_journal(journal,
                            strict=bool(params.get("strict", True)))
    return result.stats()


def _run_stream(params: Dict) -> Dict:
    from repro.faults.campaign import _run_streaming
    machine, guest = _run_streaming(lambda m: None)
    return {"segments_sent": guest.segments_sent,
            "cycles": machine.queue.now}


def _run_noop(params: Dict, attempt: int) -> Dict:
    """Scheduling-test job: optionally sleep, optionally fail early
    attempts so retry/backoff paths can be exercised."""
    sleep_ms = float(params.get("sleep_ms", 0))
    if sleep_ms:
        time.sleep(sleep_ms / 1000.0)
    fail_below = int(params.get("fail_below_attempt", 0))
    if attempt < fail_below:
        raise RuntimeError(f"scripted failure on attempt {attempt}")
    return {"attempt": attempt}


# ----------------------------------------------------------------------
# The worker loop
# ----------------------------------------------------------------------

class FleetWorker:
    """Event loop around the command pipe."""

    def __init__(self, conn, worker_id: int, cfg: Dict) -> None:
        self.conn = conn
        self.worker_id = worker_id
        self.cfg = cfg
        self.hb_interval = float(cfg.get("heartbeat_interval", 0.1))
        self.spool_fsync = bool(cfg.get("spool_fsync", True))
        self.session = None
        self.rsp_credit = 0
        self.job: Optional[ExecSlices] = None
        self.job_id: Optional[str] = None
        self.heartbeats = 0
        self._mute_heartbeats = False
        self._stop = False
        from repro.obs.metrics import global_registry
        registry = global_registry()
        #: Distributed tracing (supervisor opted in via cfg["trace"]):
        #: spans land on a local bus and ship with heartbeats/results.
        self.spans = None
        self._rsp_parent: Optional[str] = None
        if cfg.get("trace"):
            from repro.obs.distributed.spans import WorkerSpanRecorder
            self.spans = WorkerSpanRecorder(worker_id,
                                            registry=registry)
        self._jobs_done = registry.counter("worker.jobs.completed")
        self._jobs_failed = registry.counter("worker.jobs.failed")
        self._slices = registry.counter("worker.slices.executed")
        self._rsp_in = registry.counter("worker.rsp.bytes_in")
        self._rsp_out = registry.counter("worker.rsp.bytes_out")
        signal.signal(signal.SIGTERM, self._on_sigterm)

    # -- signals -------------------------------------------------------------

    def _on_sigterm(self, _signum, _frame) -> None:
        # Seal the spool so a politely-terminated worker leaves a
        # clean journal, then exit with the SIGTERM convention.
        job = self.job
        if job is not None and job.recorder is not None \
                and job.recorder.writer is not None:
            job.recorder.writer.close()
        os._exit(143)

    # -- plumbing ------------------------------------------------------------

    def _send(self, event: Dict) -> None:
        try:
            self.conn.send(event)
        except (BrokenPipeError, OSError):
            # Supervisor is gone; nothing left to serve.
            os._exit(0)

    def _heartbeat(self) -> None:
        if self._mute_heartbeats:
            return
        from repro.obs.metrics import global_registry
        self.heartbeats += 1
        event = {"ev": "heartbeat", "seq": self.heartbeats,
                 "job": self.job_id,
                 "progress": self.job.done if self.job else 0,
                 "metrics": global_registry().snapshot()}
        if self.spans is not None:
            batch = self.spans.drain()
            if batch:
                event["spans"] = batch
        self._send(event)

    # -- the resident debug session ------------------------------------------

    def _ensure_session(self):
        if self.session is not None:
            return self.session
        from repro.debugger.gdbserver import _build_session
        self.session = _build_session(self.cfg.get("guest", "kernel"))
        self.session.monitor.fleet_info = {
            "worker": self.worker_id,
            "pid": os.getpid(),
            "guest": self.cfg.get("guest", "kernel"),
        }
        return self.session

    def _pump_session(self) -> None:
        sess = self.session
        if sess is None:
            return
        running = not sess.monitor.stopped \
            and not sess.monitor.guest_dead
        if self.rsp_credit <= 0 and not running:
            return
        sess._pump()
        if self.rsp_credit > 0:
            self.rsp_credit -= 1
        out = sess._host_port.recv()
        if out:
            self._rsp_out.inc(len(out))
            if self.spans is not None and self.spans.rsp_ctx is not None:
                self.spans.note_rsp("out", len(out),
                                    sess.monitor.machine)
            self._send({"ev": "rsp", "data": out.hex()})

    # -- command dispatch ----------------------------------------------------

    def _start_job(self, message: Dict) -> None:
        self.job_id = message["id"]
        kind = message["kind"]
        params = message.get("params", {})
        attempt = int(message.get("attempt", 1))
        trace = message.get("trace") if self.spans is not None else None
        try:
            if kind == "exec-slices":
                self.job = ExecSlices(params,
                                      spool=message.get("spool"),
                                      resume=message.get("resume"),
                                      spool_fsync=self.spool_fsync)
                if trace:
                    self.spans.start_job(trace, self.job_id,
                                         machine=self.job.machine)
                return   # stepped from the main loop
            if trace:
                # Synchronous kinds have no job machine of their own;
                # the span anchors the trace at clock 0.
                self.spans.start_job(trace, self.job_id)
            if kind == "chaos":
                value = _run_chaos(params)
            elif kind == "replay":
                value = _run_replay(params)
            elif kind == "stream":
                value = _run_stream(params)
            elif kind == "noop":
                value = _run_noop(params, attempt)
            else:
                raise ValueError(f"unknown job kind {kind!r}")
        except Exception as exc:   # noqa: BLE001 — crash isolation
            self._finish_job(ok=False, error=f"{type(exc).__name__}: "
                                             f"{exc}")
            return
        self._finish_job(ok=True, value=value)

    def _finish_job(self, ok: bool, value: Optional[Dict] = None,
                    error: Optional[str] = None) -> None:
        event = {"ev": "result", "id": self.job_id, "ok": ok}
        if ok:
            event["value"] = value
            self._jobs_done.inc()
        else:
            event["error"] = error
            self._jobs_failed.inc()
        # The result is the flush point: the closing metrics snapshot
        # (and, when tracing, the remaining spans) travel with the
        # outcome, so the supervisor's fleet view of a finished job is
        # complete (and deterministic) without waiting for a heartbeat.
        from repro.obs.metrics import global_registry
        if self.spans is not None:
            machine = getattr(self.job, "machine", None)
            self.spans.finish_job(ok, machine=machine)
            event["spans"] = self.spans.drain()
        event["metrics"] = global_registry().snapshot()
        self.job = None
        self.job_id = None
        self._send(event)

    def _handle(self, message: Dict) -> None:
        op = message.get("op")
        if op == "job":
            if self.job_id is not None:
                self._send({"ev": "result", "id": message["id"],
                            "ok": False,
                            "error": "worker already busy"})
                return
            self._start_job(message)
        elif op == "rsp":
            data = bytes.fromhex(message["data"])
            self._rsp_in.inc(len(data))
            self._ensure_session()._host_port.send(data)
            self.rsp_credit = RSP_PUMP_CREDIT
            if self.spans is not None:
                encoded = message.get("trace")
                if encoded and encoded != self._rsp_parent:
                    self._rsp_parent = encoded
                    self.spans.bind_rsp(encoded)
                if self.spans.rsp_ctx is not None:
                    self.spans.note_rsp(
                        "in", len(data), self.session.monitor.machine)
        elif op == "rsp-detach":
            self.rsp_credit = 0
            self._rsp_parent = None
            if self.spans is not None:
                self.spans.rsp_ctx = None
        elif op == "ping":
            self._send({"ev": "pong"})
        elif op == "stop":
            self._stop = True
        elif op == "hang":
            # Supervision-test hook: stay alive, go silent.
            self._mute_heartbeats = True
        elif op == "crash":
            os._exit(3)

    def _step_job(self) -> None:
        """One job slice, wrapped in a traced span when tracing is on."""
        job = self.job
        spans = self.spans
        traced = spans is not None and spans.job_ctx is not None
        if traced:
            machine = job.machine
            start_cycle = spans.clock(machine)
            start_instret = machine.cpu.instret
        job.step()
        if traced:
            spans.note_slice(job.done - 1, start_cycle,
                             spans.clock(machine),
                             machine.cpu.instret - start_instret)
        self._slices.inc()
        if job.finished:
            self._finish_job(ok=True, value=job.result())

    # -- main loop -----------------------------------------------------------

    def run(self) -> int:
        self._send({"ev": "hello", "pid": os.getpid(),
                    "worker": self.worker_id})
        last_hb = time.monotonic()
        while not self._stop:
            busy = self.job is not None or self.rsp_credit > 0 \
                or (self.session is not None
                    and not self.session.monitor.stopped
                    and not self.session.monitor.guest_dead)
            timeout = 0 if busy else IDLE_POLL_S
            try:
                while self.conn.poll(timeout):
                    self._handle(self.conn.recv())
                    timeout = 0
            except (EOFError, OSError):
                break   # supervisor went away
            if self.job is not None:
                try:
                    self._step_job()
                except Exception as exc:   # noqa: BLE001
                    self._finish_job(
                        ok=False,
                        error=f"{type(exc).__name__}: {exc}")
            self._pump_session()
            now = time.monotonic()
            if now - last_hb >= self.hb_interval:
                self._heartbeat()
                last_hb = now
        job = self.job
        if job is not None and job.recorder is not None \
                and job.recorder.writer is not None:
            job.recorder.writer.close()
        self._send({"ev": "bye"})
        return 0


def worker_main(conn, worker_id: int, cfg: Dict) -> None:
    """Spawn entry point (must stay module-level picklable)."""
    _ensure_path(cfg)
    worker = FleetWorker(conn, worker_id, cfg)
    sys.exit(worker.run())
