"""Fleet control protocol: one JSON request per TCP connection.

The ``repro-fleet`` CLI's status/submit/drain/kill verbs talk to a
running fleet through this socket.  The protocol is deliberately
minimal — connect, send one JSON object terminated by a newline, read
one JSON reply until EOF:

    {"op": "status"}
    {"op": "submit", "job": {"kind": "chaos", "params": {...},
                             "priority": 7, "timeout_s": 120}}
    {"op": "drain"}
    {"op": "kill", "worker": 2}
    {"op": "slo"}

Replies always carry ``"ok"``; errors carry ``"error"`` instead of
crashing the control plane.  The server is polled from the fleet's
owner loop, same as the mux — no threads.
"""

from __future__ import annotations

import json
import socket
from typing import Dict, List, Tuple

from repro.fleet.dashboard import build_dashboard
from repro.fleet.jobs import Job, RetrySchedule


class ControlServer:
    """Non-blocking one-shot request/response listener."""

    def __init__(self, fleet, host: str = "127.0.0.1",
                 port: int = 0) -> None:
        self.fleet = fleet
        self._listener = socket.socket(socket.AF_INET,
                                       socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET,
                                  socket.SO_REUSEADDR, 1)
        self._listener.bind((host, port))
        self._listener.listen(8)
        self._listener.setblocking(False)
        self.address = self._listener.getsockname()
        self._pending: List[Tuple[socket.socket, bytearray]] = []
        self.requests = 0

    def poll(self) -> None:
        while True:
            try:
                conn, _ = self._listener.accept()
            except (BlockingIOError, OSError):
                break
            conn.setblocking(False)
            self._pending.append((conn, bytearray()))
        still_pending = []
        for conn, buffer in self._pending:
            try:
                chunk = conn.recv(65536)
            except BlockingIOError:
                still_pending.append((conn, buffer))
                continue
            except OSError:
                conn.close()
                continue
            if chunk:
                buffer.extend(chunk)
            if b"\n" not in buffer and chunk:
                still_pending.append((conn, buffer))
                continue
            self._respond(conn, bytes(buffer))
        self._pending = still_pending

    def _respond(self, conn: socket.socket, raw: bytes) -> None:
        try:
            request = json.loads(raw.decode("utf-8"))
            reply = self._handle(request)
        except Exception as exc:   # noqa: BLE001 — keep serving
            reply = {"ok": False,
                     "error": f"{type(exc).__name__}: {exc}"}
        try:
            conn.sendall(json.dumps(reply).encode("utf-8") + b"\n")
        except OSError:
            pass
        conn.close()
        self.requests += 1

    def _handle(self, request: Dict) -> Dict:
        op = request.get("op")
        if op == "status":
            return {"ok": True, "status": self.fleet.status(),
                    "dashboard": build_dashboard(self.fleet)}
        if op == "submit":
            spec = request.get("job", {})
            record = self.fleet.submit(job_from_spec(spec))
            return {"ok": True, "id": record.id}
        if op == "drain":
            self.fleet.drain()
            return {"ok": True, "jobs": self.fleet.queue.counts()}
        if op == "slo":
            import time
            return {"ok": True,
                    "slo": self.fleet.obs.slo_status(time.monotonic()),
                    "percentiles": self.fleet.obs.percentile_summary(),
                    "fleet_metrics": self.fleet.obs.fleet_metrics()}
        if op == "kill":
            self.fleet.kill_worker(int(request["worker"]))
            return {"ok": True}
        return {"ok": False, "error": f"unknown op {op!r}"}

    def close(self) -> None:
        for conn, _ in self._pending:
            conn.close()
        self._pending.clear()
        self._listener.close()


def job_from_spec(spec: Dict) -> Job:
    """Build a :class:`Job` from the wire/CLI JSON shape."""
    retry = spec.get("retry")
    return Job(
        kind=spec.get("kind", "noop"),
        params=spec.get("params", {}),
        priority=int(spec.get("priority", 5)),
        timeout_s=float(spec.get("timeout_s", 60.0)),
        retry=RetrySchedule(**retry) if retry else RetrySchedule(),
        max_resumes=int(spec.get("max_resumes", 3)))


def control_request(address, payload: Dict,
                    timeout: float = 5.0) -> Dict:
    """Client side: one request, one reply."""
    with socket.create_connection(tuple(address),
                                  timeout=timeout) as conn:
        conn.sendall(json.dumps(payload).encode("utf-8") + b"\n")
        chunks = []
        while True:
            chunk = conn.recv(65536)
            if not chunk:
                break
            chunks.append(chunk)
            if chunk.endswith(b"\n"):
                break
    return json.loads(b"".join(chunks).decode("utf-8"))
