"""The fleet control plane: spawn, watch, restart, dispatch, degrade.

The supervisor composes the per-machine survivability primitives into
a self-healing pool:

* **health** — every worker heartbeats over its pipe (carrying its
  metrics snapshot); a missed-heartbeat window, a dead process, or a
  closed pipe is a *death event*;
* **recovery** — a dead worker is respawned (bounded by
  ``max_restarts``); if it died holding a recoverable ``exec-slices``
  job, the replacement receives the job's journal spool and resumes it
  by replay (see :mod:`repro.fleet.worker`) instead of losing it;
* **scheduling** — jobs flow through :class:`~repro.fleet.jobs
  .JobQueue` with per-job timeouts, bounded exponential-backoff retry
  and a dead-letter list;
* **degradation** — a fleet-level ladder mirroring
  :class:`~repro.vmm.watchdog.MonitorWatchdog`::

      full-service -> degraded -> frozen

  ``degraded``: some workers are gone and cannot be restored; pending
  jobs below ``shed_below_priority`` are shed so the survivors' time
  goes to high-priority work (RSP sessions keep being served).
  ``frozen``: no workers remain and none can be restored; dispatch
  stops entirely.  Unlike the monitor's ladder this one self-heals
  downward when workers return, because the supervisor — not the
  failed component — owns the verdict.

Everything is driven by cooperative :meth:`Fleet.poll` calls from the
owning thread; there are no supervisor-side threads or locks.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import sys
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.fleet.jobs import (Job, JobQueue, JobRecord, RetrySchedule,
                              STATUS_RUNNING)
from repro.obs.distributed.service import FleetObservability
from repro.obs.distributed.slo import SloSpec
from repro.obs.metrics import global_registry
from repro.obs.taps import TapPoint

FLEET_FULL = "full-service"
FLEET_DEGRADED = "degraded"
FLEET_FROZEN = "frozen"

_LEVEL_ORDER = {FLEET_FULL: 0, FLEET_DEGRADED: 1, FLEET_FROZEN: 2}

#: Slot lifecycle states.
SLOT_SPAWNING = "spawning"
SLOT_IDLE = "idle"
SLOT_BUSY = "busy"
SLOT_DEAD = "dead"
SLOT_STOPPED = "stopped"

_HEALTHY = (SLOT_SPAWNING, SLOT_IDLE, SLOT_BUSY)


@dataclass
class FleetConfig:
    workers: int = 4
    #: Guest image for resident RSP sessions (gdbserver's choices).
    guest: str = "kernel"
    #: Where exec-slices journals spool; None disables recovery.
    spool_dir: Optional[str] = None
    heartbeat_interval: float = 0.1
    #: Heartbeat silence that counts as a hang.
    hang_timeout: float = 10.0
    #: Master switch: without it dead workers stay dead (the
    #: degradation tests run this way).
    restart: bool = True
    max_restarts: int = 3
    #: Default retry schedule for submitted jobs.
    retry: RetrySchedule = field(default_factory=RetrySchedule)
    #: While degraded, pending jobs below this priority are shed.
    shed_below_priority: int = 5
    spool_fsync: bool = True
    #: Distributed tracing: workers record + ship spans, the
    #: supervisor collects them.  Off by default — a traced fleet must
    #: be asked for, and an untraced one is byte-identical to before.
    trace: bool = False
    #: SLO specs; None uses :func:`~repro.obs.distributed.slo
    #: .default_slos`.  Evaluation always runs (it is observe-only).
    slos: Optional[List[SloSpec]] = None
    #: Opt-in: let a firing SLO hold the ladder at ``degraded`` even
    #: while every worker is healthy.  Default observe-only.
    slo_advisory: bool = False
    #: Seconds between SLO burn-rate evaluations.
    slo_interval: float = 0.25
    #: Slice-latency SLO target (simulated cycles per exec slice).
    slice_target_cycles: int = 200_000
    #: A worker heartbeat older than this many heartbeat intervals
    #: counts as stale for the heartbeat-freshness SLO.
    heartbeat_fresh_intervals: float = 3.0


@dataclass
class WorkerSlot:
    """Supervisor-side view of one worker process."""

    index: int
    process: Optional[object] = None
    conn: Optional[object] = None
    status: str = SLOT_SPAWNING
    pid: Optional[int] = None
    spawned_at: float = 0.0
    last_heartbeat: float = 0.0
    heartbeat_seq: int = 0
    restarts: int = 0
    #: JobRecord currently dispatched here.
    job: Optional[JobRecord] = None
    #: Resume spec to send as soon as the replacement says hello.
    pending_resume: Optional[Tuple[JobRecord, Dict]] = None
    #: Latest metrics snapshot carried on a heartbeat.
    metrics: Dict = field(default_factory=dict)
    progress: int = 0

    @property
    def alive(self) -> bool:
        return self.process is not None and self.process.is_alive()


class Fleet:
    """A supervised pool of crash-isolated debugging workers."""

    def __init__(self, config: Optional[FleetConfig] = None) -> None:
        self.config = config or FleetConfig()
        self.obs = FleetObservability(
            trace=self.config.trace,
            slos=self.config.slos,
            slice_target_cycles=self.config.slice_target_cycles,
            slo_interval=self.config.slo_interval)
        self.queue = JobQueue()
        self.slots = [WorkerSlot(index=i)
                      for i in range(self.config.workers)]
        self.level = FLEET_FULL
        #: (time, from-level, to-level, reason) ladder history.
        self.transitions: List[Tuple[float, str, str, str]] = []
        #: Notified as ``taps(src, dst, reason)`` on ladder moves.
        self.transition_taps = TapPoint()
        self.mux = None
        self.draining = False
        self.started = False
        self._ctx = multiprocessing.get_context("spawn")
        registry = global_registry()
        self._gauge_level = registry.gauge(
            "fleet.ladder.level",
            help="fleet ladder ordinal (0=full-service, 1=degraded, "
                 "2=frozen)")
        self._gauge_healthy = registry.gauge("fleet.workers.healthy")
        self._gauge_total = registry.gauge("fleet.workers.total")
        self._counter_restarts = registry.counter("fleet.restarts")
        self._counter_crashes = registry.counter("fleet.crashes")
        self._counter_hangs = registry.counter("fleet.hangs")

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> "Fleet":
        for slot in self.slots:
            self._spawn(slot)
        self.started = True
        self._update_gauges()
        return self

    def _spawn(self, slot: WorkerSlot) -> None:
        from repro.fleet.worker import worker_main
        parent, child = self._ctx.Pipe()
        cfg = {
            "guest": self.config.guest,
            "heartbeat_interval": self.config.heartbeat_interval,
            "spool_fsync": self.config.spool_fsync,
            "trace": self.config.trace,
            "sys_path": [entry for entry in sys.path if entry],
        }
        process = self._ctx.Process(
            target=worker_main, args=(child, slot.index, cfg),
            name=f"fleet-worker-{slot.index}", daemon=True)
        process.start()
        child.close()
        now = time.monotonic()
        slot.process = process
        slot.conn = parent
        slot.status = SLOT_SPAWNING
        slot.pid = process.pid
        slot.spawned_at = now
        slot.last_heartbeat = now

    def shutdown(self, timeout: float = 5.0) -> None:
        """Graceful stop, then SIGKILL stragglers."""
        if self.mux is not None:
            self.mux.close()
        for slot in self.slots:
            if slot.conn is not None and slot.alive:
                try:
                    slot.conn.send({"op": "stop"})
                except (BrokenPipeError, OSError):
                    pass
        deadline = time.monotonic() + timeout
        for slot in self.slots:
            if slot.process is None:
                continue
            slot.process.join(max(0.0, deadline - time.monotonic()))
            if slot.process.is_alive():
                slot.process.kill()
                slot.process.join(1.0)
            if slot.conn is not None:
                slot.conn.close()
                slot.conn = None
            slot.status = SLOT_STOPPED
        self.started = False

    # -- job intake ----------------------------------------------------------

    def submit(self, job: Job) -> JobRecord:
        record = self.queue.submit(job)
        self.obs.on_enqueue(record)
        if self.level != FLEET_FULL \
                and job.priority < self.config.shed_below_priority:
            self.queue.shed_below(self.config.shed_below_priority)
        return record

    def drain(self) -> None:
        """Stop accepting progress on new work after the queue empties
        (the CLI's drain verb; pending jobs still run)."""
        self.draining = True

    def kill_worker(self, index: int,
                    sig: int = signal.SIGKILL) -> None:
        """Chaos/test hook: kill a worker out from under the fleet."""
        slot = self.slots[index]
        if slot.pid is not None and slot.alive:
            os.kill(slot.pid, sig)

    # -- the supervision loop ------------------------------------------------

    def poll(self) -> None:
        """One supervision quantum: drain pipes, judge health, enforce
        timeouts, restart, dispatch, update the ladder."""
        now = time.monotonic()
        for slot in self.slots:
            self._drain_conn(slot, now)
        for slot in self.slots:
            self._check_health(slot, now)
        for slot in self.slots:
            self._check_job_timeout(slot, now)
        for slot in self.slots:
            self._maybe_restart(slot)
        self._update_ladder()
        if self.level != FLEET_FROZEN:
            self._dispatch(now)
        if self.mux is not None:
            self.mux.poll()
        self.obs.poll(now)
        self._update_gauges()

    def wait_ready(self, timeout: float = 30.0,
                   poll_interval: float = 0.005) -> bool:
        """Poll until every worker left ``spawning`` (said hello or
        died).  Returns True when at least one worker is healthy —
        the earliest moment the mux will accept a debugger."""
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            self.poll()
            if all(slot.status != SLOT_SPAWNING
                   for slot in self.slots):
                return self.healthy_workers() > 0
            time.sleep(poll_interval)
        return False

    def run_until_idle(self, timeout: float = 60.0,
                       poll_interval: float = 0.005) -> bool:
        """Poll until every job reached a terminal state (or timeout)."""
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            self.poll()
            if self.queue.idle:
                return True
            time.sleep(poll_interval)
        return self.queue.idle

    # -- pipe events ---------------------------------------------------------

    def _drain_conn(self, slot: WorkerSlot, now: float) -> None:
        conn = slot.conn
        if conn is None or slot.status in (SLOT_DEAD, SLOT_STOPPED):
            return
        try:
            while conn.poll(0):
                self._on_event(slot, conn.recv(), now)
        except (EOFError, OSError):
            self._counter_crashes.inc()
            self._on_death(slot, "pipe closed", now)

    def _on_event(self, slot: WorkerSlot, event: Dict,
                  now: float) -> None:
        name = event.get("ev")
        if name == "hello":
            slot.status = SLOT_IDLE
            slot.pid = event.get("pid", slot.pid)
            slot.last_heartbeat = now
            if slot.pending_resume is not None:
                record, resume = slot.pending_resume
                slot.pending_resume = None
                self._send_job(slot, record, now, resume=resume)
        elif name == "heartbeat":
            slot.last_heartbeat = now
            slot.heartbeat_seq = event.get("seq", 0)
            slot.metrics = event.get("metrics", {})
            slot.progress = event.get("progress", 0)
            self.obs.update_metrics(slot.index, slot.metrics)
            self.obs.ingest_spans(slot.index, event.get("spans", []),
                                  now)
        elif name == "result":
            self._on_result(slot, event, now)
        elif name == "rsp":
            if self.mux is not None:
                self.mux.deliver(slot.index,
                                 bytes.fromhex(event["data"]))
        elif name == "bye":
            slot.status = SLOT_STOPPED
        # "pong" and unknown events only refresh the heartbeat clock.
        if name in ("pong",):
            slot.last_heartbeat = now

    def _on_result(self, slot: WorkerSlot, event: Dict,
                   now: float) -> None:
        # A traced result carries the final span flush and the
        # worker's closing metrics snapshot.
        self.obs.ingest_spans(slot.index, event.get("spans", []), now)
        if "metrics" in event:
            slot.metrics = event["metrics"]
            self.obs.update_metrics(slot.index, slot.metrics)
        record = slot.job
        slot.job = None
        if slot.status == SLOT_BUSY:
            slot.status = SLOT_IDLE
        if record is None or record.id != event.get("id"):
            return   # stale result from a pre-restart incarnation
        if event.get("ok"):
            self.queue.mark_done(record, event.get("value"))
            self.obs.on_complete(record, now)
        else:
            error = event.get("error", "worker error")
            status = self.queue.fail_attempt(record, error, now)
            self.obs.on_failure(record, error, status, now)

    # -- health & recovery ---------------------------------------------------

    def _check_health(self, slot: WorkerSlot, now: float) -> None:
        if slot.status in (SLOT_DEAD, SLOT_STOPPED):
            return
        if not slot.alive:
            code = slot.process.exitcode if slot.process else None
            self._counter_crashes.inc()
            self._on_death(slot, f"process exited (code {code})", now)
            return
        if slot.status != SLOT_SPAWNING:
            fresh_by = self.config.heartbeat_interval \
                * self.config.heartbeat_fresh_intervals
            self.obs.heartbeat_check(
                slot.index, now - slot.last_heartbeat <= fresh_by, now)
        if now - slot.last_heartbeat > self.config.hang_timeout:
            self._counter_hangs.inc()
            slot.process.kill()
            self._on_death(
                slot,
                f"hang: no heartbeat for "
                f"{now - slot.last_heartbeat:.1f}s", now)

    def _on_death(self, slot: WorkerSlot, reason: str,
                  now: float) -> None:
        slot.status = SLOT_DEAD
        if slot.conn is not None:
            slot.conn.close()
            slot.conn = None
        if self.mux is not None:
            self.mux.worker_died(slot.index)
        self.obs.on_worker_death(slot.index, reason)
        record = slot.job
        slot.job = None
        if record is None:
            return
        resume = self._resume_spec(record)
        if resume is not None and self._can_restart(slot):
            # The *worker* died, not the job: no attempt is charged and
            # the record never re-enters the dispatch heap — it stays
            # "running", pinned to this slot's replacement, which picks
            # it up (with the journals) as soon as it says hello.
            record.resumes += 1
            record.worker = None
            record.dispatched_at = None
            record.note(f"worker {slot.index} died ({reason}); "
                        f"resume {record.resumes} from journal")
            slot.pending_resume = (record, resume)
            self.obs.on_resume_planned(record, slot.index, reason)
        else:
            error = f"worker {slot.index} died: {reason}"
            status = self.queue.fail_attempt(record, error, now)
            self.obs.on_failure(record, error, status, now)

    def _resume_spec(self, record: JobRecord) -> Optional[Dict]:
        """Journal-based recovery plan, if this job supports one."""
        job = record.job
        if job.kind != "exec-slices" or record.spool is None \
                or not os.path.exists(record.spool) \
                or record.resumes >= job.max_resumes:
            return None
        cont = f"{record.spool}.cont{record.resumes + 1}"
        return {"journal": record.spool,
                "continuations": list(record.continuations),
                "spool": cont}

    def _can_restart(self, slot: WorkerSlot) -> bool:
        return self.config.restart \
            and slot.restarts < self.config.max_restarts

    def _maybe_restart(self, slot: WorkerSlot) -> None:
        if slot.status != SLOT_DEAD or not self._can_restart(slot):
            return
        slot.restarts += 1
        self._counter_restarts.inc()
        self.obs.on_restart(slot.index, slot.restarts)
        self._spawn(slot)

    def _check_job_timeout(self, slot: WorkerSlot, now: float) -> None:
        record = slot.job
        if record is None or record.dispatched_at is None:
            return
        if now - record.dispatched_at <= record.job.timeout_s:
            return
        # The job wedged its worker: kill the process (its machine is
        # unsalvageable mid-job) and charge the attempt to the job,
        # not the worker — no journal resume for a timeout.
        record.note(f"timeout after {record.job.timeout_s}s "
                    f"on worker {slot.index}")
        slot.job = None
        status = self.queue.fail_attempt(record, "job timeout", now)
        self.obs.on_failure(record, "job timeout", status, now)
        if slot.alive:
            slot.process.kill()
        self._on_death(slot, "killed after job timeout", now)

    # -- dispatch ------------------------------------------------------------

    def _dispatch(self, now: float) -> None:
        for slot in self.slots:
            if slot.status != SLOT_IDLE or slot.job is not None:
                continue
            record = self.queue.pop_eligible(now)
            if record is None:
                return
            self._send_job(slot, record, now)

    def _send_job(self, slot: WorkerSlot, record: JobRecord,
                  now: float, resume: Optional[Dict] = None) -> None:
        job = record.job
        message = {"op": "job", "id": record.id, "kind": job.kind,
                   "params": job.params}
        if resume is not None:
            message["resume"] = resume
            record.continuations.append(resume["spool"])
            # Migration, not a retry: keep the attempt count.
            record.status = STATUS_RUNNING
            record.worker = slot.index
            record.dispatched_at = now
            record.note(f"resume {record.resumes} on worker "
                        f"{slot.index}")
        else:
            if job.kind == "exec-slices" \
                    and self.config.spool_dir is not None \
                    and job.params.get("record", True):
                os.makedirs(self.config.spool_dir, exist_ok=True)
                record.spool = os.path.join(self.config.spool_dir,
                                            f"{record.id}.journal")
                message["spool"] = record.spool
            self.queue.mark_running(record, slot.index, now)
        message["attempt"] = record.attempts
        encoded = self.obs.on_dispatch(record, slot.index,
                                       resume=resume is not None)
        if encoded is not None:
            message["trace"] = encoded
        try:
            slot.conn.send(message)
        except (BrokenPipeError, OSError):
            self._on_death(slot, "pipe broke on dispatch", now)
            return
        slot.job = record
        slot.status = SLOT_BUSY

    # -- RSP plumbing (used by the mux) --------------------------------------

    def send_rsp(self, index: int, data: bytes,
                 trace: Optional[str] = None) -> bool:
        slot = self.slots[index]
        if slot.conn is None or slot.status not in (SLOT_IDLE,
                                                    SLOT_BUSY):
            return False
        message = {"op": "rsp", "data": data.hex()}
        if trace is not None:
            message["trace"] = trace
        try:
            slot.conn.send(message)
        except (BrokenPipeError, OSError):
            return False
        return True

    def detach_rsp(self, index: int) -> None:
        slot = self.slots[index]
        if slot.conn is not None and slot.status in (SLOT_IDLE,
                                                     SLOT_BUSY):
            try:
                slot.conn.send({"op": "rsp-detach"})
            except (BrokenPipeError, OSError):
                pass

    # -- the ladder ----------------------------------------------------------

    def healthy_workers(self) -> int:
        return sum(1 for slot in self.slots
                   if slot.status in _HEALTHY and slot.alive)

    def _restorable(self) -> bool:
        return any(self._can_restart(slot) for slot in self.slots
                   if slot.status == SLOT_DEAD)

    def _update_ladder(self) -> None:
        if not self.started:
            return
        healthy = self.healthy_workers()
        if healthy == 0:
            target = FLEET_FROZEN if not self._restorable() \
                else FLEET_DEGRADED
        elif healthy < len(self.slots) and not self._restorable():
            target = FLEET_DEGRADED
        else:
            target = FLEET_FULL
        reason = f"{healthy}/{len(self.slots)} workers healthy"
        if target == FLEET_FULL and self.config.slo_advisory \
                and self.obs.advisory_degrade():
            # Opt-in advisory input: a burning SLO holds the ladder at
            # degraded even with every worker healthy.
            target = FLEET_DEGRADED
            reason = "slo burn-rate advisory"
        if target == self.level:
            return
        src, self.level = self.level, target
        self.transitions.append((time.monotonic(), src, target, reason))
        self.obs.on_transition(src, target, reason)
        if self.transition_taps:
            self.transition_taps(src, target, reason)
        if _LEVEL_ORDER[target] > _LEVEL_ORDER[src]:
            shed = self.queue.shed_below(self.config.shed_below_priority)
            if shed:
                self.transitions[-1] = (
                    self.transitions[-1][0], src, target,
                    reason + f"; shed {len(shed)} low-priority jobs")

    # -- reporting -----------------------------------------------------------

    def _update_gauges(self) -> None:
        registry = global_registry()
        self._gauge_level.set(_LEVEL_ORDER[self.level])
        self._gauge_healthy.set(self.healthy_workers())
        self._gauge_total.set(len(self.slots))
        for status, count in self.queue.counts().items():
            registry.gauge(
                f"fleet.jobs.{status.replace('-', '_')}").set(count)

    def status(self) -> Dict:
        """JSON-ready control-plane state (the ``status`` verb)."""
        return {
            "level": self.level,
            "draining": self.draining,
            "workers": [{
                "index": slot.index,
                "status": slot.status,
                "pid": slot.pid,
                "restarts": slot.restarts,
                "job": slot.job.id if slot.job else None,
                "progress": slot.progress,
                "heartbeats": slot.heartbeat_seq,
            } for slot in self.slots],
            "jobs": self.queue.counts(),
            "dead_letter": [record.id
                            for record in self.queue.dead_letter],
            "shed": [record.id for record in self.queue.shed],
            "transitions": [
                {"from": src, "to": dst, "reason": reason}
                for _, src, dst, reason in self.transitions],
            "slo": self.obs.slo_status(time.monotonic()),
            "percentiles": self.obs.percentile_summary(),
            "tracing": {
                "enabled": self.config.trace,
                **self.obs.collector.stats(),
            },
        }
