"""Fleet job model: priority queue, bounded retry, dead-letter list.

A *job* is one unit of fleet work — a chaos scenario, a replay/bisect
run, a streaming window, or a deterministic execution campaign
(``exec-slices``, the recoverable kind).  The supervisor owns a
:class:`JobQueue`; workers never see the queue, only the single job
dispatched to them over the command pipe.

Failure policy mirrors the RSP client's :class:`~repro.rsp.client
.RetryPolicy`, lifted from pump quanta to supervisor seconds: a failed
attempt is retried after an exponentially growing, capped backoff until
``max_attempts`` is exhausted, at which point the job lands on the
dead-letter list (kept, inspectable, never silently dropped).  Under
fleet-level degradation the queue can *shed* pending low-priority jobs
— an explicit terminal status, also never a silent drop.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.obs.distributed.context import (TraceContext, mint_trace_id,
                                           trace_root)

#: Job kinds the worker knows how to run.
JOB_KINDS = ("exec-slices", "chaos", "replay", "stream", "noop")

#: Priorities span 0 (first to shed) through 9 (last to shed).
PRIORITY_MIN, PRIORITY_MAX, PRIORITY_DEFAULT = 0, 9, 5

STATUS_PENDING = "pending"
STATUS_RUNNING = "running"
STATUS_DONE = "done"
STATUS_DEAD_LETTER = "dead-letter"
STATUS_SHED = "shed"


@dataclass(frozen=True)
class RetrySchedule:
    """Bounded exponential backoff, in supervisor wall-clock seconds.

    Attempt ``n`` (1-based) that fails is retried after
    ``min(backoff_base_s * multiplier**(n-1), backoff_max_s)`` — the
    same shape as ``RetryPolicy.backoff_pumps`` on the RSP transport.
    """

    max_attempts: int = 3
    backoff_base_s: float = 0.2
    multiplier: float = 2.0
    backoff_max_s: float = 5.0

    def backoff_s(self, attempt: int) -> float:
        if attempt < 1:
            raise ValueError(f"attempts are 1-based (got {attempt})")
        delay = self.backoff_base_s * (self.multiplier ** (attempt - 1))
        return min(delay, self.backoff_max_s)


@dataclass
class Job:
    """What to run; immutable once submitted (state lives in the record)."""

    kind: str
    params: Dict = field(default_factory=dict)
    priority: int = PRIORITY_DEFAULT
    timeout_s: float = 60.0
    retry: RetrySchedule = field(default_factory=RetrySchedule)
    #: Crash-recovery budget: how many times a killed worker's journal
    #: may be replayed to resume this job (``exec-slices`` only —
    #: other kinds restart from scratch via the retry schedule).
    max_resumes: int = 3

    def __post_init__(self) -> None:
        if self.kind not in JOB_KINDS:
            raise ValueError(f"unknown job kind {self.kind!r}; "
                             f"pick from {JOB_KINDS}")
        if not PRIORITY_MIN <= self.priority <= PRIORITY_MAX:
            raise ValueError(f"priority {self.priority} outside "
                             f"[{PRIORITY_MIN}, {PRIORITY_MAX}]")


@dataclass
class JobRecord:
    """One job's mutable lifecycle state, owned by the queue."""

    id: str
    job: Job
    status: str = STATUS_PENDING
    attempts: int = 0
    resumes: int = 0
    worker: Optional[int] = None
    #: Earliest dispatch time (monotonic seconds); backoff sets it.
    not_before: float = 0.0
    dispatched_at: Optional[float] = None
    #: Journal spool of the current attempt (``exec-slices``).
    spool: Optional[str] = None
    #: Continuation spools, one per resume.
    continuations: List[str] = field(default_factory=list)
    result: Optional[Dict] = None
    error: Optional[str] = None
    #: Append-only audit trail of lifecycle events.
    history: List[str] = field(default_factory=list)
    #: Root trace context minted at submission (distributed tracing).
    trace: Optional[TraceContext] = None

    def note(self, event: str) -> None:
        self.history.append(event)


class JobQueue:
    """Priority queue + retry ledger + dead-letter list.

    Higher priority pops first; equal priorities pop in submission
    order.  The heap may hold stale entries for records that already
    left ``pending`` (requeue pushes a fresh entry); ``pop_eligible``
    skips them, so every state change goes through the record, never
    the heap.
    """

    def __init__(self) -> None:
        self.records: Dict[str, JobRecord] = {}
        self._heap: List = []
        self._seq = itertools.count()
        self.dead_letter: List[JobRecord] = []
        self.shed: List[JobRecord] = []

    # -- intake --------------------------------------------------------------

    def submit(self, job: Job) -> JobRecord:
        job_id = f"job-{next(self._seq):04d}"
        record = JobRecord(id=job_id, job=job)
        # The trace root is minted here, unconditionally: sha256 of the
        # job id, so two identical seeded runs mint identical ids with
        # no shared state (and no registry/golden impact when tracing
        # stays off — a context is just three ints on the record).
        record.trace = trace_root(mint_trace_id(job_id))
        record.note(f"submitted kind={job.kind} priority={job.priority}")
        self.records[job_id] = record
        self._push(record)
        return record

    def _push(self, record: JobRecord) -> None:
        heapq.heappush(self._heap,
                       (-record.job.priority, next(self._seq), record.id))

    # -- dispatch ------------------------------------------------------------

    def pop_eligible(self, now: float) -> Optional[JobRecord]:
        """Highest-priority pending record whose backoff has elapsed."""
        deferred = []
        popped = None
        while self._heap:
            entry = heapq.heappop(self._heap)
            record = self.records.get(entry[2])
            if record is None or record.status != STATUS_PENDING:
                continue   # stale heap entry
            if record.not_before > now:
                deferred.append(entry)
                continue
            popped = record
            break
        for entry in deferred:
            heapq.heappush(self._heap, entry)
        return popped

    def mark_running(self, record: JobRecord, worker: int,
                     now: float) -> None:
        record.status = STATUS_RUNNING
        record.worker = worker
        record.attempts += 1
        record.dispatched_at = now
        record.note(f"attempt {record.attempts} on worker {worker}")

    # -- outcomes ------------------------------------------------------------

    def mark_done(self, record: JobRecord, result: Optional[Dict]) -> None:
        record.status = STATUS_DONE
        record.result = result
        record.worker = None
        record.dispatched_at = None
        record.note("done")

    def fail_attempt(self, record: JobRecord, error: str,
                     now: float) -> str:
        """Retry with backoff, or dead-letter when attempts are spent.

        Returns the record's new status.
        """
        record.error = error
        record.worker = None
        record.dispatched_at = None
        retry = record.job.retry
        if record.attempts >= retry.max_attempts:
            record.status = STATUS_DEAD_LETTER
            record.note(f"dead-letter after {record.attempts} "
                        f"attempts: {error}")
            self.dead_letter.append(record)
            return record.status
        delay = retry.backoff_s(record.attempts)
        record.status = STATUS_PENDING
        record.not_before = now + delay
        record.note(f"attempt {record.attempts} failed ({error}); "
                    f"retry in {delay:.3f}s")
        self._push(record)
        return record.status

    def shed_below(self, priority: int) -> List[JobRecord]:
        """Shed every *pending* job below ``priority`` (degradation)."""
        dropped = []
        for record in self.records.values():
            if record.status == STATUS_PENDING \
                    and record.job.priority < priority:
                record.status = STATUS_SHED
                record.note(f"shed (priority {record.job.priority} "
                            f"< {priority})")
                self.shed.append(record)
                dropped.append(record)
        return dropped

    # -- accounting ----------------------------------------------------------

    def counts(self) -> Dict[str, int]:
        counts = {STATUS_PENDING: 0, STATUS_RUNNING: 0, STATUS_DONE: 0,
                  STATUS_DEAD_LETTER: 0, STATUS_SHED: 0}
        for record in self.records.values():
            counts[record.status] += 1
        return counts

    @property
    def idle(self) -> bool:
        counts = self.counts()
        return counts[STATUS_PENDING] == 0 \
            and counts[STATUS_RUNNING] == 0
