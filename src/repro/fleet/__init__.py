"""Supervised debugging fleet: crash-isolated workers, self-healing
control plane, journal-based recovery.

The per-machine survivability primitives (deterministic virtual time,
sha256-framed replay journals, the watchdog degradation ladder, the
RSP retry policy) compose here into a multi-process pool: each
:mod:`worker <repro.fleet.worker>` runs one machine behind a command
pipe; the :mod:`supervisor <repro.fleet.supervisor>` tracks health via
heartbeats, restarts crashed workers by replaying their journal
spools, schedules :mod:`jobs <repro.fleet.jobs>` with retry/backoff
and a dead-letter list, and degrades gracefully under sustained loss.
:mod:`mux <repro.fleet.mux>` fans many RSP debug sessions through one
TCP listener; :mod:`control <repro.fleet.control>` + :mod:`cli
<repro.fleet.cli>` drive it all; :mod:`dashboard
<repro.fleet.dashboard>` aggregates per-worker metrics snapshots.
"""

from repro.fleet.jobs import (Job, JobQueue, JobRecord, RetrySchedule,
                              STATUS_DEAD_LETTER, STATUS_DONE,
                              STATUS_PENDING, STATUS_RUNNING,
                              STATUS_SHED)
from repro.fleet.supervisor import (FLEET_DEGRADED, FLEET_FROZEN,
                                    FLEET_FULL, Fleet, FleetConfig,
                                    WorkerSlot)
from repro.fleet.mux import FleetMux
from repro.fleet.control import (ControlServer, control_request,
                                 job_from_spec)
from repro.fleet.dashboard import (build_dashboard, export_dashboard,
                                   format_status)
from repro.fleet.worker import ExecSlices, run_exec_slices

__all__ = [
    "Job", "JobQueue", "JobRecord", "RetrySchedule",
    "STATUS_DEAD_LETTER", "STATUS_DONE", "STATUS_PENDING",
    "STATUS_RUNNING", "STATUS_SHED",
    "FLEET_DEGRADED", "FLEET_FROZEN", "FLEET_FULL",
    "Fleet", "FleetConfig", "WorkerSlot", "FleetMux",
    "ControlServer", "control_request", "job_from_spec",
    "build_dashboard", "export_dashboard", "format_status",
    "ExecSlices", "run_exec_slices",
]
