"""``repro-fleet``: drive a supervised debugging fleet.

    repro-fleet up --workers 4 --listen 127.0.0.1:3333 \\
        --control 127.0.0.1:8700 --spool-dir /tmp/fleet \\
        --jobs jobs.json --dashboard fleet.json --duration 30

    repro-fleet status --control 127.0.0.1:8700
    repro-fleet submit --control 127.0.0.1:8700 \\
        --kind chaos --param scenario=wild-writes --priority 7
    repro-fleet drain  --control 127.0.0.1:8700
    repro-fleet kill   --control 127.0.0.1:8700 --worker 2

``up`` runs the control plane in the foreground (the supervisor is a
cooperative poll loop, not a daemon); the other verbs are one-shot
clients of its control port.  ``--jobs`` takes a JSON list of job
specs in the wire shape (see :mod:`repro.fleet.control`).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import List, Optional

from repro.fleet.control import (ControlServer, control_request,
                                 job_from_spec)
from repro.fleet.dashboard import export_dashboard, format_status
from repro.fleet.mux import FleetMux
from repro.fleet.supervisor import Fleet, FleetConfig


def _parse_address(text: str):
    host, _, port = text.rpartition(":")
    return (host or "127.0.0.1", int(port))


def _cmd_up(args) -> int:
    config = FleetConfig(
        workers=args.workers,
        guest=args.guest,
        spool_dir=args.spool_dir,
        heartbeat_interval=args.heartbeat_interval,
        hang_timeout=args.hang_timeout,
        restart=not args.no_restart,
        max_restarts=args.max_restarts,
        shed_below_priority=args.shed_below)
    fleet = Fleet(config).start()
    mux = control = None
    if args.listen:
        mux = FleetMux(fleet, *_parse_address(args.listen))
        print(f"repro-fleet: RSP mux on "
              f"{mux.address[0]}:{mux.address[1]}")
    if args.control:
        control = ControlServer(fleet, *_parse_address(args.control))
        print(f"repro-fleet: control on "
              f"{control.address[0]}:{control.address[1]}")
    if args.jobs:
        with open(args.jobs) as handle:
            for spec in json.load(handle):
                record = fleet.submit(job_from_spec(spec))
                print(f"repro-fleet: submitted {record.id} "
                      f"({record.job.kind})")
    fleet.wait_ready()
    print(f"repro-fleet: {config.workers} workers up "
          f"(guest {config.guest!r})")
    deadline = time.monotonic() + args.duration \
        if args.duration else None
    try:
        while True:
            fleet.poll()
            if control is not None:
                control.poll()
            if deadline is not None and time.monotonic() >= deadline:
                break
            if fleet.draining and fleet.queue.idle:
                break
            time.sleep(args.poll_interval)
    except KeyboardInterrupt:
        print("\nrepro-fleet: interrupted")
    finally:
        print(format_status(fleet))
        if args.dashboard:
            export_dashboard(fleet, args.dashboard)
            print(f"repro-fleet: dashboard written to "
                  f"{args.dashboard}")
        if control is not None:
            control.close()
        fleet.shutdown()
    return 0


def _cmd_status(args) -> int:
    reply = control_request(_parse_address(args.control),
                            {"op": "status"})
    if not reply.get("ok"):
        print(f"error: {reply.get('error')}", file=sys.stderr)
        return 1
    status = reply["status"]
    print(f"ladder: {status['level']}")
    print(json.dumps(status, indent=2, sort_keys=True))
    if args.json:
        with open(args.json, "w") as handle:
            json.dump(reply["dashboard"], handle, indent=2,
                      sort_keys=True)
    return 0


def _cmd_submit(args) -> int:
    params = {}
    for item in args.param or []:
        key, _, value = item.partition("=")
        try:
            params[key] = json.loads(value)
        except json.JSONDecodeError:
            params[key] = value
    reply = control_request(_parse_address(args.control), {
        "op": "submit",
        "job": {"kind": args.kind, "params": params,
                "priority": args.priority,
                "timeout_s": args.timeout}})
    if not reply.get("ok"):
        print(f"error: {reply.get('error')}", file=sys.stderr)
        return 1
    print(reply["id"])
    return 0


def _cmd_drain(args) -> int:
    reply = control_request(_parse_address(args.control),
                            {"op": "drain"})
    print(json.dumps(reply))
    return 0 if reply.get("ok") else 1


def _cmd_kill(args) -> int:
    reply = control_request(_parse_address(args.control),
                            {"op": "kill", "worker": args.worker})
    print(json.dumps(reply))
    return 0 if reply.get("ok") else 1


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-fleet",
        description="Supervised fleet of simulated debugging targets.")
    sub = parser.add_subparsers(dest="verb", required=True)

    up = sub.add_parser("up", help="run a fleet in the foreground")
    up.add_argument("--workers", type=int, default=4)
    up.add_argument("--guest", default="kernel",
                    choices=("kernel", "threads", "io"))
    up.add_argument("--spool-dir", default=None,
                    help="journal spool directory (enables recovery)")
    up.add_argument("--listen", default=None, metavar="HOST:PORT",
                    help="RSP mux listener for debugger clients")
    up.add_argument("--control", default=None, metavar="HOST:PORT",
                    help="control port for the other verbs")
    up.add_argument("--jobs", default=None, metavar="PATH",
                    help="JSON list of job specs to submit at start")
    up.add_argument("--dashboard", default=None, metavar="PATH",
                    help="write the dashboard JSON on exit")
    up.add_argument("--duration", type=float, default=None,
                    help="exit after this many seconds")
    up.add_argument("--heartbeat-interval", type=float, default=0.1)
    up.add_argument("--hang-timeout", type=float, default=10.0)
    up.add_argument("--no-restart", action="store_true")
    up.add_argument("--max-restarts", type=int, default=3)
    up.add_argument("--shed-below", type=int, default=5)
    up.add_argument("--poll-interval", type=float, default=0.005)
    up.set_defaults(func=_cmd_up)

    for verb, func in (("status", _cmd_status), ("drain", _cmd_drain),
                       ("kill", _cmd_kill), ("submit", _cmd_submit)):
        cmd = sub.add_parser(verb)
        cmd.add_argument("--control", required=True,
                         metavar="HOST:PORT")
        cmd.set_defaults(func=func)
        if verb == "status":
            cmd.add_argument("--json", default=None, metavar="PATH",
                             help="also write the dashboard JSON")
        if verb == "kill":
            cmd.add_argument("--worker", type=int, required=True)
        if verb == "submit":
            cmd.add_argument("--kind", required=True)
            cmd.add_argument("--param", action="append",
                             metavar="KEY=VALUE")
            cmd.add_argument("--priority", type=int, default=5)
            cmd.add_argument("--timeout", type=float, default=60.0)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
