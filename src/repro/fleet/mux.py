"""FleetMux: many RSP debug sessions through one TCP listener.

Each accepted client is pinned to one healthy worker's resident debug
session; socket bytes travel the worker's command pipe as ``rsp``
messages and replies come back the same way.  This is the fleet's
outward face for debuggers: one address, many machines — the
single-client :class:`~repro.debugger.gdbserver.GdbServer` scaled
sideways.

The mux is polled from :meth:`Fleet.poll` (no threads).  A client
disconnect detaches the worker's session; a worker death closes the
client's socket — the debugger sees a dropped connection, reconnects,
and lands on a healthy worker.
"""

from __future__ import annotations

import socket
from typing import Dict, Optional

from repro.fleet.supervisor import SLOT_BUSY, SLOT_IDLE


class FleetMux:
    """Non-blocking TCP fan-in onto per-worker debug stubs."""

    def __init__(self, fleet, host: str = "127.0.0.1",
                 port: int = 0) -> None:
        self.fleet = fleet
        self._listener = socket.socket(socket.AF_INET,
                                       socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET,
                                  socket.SO_REUSEADDR, 1)
        self._listener.bind((host, port))
        self._listener.listen(8)
        self._listener.setblocking(False)
        self.address = self._listener.getsockname()
        #: worker index -> client socket (one session per worker).
        self._sessions: Dict[int, socket.socket] = {}
        #: worker index -> encoded trace context of its client (only
        #: populated when the fleet traces).
        self._traces: Dict[int, str] = {}
        self.accepted = 0
        self.refused = 0
        fleet.mux = self

    # -- assignment ----------------------------------------------------------

    def _pick_worker(self) -> Optional[int]:
        for slot in self.fleet.slots:
            if slot.index in self._sessions:
                continue
            if slot.status in (SLOT_IDLE, SLOT_BUSY) and slot.alive:
                return slot.index
        return None

    # -- polling -------------------------------------------------------------

    def poll(self) -> None:
        self._accept_new()
        for index, conn in list(self._sessions.items()):
            try:
                data = conn.recv(4096)
            except BlockingIOError:
                continue
            except OSError:
                self._drop(index)
                continue
            if data == b"":
                self._drop(index)
                continue
            if not self.fleet.send_rsp(index, data,
                                       trace=self._traces.get(index)):
                self._drop(index)

    def _accept_new(self) -> None:
        while True:
            try:
                conn, _ = self._listener.accept()
            except BlockingIOError:
                return
            except OSError:
                return
            index = self._pick_worker()
            if index is None:
                # Every worker is dead or already serving a debugger:
                # refuse loudly rather than queue silently.
                self.refused += 1
                conn.close()
                continue
            conn.setblocking(False)
            self._sessions[index] = conn
            self.accepted += 1
            encoded = self.fleet.obs.on_rsp_attach(index, self.accepted)
            if encoded is not None:
                self._traces[index] = encoded

    # -- fleet-side callbacks ------------------------------------------------

    def deliver(self, index: int, data: bytes) -> None:
        """Target bytes from worker ``index`` for its client."""
        conn = self._sessions.get(index)
        if conn is None:
            return
        try:
            conn.sendall(data)
        except (BlockingIOError, BrokenPipeError,
                ConnectionResetError, OSError):
            self._drop(index)

    def worker_died(self, index: int) -> None:
        """The supervisor lost this worker; hang up on its client."""
        self._traces.pop(index, None)
        conn = self._sessions.pop(index, None)
        if conn is not None:
            try:
                conn.close()
            except OSError:
                pass

    # -- teardown ------------------------------------------------------------

    def _drop(self, index: int) -> None:
        self._traces.pop(index, None)
        conn = self._sessions.pop(index, None)
        if conn is not None:
            try:
                conn.close()
            except OSError:
                pass
        self.fleet.detach_rsp(index)

    def close(self) -> None:
        for index in list(self._sessions):
            self._drop(index)
        self._listener.close()
