"""Fleet dashboard: aggregate per-worker metrics into one export.

Every heartbeat carries the worker's whole
:func:`~repro.obs.metrics.global_registry` snapshot, so the supervisor
holds a recent metrics view of every worker without any extra RPC.
:func:`build_dashboard` merges those with the supervisor's own
``fleet.*`` gauges into one JSON document; :func:`format_status`
renders the human view the ``repro-fleet status`` verb prints —
including the degradation-ladder state, which is part of the fleet's
operational contract.
"""

from __future__ import annotations

import json
import time
from typing import Dict

from repro.obs.metrics import global_registry


def aggregate_worker_metrics(fleet) -> Dict:
    """Sum counter/gauge values of the same name across workers."""
    totals: Dict[str, float] = {}
    for slot in fleet.slots:
        for name, snap in slot.metrics.items():
            if snap.get("type") in ("counter", "gauge"):
                totals[name] = totals.get(name, 0) + snap["value"]
    return dict(sorted(totals.items()))


def build_dashboard(fleet) -> Dict:
    """The whole control plane as one JSON-ready document."""
    return {
        "level": fleet.level,
        "workers": {
            str(slot.index): {
                "status": slot.status,
                "pid": slot.pid,
                "restarts": slot.restarts,
                "job": slot.job.id if slot.job else None,
                "progress": slot.progress,
                "heartbeats": slot.heartbeat_seq,
                "metrics": slot.metrics,
            } for slot in fleet.slots
        },
        "jobs": fleet.queue.counts(),
        "dead_letter": [record.id
                        for record in fleet.queue.dead_letter],
        "shed": [record.id for record in fleet.queue.shed],
        "transitions": [{"from": src, "to": dst, "reason": reason}
                        for _, src, dst, reason in fleet.transitions],
        "aggregated": aggregate_worker_metrics(fleet),
        "fleet_metrics": fleet.obs.fleet_metrics(),
        "percentiles": fleet.obs.percentile_summary(),
        "slo": fleet.obs.slo_status(time.monotonic()),
        "supervisor_metrics": {
            name: metric for name, metric
            in global_registry().snapshot().items()
            if name.startswith("fleet.")},
    }


def export_dashboard(fleet, path) -> Dict:
    dashboard = build_dashboard(fleet)
    with open(path, "w") as handle:
        json.dump(dashboard, handle, indent=2, sort_keys=True)
    return dashboard


def format_status(fleet) -> str:
    """Human-readable control-plane state (``repro-fleet status``)."""
    counts = fleet.queue.counts()
    lines = [f"ladder: {fleet.level}",
             f"workers: {fleet.healthy_workers()}/{len(fleet.slots)} "
             f"healthy"]
    for slot in fleet.slots:
        job = slot.job.id if slot.job else "-"
        lines.append(f"  worker {slot.index}: {slot.status:<9} "
                     f"pid={slot.pid} restarts={slot.restarts} "
                     f"job={job} progress={slot.progress}")
    lines.append("jobs: " + " ".join(f"{status}={count}"
                                     for status, count
                                     in sorted(counts.items())))
    if fleet.queue.dead_letter:
        lines.append("dead-letter: " + ", ".join(
            record.id for record in fleet.queue.dead_letter))
    if fleet.queue.shed:
        lines.append("shed: " + ", ".join(
            record.id for record in fleet.queue.shed))
    for _, src, dst, reason in fleet.transitions:
        lines.append(f"  transition: {src} -> {dst} ({reason})")
    firing = sorted(name for name, on
                    in fleet.obs.evaluator.firing.items() if on)
    if firing:
        lines.append("slo firing: " + ", ".join(firing))
    return "\n".join(lines)
