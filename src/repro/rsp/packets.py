"""GDB Remote Serial Protocol framing.

Wire format: ``$<payload>#<2-hex-digit checksum>``, where the checksum is
the modulo-256 sum of the payload bytes.  ``}`` escapes (byte XOR 0x20)
and ``*`` run-length encoding are handled on receive; transmit escapes
the metacharacters.  Every good packet is acknowledged with ``+``, a bad
checksum with ``-``.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.errors import ProtocolError

ESCAPE = 0x7D  # '}'
RLE = 0x2A     # '*'
PACKET_START = 0x24   # '$'
PACKET_END = 0x23     # '#'
ACK = b"+"
NAK = b"-"

#: Bytes that must be escaped inside a payload.
_MUST_ESCAPE = frozenset({0x23, 0x24, 0x7D, 0x2A})


def checksum(payload: bytes) -> int:
    return sum(payload) & 0xFF


def escape(payload: bytes) -> bytes:
    out = bytearray()
    for byte in payload:
        if byte in _MUST_ESCAPE:
            out.append(ESCAPE)
            out.append(byte ^ 0x20)
        else:
            out.append(byte)
    return bytes(out)


def unescape_and_expand(payload: bytes) -> bytes:
    """Undo ``}`` escapes and ``*`` run-length encoding."""
    out = bytearray()
    index = 0
    while index < len(payload):
        byte = payload[index]
        if byte == ESCAPE:
            if index + 1 >= len(payload):
                raise ProtocolError("dangling escape at end of packet")
            out.append(payload[index + 1] ^ 0x20)
            index += 2
            continue
        if byte == RLE:
            if not out or index + 1 >= len(payload):
                raise ProtocolError("malformed run-length encoding")
            repeat = payload[index + 1] - 29
            if repeat < 3 or repeat > 97:
                raise ProtocolError(f"run length {repeat} out of range")
            out.extend(out[-1:] * repeat)
            index += 2
            continue
        out.append(byte)
        index += 1
    return bytes(out)


def frame(payload: bytes) -> bytes:
    """Wrap a payload for the wire (escaped, checksummed)."""
    escaped = escape(payload)
    return b"$" + escaped + b"#" + f"{checksum(escaped):02x}".encode()


class PacketDecoder:
    """Incremental decoder: feed bytes, collect payloads and acks.

    ``feed`` returns the bytes to send back immediately (``+``/``-``
    acknowledgements).  Completed payloads accumulate in
    :attr:`packets`; ``^C`` interrupt bytes (0x03) arriving outside a
    packet accumulate in :attr:`interrupts`.
    """

    def __init__(self) -> None:
        self._buffer = bytearray()
        self._in_packet = False
        self.packets: List[bytes] = []
        self.acks: List[bool] = []      # True for '+', False for '-'
        self.interrupts = 0

    def feed(self, data: bytes) -> bytes:
        replies = bytearray()
        for byte in data:
            if not self._in_packet:
                if byte == PACKET_START:
                    self._in_packet = True
                    self._buffer.clear()
                elif byte == 0x03:
                    self.interrupts += 1
                elif byte == ACK[0]:
                    self.acks.append(True)
                elif byte == NAK[0]:
                    self.acks.append(False)
                # Anything else between packets is line noise: ignored.
                continue
            self._buffer.append(byte)
            if len(self._buffer) >= 3 and self._buffer[-3] == PACKET_END:
                raw = bytes(self._buffer)  # excludes the leading '$'
                self._in_packet = False
                body = raw[:-3]
                try:
                    expected = int(raw[-2:].decode("ascii"), 16)
                except ValueError:
                    replies += NAK
                    continue
                if checksum(body) != expected:
                    replies += NAK
                    continue
                try:
                    self.packets.append(unescape_and_expand(body))
                except ProtocolError:
                    replies += NAK
                    continue
                replies += ACK
        return bytes(replies)

    def next_packet(self) -> Optional[bytes]:
        if self.packets:
            return self.packets.pop(0)
        return None


def hex_encode(data: bytes) -> str:
    return data.hex()


def hex_decode(text: str) -> bytes:
    try:
        return bytes.fromhex(text)
    except ValueError as exc:
        raise ProtocolError(f"bad hex payload {text!r}") from exc
