"""The target-state interface the debug stub operates on.

The stub itself is monitor-agnostic: the lightweight VMM, the bare-metal
runner and the full VMM each provide a :class:`TargetAdapter` exposing
the guest state they can see.  Register order for ``g``/``G`` packets:
R0..R7, PC, FLAGS — ten 32-bit little-endian values.
"""

from __future__ import annotations

from typing import List, Optional

NUM_REPORTED_REGS = 10
REG_PC_INDEX = 8
REG_FLAGS_INDEX = 9

# Stop reasons reported in T/S packets (POSIX signal numbers, as GDB uses).
SIGINT = 2
SIGILL = 4
SIGTRAP = 5
SIGSEGV = 11

WATCH_WRITE = "watch"
WATCH_READ = "rwatch"

#: GDB target-description XML served via qXfer:features:read.
TARGET_XML = """<?xml version="1.0"?>
<!DOCTYPE target SYSTEM "gdb-target.dtd">
<target version="1.0">
  <architecture>hx32</architecture>
  <feature name="org.repro.hx32.core">
    <reg name="r0" bitsize="32" type="uint32"/>
    <reg name="r1" bitsize="32" type="uint32"/>
    <reg name="r2" bitsize="32" type="uint32"/>
    <reg name="r3" bitsize="32" type="uint32"/>
    <reg name="r4" bitsize="32" type="uint32"/>
    <reg name="r5" bitsize="32" type="uint32"/>
    <reg name="fp" bitsize="32" type="data_ptr"/>
    <reg name="sp" bitsize="32" type="data_ptr"/>
    <reg name="pc" bitsize="32" type="code_ptr"/>
    <reg name="flags" bitsize="32" type="uint32"/>
  </feature>
</target>
"""


class TargetAdapter:
    """What a monitor must implement for the stub to debug its guest."""

    def read_registers(self) -> List[int]:  # pragma: no cover - interface
        raise NotImplementedError

    def write_register(self, index: int, value: int) -> None:  # pragma: no cover
        raise NotImplementedError

    def read_memory(self, addr: int, length: int) -> Optional[bytes]:  # pragma: no cover
        raise NotImplementedError

    def write_memory(self, addr: int, data: bytes) -> bool:  # pragma: no cover
        raise NotImplementedError

    def set_breakpoint(self, addr: int) -> bool:  # pragma: no cover
        raise NotImplementedError

    def clear_breakpoint(self, addr: int) -> bool:  # pragma: no cover
        raise NotImplementedError

    def set_watchpoint(self, addr: int, length: int,
                       kind: str) -> bool:  # pragma: no cover
        raise NotImplementedError

    def clear_watchpoint(self, addr: int, length: int,
                         kind: str) -> bool:  # pragma: no cover
        raise NotImplementedError

    def resume(self, step: bool) -> None:  # pragma: no cover
        raise NotImplementedError

    def stop_signal(self) -> int:
        """Why the target is currently stopped."""
        return SIGTRAP

    # -- threads (optional; single-threaded defaults) -----------------------
    # GDB thread ids are 1-based; a target with a task table maps task
    # index i to thread id i+1.

    def thread_ids(self) -> List[int]:
        return [1]

    def current_thread_id(self) -> int:
        return 1

    def thread_registers(self, thread_id: int) -> Optional[List[int]]:
        """Registers of a (possibly parked) thread; None if unknown."""
        if thread_id == self.current_thread_id():
            return self.read_registers()
        return None

    def thread_extra_info(self, thread_id: int) -> str:
        return "single-threaded target"


class CpuTargetAdapter(TargetAdapter):
    """Adapter over a raw :class:`repro.hw.cpu.Cpu`.

    Memory access goes through the CPU's translation (what the guest
    sees) but tolerates faults by returning None/False — the debugger
    must never crash the target by probing an unmapped address.
    """

    def __init__(self, cpu) -> None:
        self.cpu = cpu
        self._stop_signal = SIGTRAP
        self.resumed = False
        self.step_requested = False

    # -- registers -----------------------------------------------------------

    def read_registers(self) -> List[int]:
        cpu = self.cpu
        return list(cpu.regs) + [cpu.pc, cpu.flags]

    def write_register(self, index: int, value: int) -> None:
        cpu = self.cpu
        if index < 8:
            cpu.regs[index] = value & 0xFFFFFFFF
        elif index == REG_PC_INDEX:
            cpu.pc = value & 0xFFFFFFFF
        elif index == REG_FLAGS_INDEX:
            cpu.flags = value & 0xFFFFFFFF

    # -- memory ------------------------------------------------------------

    def read_memory(self, addr: int, length: int) -> Optional[bytes]:
        return self.cpu.peek_virtual(1, addr, length)  # through DS

    def write_memory(self, addr: int, data: bytes) -> bool:
        from repro.hw.cpu import CpuFault
        try:
            self.cpu.write_virtual(1, addr, data)
            return True
        except CpuFault:
            return False

    # -- execution control ---------------------------------------------------

    def set_breakpoint(self, addr: int) -> bool:
        self.cpu.code_breakpoints.add(addr)
        return True

    def clear_breakpoint(self, addr: int) -> bool:
        self.cpu.code_breakpoints.discard(addr)
        return True

    def set_watchpoint(self, addr: int, length: int, kind: str) -> bool:
        self.cpu.watchpoints.append((addr, length, kind == WATCH_WRITE))
        return True

    def clear_watchpoint(self, addr: int, length: int, kind: str) -> bool:
        entry = (addr, length, kind == WATCH_WRITE)
        if entry in self.cpu.watchpoints:
            self.cpu.watchpoints.remove(entry)
            return True
        return False

    def resume(self, step: bool) -> None:
        self.resumed = True
        self.step_requested = step

    def stop_signal(self) -> int:
        return self._stop_signal

    def set_stop_signal(self, signal: int) -> None:
        self._stop_signal = signal
