"""GDB Remote Serial Protocol: framing, target stub, host client."""

from repro.rsp.client import RspClient
from repro.rsp.packets import (
    PacketDecoder,
    checksum,
    escape,
    frame,
    hex_decode,
    hex_encode,
    unescape_and_expand,
)
from repro.rsp.stub import DebugStub
from repro.rsp.target import (
    CpuTargetAdapter,
    NUM_REPORTED_REGS,
    SIGILL,
    SIGINT,
    SIGSEGV,
    SIGTRAP,
    TargetAdapter,
)

__all__ = [
    "RspClient",
    "DebugStub",
    "TargetAdapter",
    "CpuTargetAdapter",
    "PacketDecoder",
    "frame",
    "checksum",
    "escape",
    "unescape_and_expand",
    "hex_encode",
    "hex_decode",
    "NUM_REPORTED_REGS",
    "SIGTRAP",
    "SIGINT",
    "SIGILL",
    "SIGSEGV",
]
