"""Host-side RSP client — the wire half of the "software remote debugger".

The client is transport-agnostic: it writes request bytes through
``send``, then repeatedly calls ``pump`` (which must give the target a
chance to execute — e.g. poll the monitor's stub or run the machine) and
reads reply bytes through ``recv`` until a complete packet arrives.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.errors import ProtocolError
from repro.rsp.packets import ACK, NAK, PacketDecoder, frame, hex_decode
from repro.rsp.target import NUM_REPORTED_REGS


class RspClient:
    def __init__(self, send: Callable[[bytes], None],
                 recv: Callable[[], bytes],
                 pump: Callable[[], None],
                 max_pumps: int = 10_000) -> None:
        self._send = send
        self._recv = recv
        self._pump = pump
        self._max_pumps = max_pumps
        self._decoder = PacketDecoder()
        self.acks_seen = 0
        self.naks_seen = 0

    # -- plumbing ------------------------------------------------------------

    def _drain(self) -> None:
        data = self._recv()
        if data:
            self._decoder.feed(data)
        self.acks_seen += sum(1 for ack in self._decoder.acks if ack)
        self.naks_seen += sum(1 for ack in self._decoder.acks if not ack)
        self._decoder.acks.clear()

    def exchange(self, payload: bytes, retries: int = 3) -> bytes:
        """Send one command and wait for its reply packet."""
        for _ in range(retries):
            self._send(frame(payload))
            self._send(b"")  # no-op; keeps transports with flushing happy
            for _ in range(self._max_pumps):
                self._pump()
                self._drain()
                packet = self._decoder.next_packet()
                if packet is not None:
                    self._send(ACK)
                    return packet
            # No reply: retransmit.
        raise ProtocolError(f"no reply to {payload!r}")

    def send_async(self, payload: bytes) -> None:
        """Send without waiting (used for c/s, whose reply comes later)."""
        self._send(frame(payload))

    def send_interrupt(self) -> None:
        """Send the ^C break byte."""
        self._send(b"\x03")

    def wait_for_stop(self, max_pumps: Optional[int] = None) -> bytes:
        """Pump until a stop reply (Sxx/Txx) arrives."""
        budget = max_pumps if max_pumps is not None else self._max_pumps
        for _ in range(budget):
            self._pump()
            self._drain()
            packet = self._decoder.next_packet()
            if packet is not None:
                self._send(ACK)
                return packet
        raise ProtocolError("target did not stop")

    # -- typed helpers ------------------------------------------------------------

    @staticmethod
    def _check_ok(reply: bytes) -> None:
        if reply != b"OK":
            raise ProtocolError(f"target error reply {reply!r}")

    def query_halt_reason(self) -> int:
        reply = self.exchange(b"?")
        if not reply.startswith(b"S"):
            raise ProtocolError(f"unexpected halt reply {reply!r}")
        return int(reply[1:3], 16)

    def read_registers(self) -> List[int]:
        reply = self.exchange(b"g")
        blob = hex_decode(reply.decode("ascii"))
        if len(blob) != 4 * NUM_REPORTED_REGS:
            raise ProtocolError(f"short register blob: {len(blob)} bytes")
        return [int.from_bytes(blob[i * 4:i * 4 + 4], "little")
                for i in range(NUM_REPORTED_REGS)]

    def write_registers(self, values: List[int]) -> None:
        blob = b"".join((v & 0xFFFFFFFF).to_bytes(4, "little")
                        for v in values)
        self._check_ok(self.exchange(b"G" + blob.hex().encode()))

    def read_register(self, index: int) -> int:
        reply = self.exchange(f"p{index:x}".encode())
        return int.from_bytes(hex_decode(reply.decode("ascii")), "little")

    def write_register(self, index: int, value: int) -> None:
        hex_value = (value & 0xFFFFFFFF).to_bytes(4, "little").hex()
        self._check_ok(self.exchange(f"P{index:x}={hex_value}".encode()))

    def read_memory(self, addr: int, length: int) -> bytes:
        reply = self.exchange(f"m{addr:x},{length:x}".encode())
        if reply.startswith(b"E"):
            raise ProtocolError(f"memory read failed: {reply!r}")
        return hex_decode(reply.decode("ascii"))

    def write_memory(self, addr: int, data: bytes) -> None:
        command = f"M{addr:x},{len(data):x}:".encode() + data.hex().encode()
        self._check_ok(self.exchange(command))

    def set_breakpoint(self, addr: int) -> None:
        self._check_ok(self.exchange(f"Z0,{addr:x},1".encode()))

    def clear_breakpoint(self, addr: int) -> None:
        self._check_ok(self.exchange(f"z0,{addr:x},1".encode()))

    def set_watchpoint(self, addr: int, length: int = 4,
                       on_write: bool = True) -> None:
        kind = 2 if on_write else 3
        self._check_ok(self.exchange(f"Z{kind},{addr:x},{length:x}"
                                     .encode()))

    def clear_watchpoint(self, addr: int, length: int = 4,
                         on_write: bool = True) -> None:
        kind = 2 if on_write else 3
        self._check_ok(self.exchange(f"z{kind},{addr:x},{length:x}"
                                     .encode()))

    def cont(self) -> bytes:
        """Continue and wait for the next stop reply."""
        self.send_async(b"c")
        return self.wait_for_stop()

    def step(self) -> bytes:
        """Single-step and wait for the stop reply."""
        self.send_async(b"s")
        return self.wait_for_stop()

    # -- threads ------------------------------------------------------------

    def thread_ids(self) -> List[int]:
        """Enumerate target threads (qfThreadInfo)."""
        reply = self.exchange(b"qfThreadInfo")
        if not reply.startswith(b"m"):
            return []
        ids = [int(part, 16) for part in
               reply[1:].decode("ascii").split(",") if part]
        tail = self.exchange(b"qsThreadInfo")
        if not tail.startswith(b"l"):
            raise ProtocolError(f"bad qsThreadInfo reply {tail!r}")
        return ids

    def current_thread(self) -> int:
        reply = self.exchange(b"qC")
        if not reply.startswith(b"QC"):
            raise ProtocolError(f"bad qC reply {reply!r}")
        return int(reply[2:], 16)

    def select_thread(self, thread_id: int) -> None:
        """Hg: point register reads at a (possibly parked) thread."""
        self._check_ok(self.exchange(f"Hg{thread_id:x}".encode()))

    def thread_extra_info(self, thread_id: int) -> str:
        reply = self.exchange(
            f"qThreadExtraInfo,{thread_id:x}".encode())
        if reply.startswith(b"E"):
            raise ProtocolError(f"thread info failed: {reply!r}")
        return hex_decode(reply.decode("ascii")).decode(
            "utf-8", errors="replace")

    def thread_alive(self, thread_id: int) -> bool:
        return self.exchange(f"T{thread_id:x}".encode()) == b"OK"

    def monitor_command(self, text: str) -> str:
        """``monitor <cmd>`` (qRcmd): returns the monitor's output."""
        reply = self.exchange(b"qRcmd," + text.encode("utf-8").hex()
                              .encode("ascii"))
        if reply == b"OK":
            return ""
        if reply.startswith(b"E") and len(reply) == 3:
            raise ProtocolError(f"monitor command failed: {reply!r}")
        return hex_decode(reply.decode("ascii")).decode(
            "utf-8", errors="replace")

    def kill(self) -> None:
        self.send_async(b"k")

    def detach(self) -> None:
        self.exchange(b"D")
