"""Host-side RSP client — the wire half of the "software remote debugger".

The client is transport-agnostic: it writes request bytes through
``send``, then repeatedly calls ``pump`` (which must give the target a
chance to execute — e.g. poll the monitor's stub or run the machine) and
reads reply bytes through ``recv`` until a complete packet arrives.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.errors import ProtocolError, RspTransportError
from repro.rsp.packets import ACK, PacketDecoder, frame, hex_decode
from repro.rsp.target import NUM_REPORTED_REGS


@dataclass
class RetryPolicy:
    """How :meth:`RspClient.exchange` survives a lossy transport.

    Time is *simulated* time, measured in pump quanta (each pump gives
    the target one scheduling slice), so the policy is deterministic and
    independent of host wall clock:

    * ``max_attempts`` transmissions per exchange;
    * each attempt waits at most ``pumps_per_attempt`` quanta for a
      reply (the per-exchange timeout is the product of the two);
    * before retransmission *k* the client backs off
      ``min(backoff_base_pumps * backoff_multiplier**(k-1),
      backoff_max_pumps)`` quanta — bounded exponential backoff;
    * a NAK from the stub (our frame arrived corrupted) triggers an
      immediate retransmission instead of waiting out the timeout.

    The default policy preserves the client's historical behaviour
    (3 bare attempts, no backoff) plus NAK fast-retransmit.  Exhausted
    attempts raise :class:`repro.errors.RspTransportError`.
    """

    max_attempts: int = 3
    pumps_per_attempt: Optional[int] = None  # None: the client's max_pumps
    backoff_base_pumps: int = 0
    backoff_multiplier: float = 2.0
    backoff_max_pumps: int = 512
    retransmit_on_nak: bool = True

    def backoff_pumps(self, attempt: int) -> int:
        """Idle quanta before transmission ``attempt`` (0-based)."""
        if attempt <= 0 or self.backoff_base_pumps <= 0:
            return 0
        pumps = self.backoff_base_pumps \
            * self.backoff_multiplier ** (attempt - 1)
        return int(min(pumps, self.backoff_max_pumps))


class RspClient:
    def __init__(self, send: Callable[[bytes], None],
                 recv: Callable[[], bytes],
                 pump: Callable[[], None],
                 max_pumps: int = 10_000,
                 retry_policy: Optional[RetryPolicy] = None) -> None:
        self._send = send
        self._recv = recv
        self._pump = pump
        self._max_pumps = max_pumps
        self.retry_policy = retry_policy or RetryPolicy()
        self._decoder = PacketDecoder()
        self.acks_seen = 0
        self.naks_seen = 0
        #: Recovery-action counters (exported via repro.perf.export).
        self.recoveries: Dict[str, int] = {}
        #: Optional observer called with each recovery action name.
        self.on_recovery: Optional[Callable[[str], None]] = None

    # -- plumbing ------------------------------------------------------------

    def _recover(self, action: str) -> None:
        self.recoveries[action] = self.recoveries.get(action, 0) + 1
        if self.on_recovery is not None:
            self.on_recovery(action)

    def _drain(self) -> None:
        data = self._recv()
        if data:
            self._decoder.feed(data)
        self.acks_seen += sum(1 for ack in self._decoder.acks if ack)
        self.naks_seen += sum(1 for ack in self._decoder.acks if not ack)
        self._decoder.acks.clear()

    def exchange(self, payload: bytes,
                 retries: Optional[int] = None,
                 policy: Optional[RetryPolicy] = None) -> bytes:
        """Send one command and wait for its reply packet.

        ``policy`` overrides the client's :class:`RetryPolicy` for this
        exchange; the legacy ``retries`` argument maps onto
        ``max_attempts``.  Exhausting the policy raises
        :class:`~repro.errors.RspTransportError` — never a fabricated
        reply.
        """
        policy = policy or self.retry_policy
        attempts = retries if retries is not None else policy.max_attempts
        budget = policy.pumps_per_attempt \
            if policy.pumps_per_attempt is not None else self._max_pumps
        for attempt in range(attempts):
            for _ in range(policy.backoff_pumps(attempt)):
                self._pump()   # back off in simulated time
            if attempt:
                self._recover("retransmit")
                if policy.backoff_pumps(attempt):
                    self._recover("backoff")
            self._send(frame(payload))
            self._send(b"")  # no-op; keeps transports with flushing happy
            naks_before = self.naks_seen
            for _ in range(budget):
                self._pump()
                self._drain()
                packet = self._decoder.next_packet()
                if packet is not None:
                    self._send(ACK)
                    return packet
                if policy.retransmit_on_nak \
                        and self.naks_seen > naks_before:
                    # The stub NAK'd our frame: retransmit immediately.
                    self._recover("nak-retransmit")
                    break
            # No reply: retransmit (next attempt).
        raise RspTransportError(
            f"no reply to {payload!r} after {attempts} attempt(s)")

    def send_async(self, payload: bytes) -> None:
        """Send without waiting (used for c/s, whose reply comes later)."""
        self._send(frame(payload))

    def send_interrupt(self) -> None:
        """Send the ^C break byte."""
        self._send(b"\x03")

    def wait_for_stop(self, max_pumps: Optional[int] = None) -> bytes:
        """Pump until a stop reply (Sxx/Txx) arrives."""
        budget = max_pumps if max_pumps is not None else self._max_pumps
        for _ in range(budget):
            self._pump()
            self._drain()
            packet = self._decoder.next_packet()
            if packet is not None:
                self._send(ACK)
                return packet
        raise RspTransportError("target did not stop")

    # -- typed helpers ------------------------------------------------------------

    @staticmethod
    def _check_ok(reply: bytes) -> None:
        if reply != b"OK":
            raise ProtocolError(f"target error reply {reply!r}")

    def query_halt_reason(self) -> int:
        reply = self.exchange(b"?")
        if not reply.startswith(b"S"):
            raise ProtocolError(f"unexpected halt reply {reply!r}")
        return int(reply[1:3], 16)

    def read_registers(self) -> List[int]:
        reply = self.exchange(b"g")
        blob = hex_decode(reply.decode("ascii"))
        if len(blob) != 4 * NUM_REPORTED_REGS:
            raise ProtocolError(f"short register blob: {len(blob)} bytes")
        return [int.from_bytes(blob[i * 4:i * 4 + 4], "little")
                for i in range(NUM_REPORTED_REGS)]

    def write_registers(self, values: List[int]) -> None:
        blob = b"".join((v & 0xFFFFFFFF).to_bytes(4, "little")
                        for v in values)
        self._check_ok(self.exchange(b"G" + blob.hex().encode()))

    def read_register(self, index: int) -> int:
        reply = self.exchange(f"p{index:x}".encode())
        return int.from_bytes(hex_decode(reply.decode("ascii")), "little")

    def write_register(self, index: int, value: int) -> None:
        hex_value = (value & 0xFFFFFFFF).to_bytes(4, "little").hex()
        self._check_ok(self.exchange(f"P{index:x}={hex_value}".encode()))

    def read_memory(self, addr: int, length: int) -> bytes:
        reply = self.exchange(f"m{addr:x},{length:x}".encode())
        if reply.startswith(b"E"):
            raise ProtocolError(f"memory read failed: {reply!r}")
        return hex_decode(reply.decode("ascii"))

    def write_memory(self, addr: int, data: bytes) -> None:
        command = f"M{addr:x},{len(data):x}:".encode() + data.hex().encode()
        self._check_ok(self.exchange(command))

    def set_breakpoint(self, addr: int) -> None:
        self._check_ok(self.exchange(f"Z0,{addr:x},1".encode()))

    def clear_breakpoint(self, addr: int) -> None:
        self._check_ok(self.exchange(f"z0,{addr:x},1".encode()))

    def set_watchpoint(self, addr: int, length: int = 4,
                       on_write: bool = True) -> None:
        kind = 2 if on_write else 3
        self._check_ok(self.exchange(f"Z{kind},{addr:x},{length:x}"
                                     .encode()))

    def clear_watchpoint(self, addr: int, length: int = 4,
                         on_write: bool = True) -> None:
        kind = 2 if on_write else 3
        self._check_ok(self.exchange(f"z{kind},{addr:x},{length:x}"
                                     .encode()))

    def cont(self) -> bytes:
        """Continue and wait for the next stop reply."""
        self.send_async(b"c")
        return self.wait_for_stop()

    def step(self) -> bytes:
        """Single-step and wait for the stop reply."""
        self.send_async(b"s")
        return self.wait_for_stop()

    # -- threads ------------------------------------------------------------

    def thread_ids(self) -> List[int]:
        """Enumerate target threads (qfThreadInfo)."""
        reply = self.exchange(b"qfThreadInfo")
        if not reply.startswith(b"m"):
            return []
        ids = [int(part, 16) for part in
               reply[1:].decode("ascii").split(",") if part]
        tail = self.exchange(b"qsThreadInfo")
        if not tail.startswith(b"l"):
            raise ProtocolError(f"bad qsThreadInfo reply {tail!r}")
        return ids

    def current_thread(self) -> int:
        reply = self.exchange(b"qC")
        if not reply.startswith(b"QC"):
            raise ProtocolError(f"bad qC reply {reply!r}")
        return int(reply[2:], 16)

    def select_thread(self, thread_id: int) -> None:
        """Hg: point register reads at a (possibly parked) thread."""
        self._check_ok(self.exchange(f"Hg{thread_id:x}".encode()))

    def thread_extra_info(self, thread_id: int) -> str:
        reply = self.exchange(
            f"qThreadExtraInfo,{thread_id:x}".encode())
        if reply.startswith(b"E"):
            raise ProtocolError(f"thread info failed: {reply!r}")
        return hex_decode(reply.decode("ascii")).decode(
            "utf-8", errors="replace")

    def thread_alive(self, thread_id: int) -> bool:
        return self.exchange(f"T{thread_id:x}".encode()) == b"OK"

    def monitor_command(self, text: str) -> str:
        """``monitor <cmd>`` (qRcmd): returns the monitor's output."""
        reply = self.exchange(b"qRcmd," + text.encode("utf-8").hex()
                              .encode("ascii"))
        if reply == b"OK":
            return ""
        if reply.startswith(b"E") and len(reply) == 3:
            raise ProtocolError(f"monitor command failed: {reply!r}")
        return hex_decode(reply.decode("ascii")).decode(
            "utf-8", errors="replace")

    def kill(self) -> None:
        self.send_async(b"k")

    def detach(self) -> None:
        self.exchange(b"D")
