"""The target-side GDB remote stub.

This is the "remote debugging functions (stub)" block of the paper's
Fig. 2.1.  It lives inside the monitor, reads RSP bytes from the debug
UART, executes commands against a :class:`TargetAdapter`, and writes
replies back.  The stub never touches guest-owned devices — only the
UART, which is exactly why the monitor must emulate/own the UART, PIC
and timer but nothing else.

Supported commands: ``?`` ``g`` ``G`` ``p`` ``P`` ``m`` ``M`` ``X``
``c`` ``s`` ``k`` ``D`` ``H`` ``T`` ``Z0/z0`` ``Z1/z1`` ``Z2-4/z2-4``
``qSupported`` ``qAttached`` ``qC`` ``qfThreadInfo`` ``qsThreadInfo``
``vCont?``.  Unknown packets get the mandated empty response.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.errors import ProtocolError
from repro.obs.taps import TapPoint
from repro.rsp.packets import (
    PacketDecoder,
    frame,
    hex_decode,
    hex_encode,
)
from repro.rsp.target import (
    NUM_REPORTED_REGS,
    TargetAdapter,
    WATCH_READ,
    WATCH_WRITE,
    SIGTRAP,
)

_WATCH_KINDS = {2: WATCH_WRITE, 3: WATCH_READ, 4: WATCH_WRITE}


class DebugStub:
    """Packet dispatcher bound to one target adapter and one byte pipe."""

    def __init__(self, target: TargetAdapter,
                 send_bytes: Callable[[bytes], None]) -> None:
        self.target = target
        self._send_bytes = send_bytes
        self._decoder = PacketDecoder()
        self.no_ack_mode = False
        #: True while the guest should be executing (set by c/s commands).
        self.running = False
        self.packets_handled = 0
        self.killed = False
        #: Thread selected by Hg (0 = any/current).
        self._g_thread = 0
        #: Multicast observation point notified as ``taps(direction,
        #: payload)`` with ``"in"`` for every dispatched packet and
        #: ``"out"`` for every framed reply payload.  The tracer
        #: subscribes here; observers must only observe.
        self.packet_taps = TapPoint()

    # ------------------------------------------------------------------

    def feed(self, data: bytes) -> None:
        """Push raw UART bytes into the stub; replies go out via the pipe."""
        acks = self._decoder.feed(data)
        if acks and not self.no_ack_mode:
            self._send_bytes(acks)
        while True:
            packet = self._decoder.next_packet()
            if packet is None:
                break
            self._dispatch(packet)
        if self._decoder.interrupts:
            self._decoder.interrupts = 0
            if self.running:
                self.report_stop(2)  # SIGINT

    def pending_interrupt(self) -> bool:
        return self._decoder.interrupts > 0

    # ------------------------------------------------------------------

    def _reply(self, payload: bytes) -> None:
        if self.packet_taps:
            self.packet_taps("out", payload)
        self._send_bytes(frame(payload))

    def report_stop(self, signal: Optional[int] = None) -> None:
        """Send a stop reply (after a breakpoint/step/fault).

        Stop replies answer an outstanding ``c``/``s``; if the target
        stopped on its own (guest died while detached), nothing is sent
        — the debugger learns the state from its next ``?``.
        """
        if signal is None:
            signal = self.target.stop_signal()
        was_running = self.running
        self.running = False
        if was_running:
            self._reply(f"S{signal:02x}".encode())

    # ------------------------------------------------------------------

    def _dispatch(self, packet: bytes) -> None:
        self.packets_handled += 1
        if self.packet_taps:
            self.packet_taps("in", packet)
        try:
            text = packet.decode("latin-1")
        except UnicodeDecodeError:
            self._reply(b"E00")
            return
        if not text:
            self._reply(b"")
            return
        command, args = text[0], text[1:]
        handler = getattr(self, f"_cmd_{command}", None)
        if command == "q":
            self._query(args)
        elif command == "v":
            self._multiletter(args)
        elif handler is not None:
            try:
                handler(args)
            except (ProtocolError, ValueError):
                self._reply(b"E01")
        else:
            self._reply(b"")  # unknown: mandated empty response

    # -- simple commands ------------------------------------------------------

    def _query(self, args: str) -> None:
        if args.startswith("Supported"):
            self._reply(b"PacketSize=4096;swbreak+;hwbreak+;"
                        b"QStartNoAckMode+;qXfer:features:read+")
            return
        if args.startswith("Rcmd,"):
            self._rcmd(args[5:])
            return
        if args.startswith("Xfer:features:read:"):
            self._xfer_features(args[len("Xfer:features:read:"):])
            return
        if args == "Attached":
            self._reply(b"1")
            return
        if args == "C":
            current = self.target.current_thread_id()
            self._reply(f"QC{current:x}".encode())
            return
        if args == "fThreadInfo":
            ids = self.target.thread_ids()
            self._reply(("m" + ",".join(f"{i:x}" for i in ids))
                        .encode())
            return
        if args == "sThreadInfo":
            self._reply(b"l")
            return
        if args.startswith("ThreadExtraInfo,"):
            try:
                thread_id = int(args.split(",", 1)[1], 16)
                info = self.target.thread_extra_info(thread_id)
            except (ValueError, ProtocolError):
                self._reply(b"E01")
                return
            self._reply(hex_encode(info.encode("utf-8")).encode("ascii"))
            return
        self._reply(b"")

    def _xfer_features(self, args: str) -> None:
        """Serve the target-description XML in offset/length windows."""
        from repro.rsp.target import TARGET_XML
        try:
            annex, window = args.split(":", 1)
            offset_text, length_text = window.split(",", 1)
            offset, length = int(offset_text, 16), int(length_text, 16)
        except ValueError:
            self._reply(b"E01")
            return
        if annex != "target.xml":
            self._reply(b"E00")
            return
        data = TARGET_XML.encode("utf-8")
        chunk = data[offset:offset + length]
        marker = b"l" if offset + length >= len(data) else b"m"
        self._reply(marker + chunk)

    def _rcmd(self, hex_command: str) -> None:
        """``monitor <cmd>``: forwarded to the target's monitor."""
        handler = getattr(self.target, "monitor_command", None)
        if handler is None:
            self._reply(b"")  # not supported by this target
            return
        try:
            text = hex_decode(hex_command).decode("utf-8",
                                                  errors="replace")
            output = handler(text)
        except Exception:  # noqa: BLE001 - stub must never die
            self._reply(b"E01")
            return
        if not output:
            self._reply(b"OK")
            return
        if not output.endswith("\n"):
            output += "\n"
        self._reply(hex_encode(output.encode("utf-8")).encode("ascii"))

    def _multiletter(self, args: str) -> None:
        if args == "Cont?":
            self._reply(b"vCont;c;s")
            return
        if args.startswith("Cont;"):
            action = args[5:6]
            if action == "s":
                self._cmd_s("")
                return
            if action == "c":
                self._cmd_c("")
                return
        self._reply(b"")

    # -- registers ------------------------------------------------------------

    def _cmd_g(self, args: str) -> None:
        if self._g_thread in (0,) or \
                self._g_thread == self.target.current_thread_id():
            values = self.target.read_registers()
        else:
            values = self.target.thread_registers(self._g_thread)
            if values is None:
                self._reply(b"E05")
                return
        blob = b"".join((v & 0xFFFFFFFF).to_bytes(4, "little")
                        for v in values)
        self._reply(hex_encode(blob).encode())

    def _cmd_G(self, args: str) -> None:
        blob = hex_decode(args)
        if len(blob) != 4 * NUM_REPORTED_REGS:
            self._reply(b"E02")
            return
        for index in range(NUM_REPORTED_REGS):
            value = int.from_bytes(blob[index * 4:index * 4 + 4], "little")
            self.target.write_register(index, value)
        self._reply(b"OK")

    def _cmd_p(self, args: str) -> None:
        index = int(args, 16)
        values = self.target.read_registers()
        if index >= len(values):
            self._reply(b"E03")
            return
        self._reply(hex_encode(values[index].to_bytes(4, "little")).encode())

    def _cmd_P(self, args: str) -> None:
        reg_text, _, value_text = args.partition("=")
        index = int(reg_text, 16)
        value = int.from_bytes(hex_decode(value_text), "little")
        self.target.write_register(index, value)
        self._reply(b"OK")

    # -- memory ------------------------------------------------------------

    def _cmd_m(self, args: str) -> None:
        addr_text, _, len_text = args.partition(",")
        addr, length = int(addr_text, 16), int(len_text, 16)
        data = self.target.read_memory(addr, length)
        if data is None:
            self._reply(b"E14")  # EFAULT
            return
        self._reply(hex_encode(data).encode())

    def _cmd_M(self, args: str) -> None:
        header, _, payload = args.partition(":")
        addr_text, _, len_text = header.partition(",")
        addr, length = int(addr_text, 16), int(len_text, 16)
        data = hex_decode(payload)
        if len(data) != length:
            self._reply(b"E02")
            return
        if not self.target.write_memory(addr, data):
            self._reply(b"E14")
            return
        self._reply(b"OK")

    def _cmd_X(self, args: str) -> None:
        header, _, payload = args.partition(":")
        addr_text, _, len_text = header.partition(",")
        addr, length = int(addr_text, 16), int(len_text, 16)
        data = payload.encode("latin-1")
        if len(data) != length:
            self._reply(b"E02")
            return
        if not self.target.write_memory(addr, data):
            self._reply(b"E14")
            return
        self._reply(b"OK")

    # -- execution ------------------------------------------------------------

    def _cmd_c(self, args: str) -> None:
        if args:
            self.target.write_register(8, int(args, 16))  # resume address
        self.running = True
        self.target.resume(step=False)
        # No reply now: the stop reply comes when the target stops.

    def _cmd_s(self, args: str) -> None:
        if args:
            self.target.write_register(8, int(args, 16))
        self.running = True
        self.target.resume(step=True)

    def _cmd_k(self, args: str) -> None:
        self.killed = True
        # GDB does not expect a reply to k.

    def _cmd_D(self, args: str) -> None:
        self._reply(b"OK")
        self.running = True
        self.target.resume(step=False)

    def _cmd_H(self, args: str) -> None:
        """Hg<id>: select the thread 'g' reads; Hc is accepted as-is
        (execution control always applies to the whole guest)."""
        if args[:1] == "g":
            try:
                value = int(args[1:], 16)
            except ValueError:
                self._reply(b"E01")
                return
            if value in (0, -1) or value == 0xFFFFFFFF:
                self._g_thread = 0
            elif value in self.target.thread_ids():
                self._g_thread = value
            else:
                self._reply(b"E01")
                return
        self._reply(b"OK")

    def _cmd_T(self, args: str) -> None:
        try:
            thread_id = int(args, 16)
        except ValueError:
            self._reply(b"E01")
            return
        if thread_id in self.target.thread_ids():
            self._reply(b"OK")
        else:
            self._reply(b"E01")

    # -- breakpoints ------------------------------------------------------------

    def _parse_z(self, args: str):
        parts = args.split(",")
        if len(parts) < 3:
            raise ProtocolError(f"malformed Z/z packet {args!r}")
        return int(parts[0]), int(parts[1], 16), int(parts[2], 16)

    def _cmd_Z(self, args: str) -> None:
        kind, addr, length = self._parse_z(args)
        if kind in (0, 1):
            ok = self.target.set_breakpoint(addr)
        elif kind in _WATCH_KINDS:
            ok = self.target.set_watchpoint(addr, length,
                                            _WATCH_KINDS[kind])
            if kind == 4:  # access watchpoint: read side too
                ok = self.target.set_watchpoint(addr, length,
                                                WATCH_READ) and ok
        else:
            self._reply(b"")
            return
        self._reply(b"OK" if ok else b"E09")

    def _cmd_z(self, args: str) -> None:
        kind, addr, length = self._parse_z(args)
        if kind in (0, 1):
            ok = self.target.clear_breakpoint(addr)
        elif kind in _WATCH_KINDS:
            ok = self.target.clear_watchpoint(addr, length,
                                              _WATCH_KINDS[kind])
            if kind == 4:
                ok = self.target.clear_watchpoint(addr, length,
                                                  WATCH_READ) and ok
        else:
            self._reply(b"")
            return
        self._reply(b"OK" if ok else b"E09")


# '?' cannot be a Python method name suffix; patch the dispatch table.
def _cmd_question(self: DebugStub, args: str) -> None:
    self._reply(f"S{self.target.stop_signal():02x}".encode())


setattr(DebugStub, "_cmd_?", _cmd_question)
