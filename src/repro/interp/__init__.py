"""Superblock translation for the HX32 interpreter.

:mod:`repro.interp.translate` holds the tracing translator that stitches
hot linear instruction sequences into single compiled Python callables —
the raw-speed tier above the decoded-instruction cache.  See
``docs/INTERNALS.md`` §12 for the design.
"""

from repro.interp.translate import SuperblockEngine

__all__ = ["SuperblockEngine"]
