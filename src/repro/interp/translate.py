"""Superblock translation ("tracing JIT") for the HX32 hot loop.

The decoded-instruction cache (PR 1) removed fetch/decode from the hot
path but still pays one full Python-level dispatch — guard checks, a
dict probe, a try frame, per-instruction accounting — for every retired
instruction.  This module removes that too, the same way a trace cache
or a dynamic binary translator does: linear runs of hot guest code are
stitched into *superblocks* and compiled (via generated Python source +
``compile``) into one callable per block, with the register file bound
to locals and ALU flag updates inlined.

Hot-spot detection is the classic counter scheme: every taken backward
control transfer bumps a counter on its target linear PC (a monitor can
additionally seed counters from :class:`repro.obs.profiler.GuestProfiler`
samples via :meth:`SuperblockEngine.note_sample`); past a threshold the
target is traced and compiled.

Translation must be *observably invisible*.  The contract, enforced by
construction and by the differential regression tests:

* **Per-instruction accounting.**  ``instret``/``cycle_count``/budget
  charges are committed to the CPU before every operation that can
  fault, touch a device, or otherwise observe CPU state, and at every
  block exit — so profiler strides, watchdog quanta, fault
  ``at_count`` triggers, device event timing and replay journals are
  byte-identical with translation on.
* **Block boundaries respect run-loop boundaries.**  A block only
  executes while it provably cannot cross ``cpu.block_instret_limit``
  (the run cap or the next profiler stride) or
  ``cpu.block_cycle_limit`` (the next device-event due time); outside
  a run loop both limits are 0, so bare ``cpu.step()`` keeps exact
  single-instruction semantics.
* **Same invalidation triggers as the decode cache.**  Blocks guard on
  CS descriptor identity, the paging on/off state and the backing
  physical page's write generation, and the whole cache is flushed by
  :meth:`repro.hw.cpu.Cpu.invalidate_decode_cache` (breakpoint
  mutation, TLB flush generation, CR0.PG toggles, capacity).  A store
  inside a block re-checks its own code page generation so
  self-modifying code exits to the interpreter before executing stale
  translations; a memory access that leaves an interrupt pending exits
  so acceptance happens at the same instruction boundary as under the
  interpreter.

Anything complicated ends a trace: privileged operations, port I/O,
software interrupts, IRET/RET/CALL, PUSHF/POPF, segment loads and
breakpointed PCs all fall back to the interpreter, exactly as before.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

# The instruction classification (what inlines, what needs a handler,
# what touches memory/stores) is shared with the static-analysis stack
# so HX32 semantics live in one module.  The *formula strings* below
# stay local on purpose: they are the independent encoding the
# translation validator (repro.analysis.tv) checks against
# repro.analysis.sema's reference semantics.
from repro.analysis.sema import (
    HANDLER as _HANDLER,
    INLINE as _INLINE,
    MEMORY as _MEMORY,
    STORE as _STORE,
)
from repro.hw import isa
from repro.hw.cpu import CpuFault
from repro.hw.paging import PAGE_SHIFT
from repro.sim.budget import CAT_GUEST

#: Conditional terminators: (taken-expr, not-taken-expr) over the local
#: flag word ``f`` (CF=1, ZF=64, SF=128, OF=2048; ``(f >> 4) ^ f``
#: aligns OF with SF so bit 128 tests SF != OF).
_COND = {
    "JZ": ("f & 64", "not f & 64"),
    "JNZ": ("not f & 64", "f & 64"),
    "JC": ("f & 1", "not f & 1"),
    "JNC": ("not f & 1", "f & 1"),
    "JS": ("f & 128", "not f & 128"),
    "JNS": ("not f & 128", "f & 128"),
    "JGE": ("not ((f >> 4) ^ f) & 128", "((f >> 4) ^ f) & 128"),
    "JL": ("((f >> 4) ^ f) & 128", "not ((f >> 4) ^ f) & 128"),
    "JG": ("not (f & 64 or ((f >> 4) ^ f) & 128)",
           "f & 64 or ((f >> 4) ^ f) & 128"),
    "JLE": ("f & 64 or ((f >> 4) ^ f) & 128",
            "not (f & 64 or ((f >> 4) ^ f) & 128)"),
}

_TERMINATORS = frozenset(_COND) | {"JMP"}

_MASK = 4294967295  # 0xFFFFFFFF
#: ``f & -2242`` clears CF|ZF|SF|OF (~0x8C1) and preserves TF/IF/IOPL.


@dataclass
class BlockMeta:
    """Translation-time record of one compiled superblock.

    Everything the translation validator needs to re-derive and check
    the block: the decoded trace it was compiled from, the generated
    source, the handler binding table and the static guard values the
    block tuple bakes in.  Kept per cached block (dropped on evict /
    invalidate) so blocks can also be validated offline after the fact.
    """

    entry_pc: int
    entry_lin: int
    phys_entry: int
    page: int
    generation: int
    paging: bool
    descriptor: object
    source: str
    insns: List[Tuple[int, isa.InsnSpec, object]]
    handlers: List[Tuple[str, object]]


def _add_lines(dest: Optional[str], a: str, b: str) -> List[str]:
    """32-bit add with the exact CF/OF/ZF/SF of ``Cpu._alu_add``."""
    lines = [f"a = {a}", f"b = {b}", "t = a + b", "m = t & 4294967295"]
    if dest is not None:
        lines.append(f"{dest} = m")
    lines.append(
        "f = (f & -2242) | (t >> 32) | ((m >> 24) & 128)"
        " | ((((a ^ m) & (b ^ m)) & 2147483648) >> 20)"
        " | (64 if m == 0 else 0)")
    return lines


def _sub_lines(dest: Optional[str], a: str, b: str) -> List[str]:
    """32-bit subtract with the exact flags of ``Cpu._alu_sub``."""
    lines = [f"a = {a}", f"b = {b}", "m = (a - b) & 4294967295"]
    if dest is not None:
        lines.append(f"{dest} = m")
    lines.append(
        "f = (f & -2242) | (1 if a < b else 0) | ((m >> 24) & 128)"
        " | ((((a ^ b) & (a ^ m)) & 2147483648) >> 20)"
        " | (64 if m == 0 else 0)")
    return lines


def _logic_lines(dest: Optional[str], expr: str,
                 mask: bool = True) -> List[str]:
    """CF=OF=0, ZF/SF from the result — ``Cpu._alu_logic``."""
    lines = [f"m = ({expr}) & 4294967295" if mask else f"m = {expr}"]
    if dest is not None:
        lines.append(f"{dest} = m")
    lines.append(
        "f = (f & -2242) | ((m >> 24) & 128) | (64 if m == 0 else 0)")
    return lines


def _inline_lines(mnemonic: str, ops) -> List[str]:
    """Generated statements for one inlined instruction."""
    if mnemonic == "NOP":
        return []
    if mnemonic == "MOVI":
        return [f"regs[{ops[0]}] = {ops[1]}"]
    if mnemonic == "MOV":
        return [f"regs[{ops[0]}] = regs[{ops[1]}]"]
    if mnemonic == "LEA":
        return [f"regs[{ops[0]}] = (regs[{ops[1]}] + {ops[2]})"
                " & 4294967295"]
    if mnemonic == "XCHG":
        a, b = ops
        return [f"regs[{a}], regs[{b}] = regs[{b}], regs[{a}]"]
    if mnemonic == "ADD":
        return _add_lines(f"regs[{ops[0]}]",
                          f"regs[{ops[0]}]", f"regs[{ops[1]}]")
    if mnemonic == "ADDI":
        return _add_lines(f"regs[{ops[0]}]", f"regs[{ops[0]}]",
                          str(ops[1]))
    if mnemonic == "SUB":
        return _sub_lines(f"regs[{ops[0]}]",
                          f"regs[{ops[0]}]", f"regs[{ops[1]}]")
    if mnemonic == "SUBI":
        return _sub_lines(f"regs[{ops[0]}]", f"regs[{ops[0]}]",
                          str(ops[1]))
    if mnemonic == "CMP":
        return _sub_lines(None, f"regs[{ops[0]}]", f"regs[{ops[1]}]")
    if mnemonic == "CMPI":
        return _sub_lines(None, f"regs[{ops[0]}]", str(ops[1]))
    if mnemonic == "NEG":
        return _sub_lines(f"regs[{ops}]", "0", f"regs[{ops}]")
    if mnemonic == "AND":
        return _logic_lines(f"regs[{ops[0]}]",
                            f"regs[{ops[0]}] & regs[{ops[1]}]", False)
    if mnemonic == "ANDI":
        return _logic_lines(f"regs[{ops[0]}]",
                            f"regs[{ops[0]}] & {ops[1]}", False)
    if mnemonic == "OR":
        return _logic_lines(f"regs[{ops[0]}]",
                            f"regs[{ops[0]}] | regs[{ops[1]}]", False)
    if mnemonic == "ORI":
        return _logic_lines(f"regs[{ops[0]}]",
                            f"regs[{ops[0]}] | {ops[1]}", False)
    if mnemonic == "XOR":
        return _logic_lines(f"regs[{ops[0]}]",
                            f"regs[{ops[0]}] ^ regs[{ops[1]}]", False)
    if mnemonic == "XORI":
        return _logic_lines(f"regs[{ops[0]}]",
                            f"regs[{ops[0]}] ^ {ops[1]}", False)
    if mnemonic == "TEST":
        return _logic_lines(None,
                            f"regs[{ops[0]}] & regs[{ops[1]}]", False)
    if mnemonic == "SHL":
        return _logic_lines(f"regs[{ops[0]}]",
                            f"regs[{ops[0]}] << (regs[{ops[1]}] & 31)")
    if mnemonic == "SHLI":
        return _logic_lines(f"regs[{ops[0]}]",
                            f"regs[{ops[0]}] << {ops[1] & 31}")
    if mnemonic == "SHR":
        return _logic_lines(f"regs[{ops[0]}]",
                            f"regs[{ops[0]}] >> (regs[{ops[1]}] & 31)",
                            False)
    if mnemonic == "SHRI":
        return _logic_lines(f"regs[{ops[0]}]",
                            f"regs[{ops[0]}] >> {ops[1] & 31}", False)
    if mnemonic == "MUL":
        return _logic_lines(f"regs[{ops[0]}]",
                            f"regs[{ops[0]}] * regs[{ops[1]}]")
    if mnemonic == "MULI":
        return _logic_lines(f"regs[{ops[0]}]",
                            f"regs[{ops[0]}] * {ops[1]}")
    if mnemonic == "DIVI":
        # Only reached with a non-zero immediate (checked at trace time).
        return _logic_lines(f"regs[{ops[0]}]",
                            f"regs[{ops[0]}] // {ops[1]}", False)
    if mnemonic == "NOT":
        return _logic_lines(f"regs[{ops}]", f"~regs[{ops}]")
    raise AssertionError(f"no inline emitter for {mnemonic}")


class SuperblockEngine:
    """Hot-trace detection, translation and the compiled-block cache.

    Owned by one :class:`repro.hw.cpu.Cpu`; the CPU dispatches into
    :attr:`blocks` (linear PC -> block tuple) from its step path and
    calls :meth:`invalidate` from the shared decode-cache invalidation
    triggers.  A block tuple is ``(fn, insns, cycles, descriptor,
    paging, page, generation)`` — the callable plus the static guards
    the dispatcher checks before entering it.
    """

    #: Taken backward transfers to a PC before it is traced.
    HOT_THRESHOLD = 32
    #: Profiler samples are worth this many backward-branch observations.
    SAMPLE_WEIGHT = 4
    #: Trace length bounds (instructions).
    MIN_BLOCK_INSNS = 2
    MAX_BLOCK_INSNS = 48
    #: Whole-cache flush bound, trace-cache style (like the decode
    #: cache, but blocks are far bigger objects, so far fewer of them).
    CACHE_CAPACITY = 1024

    def __init__(self, cpu) -> None:
        self.cpu = cpu
        self.enabled = True
        #: linear entry PC -> block tuple; shared with the CPU.
        self.blocks: Dict[int, tuple] = {}
        #: linear entry PC -> BlockMeta for every cached block.
        self.block_meta: Dict[int, BlockMeta] = {}
        self._hot: Dict[int, int] = {}
        self._refused: Set[int] = set()
        self.blocks_compiled = 0
        self.hits = 0
        self.guard_failures = 0
        self.invalidations = 0
        self.insns_translated = 0
        #: Verify-on-compile: run the translation validator on every
        #: block at translation time; rejected blocks are never
        #: installed (execution falls back to the decode cache).
        self.verify = False
        self.tv_validated = 0
        self.tv_rejected = 0
        self.tv_failures: List[str] = []

    # ------------------------------------------------------------------
    # Hot-spot detection
    # ------------------------------------------------------------------

    def note_backward(self, target_pc: int, descriptor,
                      weight: int = 1) -> None:
        """A taken backward transfer landed on ``target_pc``."""
        if not self.enabled:
            return
        linear = (descriptor.base + target_pc) & _MASK
        if linear in self.blocks or linear in self._refused:
            return
        hot = self._hot
        count = hot.get(linear, 0) + weight
        if count < self.HOT_THRESHOLD:
            if len(hot) >= 4096:
                hot.clear()
            hot[linear] = count
            return
        hot.pop(linear, None)
        self._compile(target_pc, linear, descriptor)

    def note_sample(self, cpu) -> None:
        """Seed the hot counters from a GuestProfiler sample."""
        self.note_backward(cpu.pc, cpu.segments[0].descriptor,
                           weight=self.SAMPLE_WEIGHT)

    # ------------------------------------------------------------------
    # Invalidation (shared triggers with the decode cache)
    # ------------------------------------------------------------------

    def invalidate(self) -> None:
        """Drop every compiled block (and all warm-up state)."""
        if self.blocks:
            self.blocks.clear()
            self.invalidations += 1
        self.block_meta.clear()
        self._hot.clear()
        self._refused.clear()

    def evict(self, linear: int) -> None:
        """Drop one stale block (failed static guard) for recompilation."""
        self.blocks.pop(linear, None)
        self.block_meta.pop(linear, None)
        self.guard_failures += 1

    def stats(self) -> dict:
        """Counter snapshot, mirroring ``decode_cache_stats``."""
        instret = self.cpu.instret
        return {
            "enabled": self.enabled,
            "entries": len(self.blocks),
            "blocks_compiled": self.blocks_compiled,
            "hits": self.hits,
            "guard_failures": self.guard_failures,
            "invalidations": self.invalidations,
            "insns_translated": self.insns_translated,
            "hit_rate": (self.insns_translated / instret)
            if instret else 0.0,
        }

    def tv_stats(self) -> dict:
        """Verify-on-compile counters (``analysis.tv.*`` metrics)."""
        return {
            "enabled": self.verify,
            "validated": self.tv_validated,
            "rejected": self.tv_rejected,
            "failures": list(self.tv_failures),
        }

    # ------------------------------------------------------------------
    # Trace construction
    # ------------------------------------------------------------------

    def _trace(self, entry_pc: int, entry_lin: int,
               phys_entry: int) -> List[Tuple[int, isa.InsnSpec, object]]:
        """Decode a linear run of includable instructions.

        The trace never leaves the physical page backing the entry (one
        (page, generation) guard covers every byte), stops before any
        breakpointed, privileged, or otherwise excluded instruction,
        and ends *with* the first branch terminator.
        """
        cpu = self.cpu
        memory = cpu.memory
        bus = cpu.bus
        page_end = (entry_lin | ((1 << PAGE_SHIFT) - 1)) + 1
        breakpoints = cpu.code_breakpoints
        insns: List[Tuple[int, isa.InsnSpec, object]] = []
        lin, pc = entry_lin, entry_pc
        while lin < page_end and len(insns) < self.MAX_BLOCK_INSNS:
            if lin in breakpoints:
                break
            paddr = phys_entry + (lin - entry_lin)
            opcode = memory.read(paddr, 1)[0]
            spec = isa.SPECS.get(opcode)
            if spec is None:
                break
            length = spec.length
            if lin + length > page_end:
                break
            if bus.is_mmio(paddr) or bus.is_mmio(paddr + length - 1):
                break
            decoder = isa.OPERAND_DECODERS[spec.fmt]
            operands = decoder(memory.read(paddr + 1, length - 1)) \
                if decoder is not None else None
            mnemonic = spec.mnemonic
            if mnemonic in _TERMINATORS:
                insns.append((pc, spec, operands))
                break
            if spec.privilege != isa.PRIV_NONE:
                break
            if mnemonic in _INLINE:
                if mnemonic == "DIVI" and operands[1] == 0:
                    break  # guaranteed #DE: leave it to the interpreter
            elif mnemonic not in _HANDLER:
                break
            insns.append((pc, spec, operands))
            lin += length
            pc = (pc + length) & _MASK
        return insns

    # ------------------------------------------------------------------
    # Code generation
    # ------------------------------------------------------------------

    def _compile(self, entry_pc: int, entry_lin: int, descriptor) -> None:
        cpu = self.cpu
        try:
            phys_entry = cpu._physical(entry_lin, write=False)
        except CpuFault:
            self._refused.add(entry_lin)
            return
        page = phys_entry >> PAGE_SHIFT
        generation = cpu.memory.page_gens[page]
        insns = self._trace(entry_pc, entry_lin, phys_entry)
        if len(insns) < self.MIN_BLOCK_INSNS:
            self._refused.add(entry_lin)
            return

        last_pc, last_spec, last_ops = insns[-1]
        terminator = last_spec.mnemonic if last_spec.mnemonic \
            in _TERMINATORS else None
        body = insns[:-1] if terminator else insns
        fall_through = (last_pc + last_spec.length) & _MASK
        taken = (fall_through + last_ops) & _MASK if terminator else None
        loop = terminator is not None and taken == entry_pc

        total_insns = len(insns)
        total_cycles = sum(spec.cycles for _pc, spec, _o in insns)
        has_mem = any(spec.mnemonic in _MEMORY for _pc, spec, _o in body)
        has_store = any(spec.mnemonic in _STORE for _pc, spec, _o in body)

        handlers: List[Tuple[str, object]] = []
        src: List[str] = []
        emit = src.append

        def emit_block(lines: List[str], indent: str) -> None:
            for line in lines:
                emit(indent + line)

        # -- pending per-instruction accounting, batched between commit
        #    barriers (constant-folded at generation time).
        pending = [0, 0]

        def flush_pending() -> List[str]:
            if not pending[0]:
                return []
            lines = [f"ir += {pending[0]}", f"cy += {pending[1]}",
                     f"chg += {pending[1]}"]
            pending[0] = pending[1] = 0
            return lines

        body_lines: List[str] = []
        if loop:
            body_lines += [
                f"if ir + {total_insns} > li or cy + {total_cycles} > lc:",
                f"    cpu.pc = {entry_pc}",
                "    break",
            ]
        for pc, spec, operands in body:
            mnemonic = spec.mnemonic
            if mnemonic in _INLINE:
                body_lines += _inline_lines(mnemonic, operands)
                pending[0] += 1
                pending[1] += spec.cycles
                continue
            # Handler-executed instruction: commit architectural state
            # first (the handler may fault or reach a device), then
            # account for it, then check the hazards it may have raised.
            index = len(handlers)
            handlers.append(("_op_" + mnemonic.lower(), operands))
            body_lines += flush_pending()
            body_lines += [
                "cpu.flags = f",
                "cpu.instret = ir",
                "cpu.cycle_count = cy",
                "if chg:",
                "    charge(chg, GUEST)",
                "    chg = 0",
                f"saved = {pc}",
                f"cpu.pc = {(pc + spec.length) & _MASK}",
                f"h{index}(o{index})",
                "ir += 1",
                f"cy += {spec.cycles}",
                f"chg += {spec.cycles}",
            ]
            if mnemonic == "DIV":
                body_lines.append("f = cpu.flags")
            if mnemonic in _MEMORY:
                body_lines += ["if irq is not None and irq.has_pending():",
                               "    break"]
            if mnemonic in _STORE:
                body_lines += [f"if gens[{page}] != {generation}:",
                               "    break"]

        # -- terminator / block exit ----------------------------------
        if terminator:
            pending[0] += 1
            pending[1] += last_spec.cycles
            body_lines += flush_pending()
            if terminator == "JMP":
                if loop:
                    pass  # unconditional loop edge: fall to the loop top
                else:
                    body_lines += [f"cpu.pc = {taken}", "break"]
            elif loop:
                taken_expr, not_taken = _COND[terminator]
                body_lines += [f"if {not_taken}:",
                               f"    cpu.pc = {fall_through}",
                               "    break"]
            else:
                taken_expr, _ = _COND[terminator]
                body_lines += [f"if {taken_expr}:",
                               f"    cpu.pc = {taken}",
                               "else:",
                               f"    cpu.pc = {fall_through}",
                               "break"]
        else:
            body_lines += flush_pending()
            body_lines += [f"cpu.pc = {fall_through}", "break"]

        # -- assemble the factory -------------------------------------
        params = "".join(f", h{i}, o{i}" for i in range(len(handlers)))
        emit(f"def _factory(Fault, GUEST{params}):")
        emit("    def _block(cpu):")
        emit("        regs = cpu.regs")
        emit("        f = cpu.flags")
        emit("        ir = cpu.instret")
        emit("        ir0 = ir")
        emit("        cy = cpu.cycle_count")
        emit("        chg = 0")
        emit("        saved = 0")
        emit("        charge = cpu.budget.charge")
        if has_mem:
            emit("        irq = cpu.irq_source")
        if has_store:
            emit("        gens = cpu.memory.page_gens")
        if loop:
            emit("        li = cpu.block_instret_limit")
            emit("        lc = cpu.block_cycle_limit")
        emit("        try:")
        emit("            while True:")
        emit_block(body_lines or ["break"], " " * 16)
        emit("        except Fault as fault:")
        emit("            cpu.block_extra_steps = ir - ir0")
        emit("            cpu._handle_fault(fault, saved)")
        emit("            return")
        emit("        cpu.flags = f")
        emit("        cpu.instret = ir")
        emit("        cpu.cycle_count = cy")
        emit("        if chg:")
        emit("            charge(chg, GUEST)")
        emit("        cpu.block_extra_steps = ir - ir0 - 1")
        emit("    return _block")
        source = "\n".join(src) + "\n"

        meta = BlockMeta(entry_pc=entry_pc, entry_lin=entry_lin,
                         phys_entry=phys_entry, page=page,
                         generation=generation,
                         paging=cpu.paging_enabled,
                         descriptor=descriptor, source=source,
                         insns=insns, handlers=handlers)
        if self.verify:
            # Imported lazily: the validator pulls in the analysis
            # stack, which most Cpu users never need.
            from repro.analysis.tv.validator import validate_block
            result = validate_block(meta)
            self.tv_validated += 1
            if not result.ok:
                self.tv_rejected += 1
                if len(self.tv_failures) < 64:
                    self.tv_failures.extend(
                        f"block@{entry_lin:#x}: {message}"
                        for message in result.failures[:4])
                self._refused.add(entry_lin)
                return

        namespace: dict = {}
        exec(compile(source, f"<superblock@{entry_lin:#x}>", "exec"),
             namespace)
        args = [CpuFault, CAT_GUEST]
        for name, operands in handlers:
            args.append(getattr(cpu, name))
            args.append(operands)
        fn = namespace["_factory"](*args)

        if len(self.blocks) >= self.CACHE_CAPACITY:
            self.invalidate()
        self.blocks[entry_lin] = (fn, total_insns, total_cycles,
                                  descriptor, cpu.paging_enabled,
                                  page, generation)
        self.block_meta[entry_lin] = meta
        self.blocks_compiled += 1
