"""Exception hierarchy shared across the reproduction.

Every subsystem raises a subclass of :class:`ReproError` so callers can
distinguish simulator-infrastructure failures from *simulated* machine
faults (which are modelled as CPU exceptions, not Python exceptions).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class SimulationError(ReproError):
    """The discrete-event simulation kernel was misused."""


class MemoryError_(ReproError):
    """Physical memory access outside the installed range."""


class BusError(ReproError):
    """No device is mapped at the accessed port or MMIO address."""


class AssemblerError(ReproError):
    """Source-level assembly error (bad mnemonic, operand, duplicate label)."""


class DisassemblerError(ReproError):
    """Byte stream cannot be decoded back into instructions."""


class CpuHalted(ReproError):
    """Raised internally when the CPU executes HLT with interrupts disabled
    at the outermost privilege level, i.e. the machine can never resume."""


class TripleFault(ReproError):
    """Fault while delivering a double fault: the simulated machine resets.

    A real IA-32 part would assert shutdown; the monitor layers catch this
    to demonstrate debugger survivability (experiment E4).
    """


class ProtocolError(ReproError):
    """Malformed GDB Remote Serial Protocol traffic."""


class RspTransportError(ProtocolError):
    """The RSP transport gave up: the retry policy exhausted its
    attempts (timeouts, NAKs, lost replies) without a usable reply."""


class FaultPlanError(ReproError):
    """A fault-injection plan or rule was misconfigured."""


class DeviceError(ReproError):
    """A device model was programmed inconsistently by the driver."""


class GuestPanic(ReproError):
    """The guest OS model detected an unrecoverable internal condition."""


class MonitorError(ReproError):
    """The virtual machine monitor reached an inconsistent state."""


class CalibrationError(ReproError):
    """The performance cost model rejected its configuration."""


class JournalError(ReproError):
    """A record/replay journal is malformed or cannot be applied."""
