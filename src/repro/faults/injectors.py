"""Injectors: bind a :class:`~repro.faults.plan.FaultPlan` to the
well-defined hook points on the device models and the RSP transport.

Each injector registers on a hook the device model exposes
(``ScsiHba.fault_hook``, ``Nic.fault_hook``, ``SerialLink.fault_hook``)
or wraps a transport callable pair (:class:`RspTransportInjector`).
They translate the plan's fired rules into the device-level fault
descriptors (:class:`~repro.hw.scsi.ScsiFault`,
:class:`~repro.hw.nic.NicFault`, byte edits), drawing any fault
*parameters* (corrupt offsets, noise bytes) deterministically from the
plan's RNG so an identical seed reproduces identical damage.

Site / kind vocabulary (what FaultRules match against):

========  ===========  ==============================================
site      kinds        meaning
========  ===========  ==============================================
disk<N>   medium-error   CHECK CONDITION, sense from params["sense"]
disk<N>   transport-error  bus failure (COMP_TRANSPORT)
disk<N>   dma-corrupt  one byte of the DMA'd payload flipped
nic.tx    drop         frame lost on the wire
nic.tx    corrupt      one frame byte flipped
nic.tx    duplicate    frame sent twice
nic.tx    delay        params["delay_cycles"] extra wire time
nic.tx    stall        DD write-back late by params["delay_cycles"]
nic.rx    drop         inbound frame lost before the RX ring
nic.rx    corrupt      one inbound frame byte flipped
nic.rx    duplicate    inbound frame written to the ring twice
nic.rx    delay        ring write-back late by params["delay_cycles"]
nic.rx    reorder      frame held and delivered after the next one
uart.h2t  drop/noise   host->target debug-channel byte lost/flipped
uart.t2h  drop/noise   target->host debug-channel byte lost/flipped
rsp.h2t   drop/corrupt/duplicate/reorder   client->stub writes
rsp.t2h   drop/corrupt                     stub->client reads
========  ===========  ==============================================
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.faults.plan import FaultPlan
from repro.hw.nic import Nic, NicFault
from repro.hw.scsi import ScsiFault, ScsiHba
from repro.hw.uart import SerialLink

DEFAULT_SENSE_MEDIUM_ERROR = 0x03
DEFAULT_STALL_CYCLES = 2_000_000


class DiskInjector:
    """SCSI medium/transport errors and DMA corruption on one HBA."""

    def __init__(self, plan: FaultPlan, hba: ScsiHba) -> None:
        self.plan = plan
        self.hba = hba
        hba.fault_hook = self._on_request
        hba.dma_fault_hook = self._on_dma

    def _on_request(self, request, disk) -> Optional[ScsiFault]:
        site = f"disk{request.target}"
        rule = self.plan.decide(site, "medium-error",
                                detail=f"cdb={request.cdb[0]:#04x}")
        if rule is not None:
            return ScsiFault(kind="medium", sense=rule.params.get(
                "sense", DEFAULT_SENSE_MEDIUM_ERROR))
        rule = self.plan.decide(site, "transport-error",
                                detail=f"cdb={request.cdb[0]:#04x}")
        if rule is not None:
            return ScsiFault(kind="transport")
        return None

    def _on_dma(self, request, payload: bytes) -> bytes:
        if not payload:
            return payload
        site = f"disk{request.target}"
        rule = self.plan.decide(site, "dma-corrupt",
                                detail=f"len={len(payload)}")
        if rule is None:
            return payload
        offset = self.plan.rand_range(len(payload))
        mangled = bytearray(payload)
        mangled[offset] ^= 0xFF
        return bytes(mangled)


class NicInjector:
    """Frame drop/corrupt/duplicate/delay faults on one NIC.

    Registers on both directions: ``nic.tx`` (plus ring ``stall``) for
    frames the guest transmits, ``nic.rx`` (plus ``reorder``) for
    frames arriving from the wire.  Rules on a site the plan never
    names simply never fire, so existing tx-only plans are unchanged.
    """

    SITE = "nic.tx"
    RX_SITE = "nic.rx"
    TX_KINDS = ("drop", "corrupt", "duplicate", "delay", "stall")
    RX_KINDS = ("drop", "corrupt", "duplicate", "delay", "reorder")

    def __init__(self, plan: FaultPlan, nic: Nic) -> None:
        self.plan = plan
        self.nic = nic
        nic.fault_hook = self._on_frame
        nic.rx_fault_hook = self._on_rx_frame

    def _decide(self, site: str, kinds, frame: bytes
                ) -> Optional[NicFault]:
        detail = f"len={len(frame)}"
        for kind in kinds:
            rule = self.plan.decide(site, kind, detail=detail)
            if rule is None:
                continue
            if kind == "corrupt":
                return NicFault(kind=kind,
                                corrupt_offset=self.plan.rand_range(
                                    max(len(frame), 1)))
            if kind in ("delay", "stall", "reorder"):
                return NicFault(kind=kind, delay_cycles=rule.params.get(
                    "delay_cycles", DEFAULT_STALL_CYCLES))
            return NicFault(kind=kind)
        return None

    def _on_frame(self, frame: bytes) -> Optional[NicFault]:
        return self._decide(self.SITE, self.TX_KINDS, frame)

    def _on_rx_frame(self, frame: bytes) -> Optional[NicFault]:
        return self._decide(self.RX_SITE, self.RX_KINDS, frame)


class UartInjector:
    """Byte noise and drops on the debug-stub serial channel."""

    def __init__(self, plan: FaultPlan, link: SerialLink) -> None:
        self.plan = plan
        self.link = link
        link.fault_hook = self._on_byte

    def _on_byte(self, direction: str, byte: int) -> Optional[int]:
        site = f"uart.{direction}"
        if self.plan.decide(site, "drop") is not None:
            return None
        if self.plan.decide(site, "noise") is not None:
            flip = 1 + self.plan.rand_range(255)  # never a no-op flip
            return byte ^ flip
        return byte


class RspTransportInjector:
    """Drop/corrupt/duplicate/reorder on the RSP byte transport.

    Wraps the ``send``/``recv`` callables an
    :class:`~repro.rsp.client.RspClient` is built from, so the faults
    hit the client's retry policy exactly where a flaky serial cable
    would.  Opportunities are counted per non-empty ``send`` call
    (the client sends whole frames) and per non-empty ``recv`` batch.
    """

    def __init__(self, plan: FaultPlan,
                 send: Callable[[bytes], None],
                 recv: Callable[[], bytes]) -> None:
        self.plan = plan
        self._send = send
        self._recv = recv
        self._held: Optional[bytes] = None  # reorder buffer

    def _corrupt(self, data: bytes) -> bytes:
        offset = self.plan.rand_range(len(data))
        mangled = bytearray(data)
        mangled[offset] ^= 1 + self.plan.rand_range(255)
        return bytes(mangled)

    def send(self, data: bytes) -> None:
        if not data:
            self._send(data)
            return
        detail = f"len={len(data)}"
        if self.plan.decide("rsp.h2t", "drop", detail=detail) is not None:
            return
        if self.plan.decide("rsp.h2t", "corrupt", detail=detail) is not None:
            data = self._corrupt(data)
        if self.plan.decide("rsp.h2t", "reorder", detail=detail) is not None \
                and self._held is None:
            self._held = data
            return
        self._send(data)
        if self._held is not None:
            held, self._held = self._held, None
            self._send(held)
        if self.plan.decide("rsp.h2t", "duplicate",
                            detail=detail) is not None:
            self._send(data)

    def recv(self) -> bytes:
        data = self._recv()
        if not data:
            return data
        detail = f"len={len(data)}"
        if self.plan.decide("rsp.t2h", "drop", detail=detail) is not None:
            return b""
        if self.plan.decide("rsp.t2h", "corrupt", detail=detail) is not None:
            data = self._corrupt(data)
        return data

    def flush(self) -> None:
        """Deliver any reorder-held frame (end of the fault window)."""
        if self._held is not None:
            held, self._held = self._held, None
            self._send(held)
