"""Seeded, deterministic fault plans.

A :class:`FaultPlan` is the single source of randomness for a fault
campaign.  Injectors ask it ``decide(site, kind)`` at every injection
*opportunity* (a disk request, a frame transmission, a byte on the debug
link...); the plan consults its declarative rules and its seeded RNG and
either fires a fault — recording it in the trace — or stays quiet.

Determinism contract: given the same seed, the same rules and the same
(deterministic) workload, two runs produce byte-identical traces and
identical counters.  The RNG is only consumed by probability rules that
match the opportunity and by the ``rand_*`` helpers injectors use to
parameterise a fault that already fired, so RNG consumption order is a
pure function of the opportunity stream.  Everything recorded in the
trace is integers and fixed strings — no wall-clock time, no floats, no
id()s — so the trace text is stable across runs and Python versions.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass, field
from fnmatch import fnmatchcase
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import FaultPlanError
from repro.obs.taps import TapPoint, tap_property


@dataclass(frozen=True)
class FaultEvent:
    """One injected fault, as recorded in the trace."""

    seq: int        # position in the trace, 0-based
    site: str       # e.g. "disk0", "nic.tx", "uart.h2t", "rsp.h2t"
    kind: str       # e.g. "medium-error", "drop", "corrupt", "stall"
    opportunity: int  # which opportunity at (site, kind) fired, 1-based
    detail: str = ""

    def format(self) -> str:
        text = f"{self.seq:06d} {self.site} {self.kind} op={self.opportunity}"
        return f"{text} {self.detail}" if self.detail else text


class FaultTrace:
    """Append-only log of fired faults with a stable text encoding."""

    def __init__(self) -> None:
        self.events: List[FaultEvent] = []

    def record(self, site: str, kind: str, opportunity: int,
               detail: str = "") -> FaultEvent:
        event = FaultEvent(len(self.events), site, kind, opportunity, detail)
        self.events.append(event)
        return event

    def __len__(self) -> int:
        return len(self.events)

    def format(self) -> str:
        """The canonical text form (one event per line, newline-terminated)."""
        return "".join(event.format() + "\n" for event in self.events)

    def digest(self) -> str:
        return hashlib.sha256(self.format().encode("ascii")).hexdigest()


@dataclass
class FaultRule:
    """One line of a fault schedule.

    ``site`` and ``kind`` are matched against the opportunity (``site``
    may use ``fnmatch`` wildcards, so ``"disk*"`` covers every disk).
    A rule fires when any of its triggers hits:

    * ``at_count``: exactly at the Nth matching opportunity (one-shot);
    * ``every``: at every Nth matching opportunity;
    * ``probability``: per-opportunity coin flip from the plan's RNG.

    ``max_fires`` bounds the total number of injections from this rule.
    ``params`` carries injector-specific knobs (sense key, delay cycles,
    ...) documented by each injector.
    """

    site: str
    kind: str
    probability: float = 0.0
    at_count: Optional[int] = None
    every: Optional[int] = None
    max_fires: Optional[int] = None
    params: Dict[str, int] = field(default_factory=dict)
    fires: int = 0

    def __post_init__(self) -> None:
        if not 0.0 <= self.probability <= 1.0:
            raise FaultPlanError(
                f"rule {self.site}/{self.kind}: probability "
                f"{self.probability} outside [0, 1]")
        if self.at_count is not None and self.at_count < 1:
            raise FaultPlanError(
                f"rule {self.site}/{self.kind}: at_count must be >= 1")
        if self.every is not None and self.every < 1:
            raise FaultPlanError(
                f"rule {self.site}/{self.kind}: every must be >= 1")
        if self.probability == 0.0 and self.at_count is None \
                and self.every is None:
            raise FaultPlanError(
                f"rule {self.site}/{self.kind} can never fire: set "
                f"probability, at_count or every")

    def matches(self, site: str, kind: str) -> bool:
        return self.kind == kind and fnmatchcase(site, self.site)

    def exhausted(self) -> bool:
        return self.max_fires is not None and self.fires >= self.max_fires


class FaultPlan:
    """Seeded RNG + schedule + trace + counters for one campaign run."""

    def __init__(self, seed: int,
                 rules: Sequence[FaultRule] = ()) -> None:
        self.seed = seed
        self.rules: List[FaultRule] = list(rules)
        self._rng = random.Random(seed)
        self.trace = FaultTrace()
        self.armed = True
        #: Multicast observation point notified as ``taps(purpose,
        #: value)`` after every RNG draw (``purpose`` is "decide",
        #: "range" or "byte").  The flight recorder journals draws as
        #: provenance via the legacy :attr:`draw_tap` primary slot; the
        #: tracer subscribes alongside.  Observers must only observe and
        #: never consume RNG state themselves, or the determinism
        #: contract above breaks.
        self.draw_taps = TapPoint()
        #: Multicast observation point notified as ``taps(event)`` with
        #: the :class:`FaultEvent` for every fault that actually fires.
        self.fire_taps = TapPoint()
        #: Opportunities seen per (site, kind) — fault or not.
        self.opportunities: Dict[Tuple[str, str], int] = {}
        #: Faults fired per (site, kind).
        self.injected: Dict[Tuple[str, str], int] = {}
        #: Recovery actions observed per (site, action).
        self.recoveries: Dict[Tuple[str, str], int] = {}

    draw_tap = tap_property("draw_taps")

    # -- schedule ------------------------------------------------------------

    def add_rule(self, rule: FaultRule) -> FaultRule:
        self.rules.append(rule)
        return rule

    def disarm(self) -> None:
        """Stop injecting (the fault window closes); counters survive."""
        self.armed = False

    def arm(self) -> None:
        self.armed = True

    # -- the decision point --------------------------------------------------

    def decide(self, site: str, kind: str,
               detail: str = "") -> Optional[FaultRule]:
        """One injection opportunity; returns the rule that fired, if any.

        Matching rules are evaluated in schedule order; the first that
        fires wins and is recorded in the trace.  Probability rules
        consume exactly one RNG draw per matching opportunity whether or
        not they fire, keeping RNG state a pure function of the
        opportunity stream.
        """
        if not self.armed:
            return None
        key = (site, kind)
        count = self.opportunities.get(key, 0) + 1
        self.opportunities[key] = count
        fired: Optional[FaultRule] = None
        for rule in self.rules:
            if not rule.matches(site, kind):
                continue
            hit = False
            if rule.probability > 0.0:
                draw = self._rng.random()
                if self.draw_taps:
                    self.draw_taps("decide", draw)
                hit = draw < rule.probability
            if rule.at_count is not None and count == rule.at_count:
                hit = True
            if rule.every is not None and count % rule.every == 0:
                hit = True
            if hit and fired is None and not rule.exhausted():
                fired = rule
                # keep evaluating: later probability rules must still
                # consume their draw for determinism.
        if fired is None:
            return None
        fired.fires += 1
        self.injected[key] = self.injected.get(key, 0) + 1
        event = self.trace.record(site, kind, count, detail)
        if self.fire_taps:
            self.fire_taps(event)
        return fired

    # -- deterministic parameter helpers -------------------------------------

    def rand_range(self, upper: int) -> int:
        """Deterministic integer in [0, upper) for fault parameters."""
        if upper <= 0:
            return 0
        value = self._rng.randrange(upper)
        if self.draw_taps:
            self.draw_taps("range", value)
        return value

    def rand_byte(self) -> int:
        value = self._rng.randrange(256)
        if self.draw_taps:
            self.draw_taps("byte", value)
        return value

    # -- recovery accounting -------------------------------------------------

    def record_recovery(self, site: str, action: str) -> None:
        key = (site, action)
        self.recoveries[key] = self.recoveries.get(key, 0) + 1

    def recovery_recorder(self, site: str):
        """A ``Callable[[str], None]`` bound to one site, for consumers
        (e.g. the RSP client's retry policy) that report actions."""
        def observer(action: str) -> None:
            self.record_recovery(site, action)
        return observer

    # -- export ------------------------------------------------------------

    def stats(self) -> dict:
        """Counters in a stable, JSON-friendly shape."""
        return {
            "seed": self.seed,
            "opportunities": {f"{site}.{kind}": count for (site, kind), count
                              in sorted(self.opportunities.items())},
            "injected": {f"{site}.{kind}": count for (site, kind), count
                         in sorted(self.injected.items())},
            "recoveries": {f"{site}.{action}": count
                           for (site, action), count
                           in sorted(self.recoveries.items())},
            "trace_length": len(self.trace),
            "trace_digest": self.trace.digest(),
        }
