"""Deterministic fault injection and resilience measurement.

The paper's central robustness claim (Section 2.3 / experiment E4) is
that the debugging environment keeps working *no matter what the buggy
guest does*.  This package turns that claim into a first-class,
measurable subsystem:

* :class:`FaultPlan` — a seeded RNG plus a declarative schedule of
  :class:`FaultRule` entries (probability per opportunity, one-shot at
  the Nth opportunity, every Nth opportunity).  Identical seeds and
  schedules reproduce byte-identical :class:`FaultTrace` logs, so any
  chaos-campaign failure is replayable from its seed alone.
* :mod:`repro.faults.injectors` — injectors that bind a plan to the
  well-defined hook points on the device models (SCSI medium/transport
  errors and DMA corruption, NIC frame drop/corrupt/duplicate/delay and
  ring stalls, debug-UART byte noise, RSP transport faults).
* :mod:`repro.faults.campaign` — the chaos campaign runner
  (``python -m repro.faults.campaign`` / ``repro-chaos``): runs the
  paper's streaming workload and guest-crash scenarios under seeded
  fault schedules and asserts the survivability invariants after each.

Counters for every injected fault and recovery action are exported via
:func:`repro.obs.metrics.collect_fault`, next to ``collect_interp``
and ``collect_analysis``.
"""

from repro.faults.plan import FaultEvent, FaultPlan, FaultRule, FaultTrace
from repro.faults.injectors import (
    DiskInjector,
    NicInjector,
    RspTransportInjector,
    UartInjector,
)

__all__ = [
    "FaultEvent",
    "FaultPlan",
    "FaultRule",
    "FaultTrace",
    "DiskInjector",
    "NicInjector",
    "RspTransportInjector",
    "UartInjector",
]
