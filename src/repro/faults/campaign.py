"""Chaos campaign: seeded fault schedules against the whole stack.

The paper's stability claim (experiment E4) is qualitative: the
debugging environment keeps working while the guest OS misbehaves.  The
campaign makes it mechanical.  Each *scenario* runs a workload under a
seeded :class:`~repro.faults.plan.FaultPlan` — disk errors mid-stream,
NIC loss and corruption, noise on the debug UART, RSP transport chaos,
TCP streaming under drop/delay/reorder, guest wild writes, a hung
guest, a triple fault — and then asserts the survivability invariants:

* the debug stub is still reachable: the RSP client reads registers and
  memory and gets well-formed replies;
* the monitor region hash is unchanged (functional scenarios);
* the workload either recovered or degraded gracefully (stream still
  made progress; a dead guest is frozen at ``frozen-snapshot``, a hung
  one forced into the stub at ``stub-only``).

Determinism: a campaign is a pure function of ``(seed, scenarios)``.
Two runs with the same seed produce byte-identical fault traces and
identical ``fault_stats`` — replay a chaos finding by replaying its
seed.

Run it as ``python -m repro.faults.campaign`` or via the
``repro-chaos`` console script::

    repro-chaos --seed 1234 --runs 3 --json chaos.json --trace chaos.trace
    repro-chaos --golden tests/golden/chaos_seed1234.trace
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import sys
from typing import Callable, Dict, List, Optional, Tuple

from repro.asm import assemble
from repro.core.session import DebugSession
from repro.errors import ProtocolError
from repro.faults.injectors import (
    DiskInjector,
    NicInjector,
    RspTransportInjector,
    UartInjector,
)
from repro.faults.plan import FaultPlan, FaultRule
from repro.guest.os import HiTactix
from repro.hw import firmware
from repro.hw.machine import Machine, MachineConfig
from repro.hw.uart import (
    HostSerialPort,
    LSR_DATA_READY,
    PORT_BASE_COM1,
    REG_DATA,
    REG_LSR,
)
from repro.perf.costmodel import DEFAULT_COST_MODEL
from repro.obs.metrics import collect_fault
from repro.replay import FlightRecorder, save_journal
from repro.perf.stacks import InterruptDispatcher, make_stack
from repro.rsp.client import RetryPolicy, RspClient
from repro.rsp.stub import DebugStub
from repro.rsp.target import NUM_REPORTED_REGS, CpuTargetAdapter
from repro.sim.events import cycles_for_seconds
from repro.workloads.streaming import mixed_rate_specs, run_tcp_streaming
from repro.vmm.watchdog import (
    DEGRADE_FROZEN,
    DEGRADE_FULL,
    MonitorWatchdog,
)

DEFAULT_SEED = 1234
#: Streaming window per perf-layer scenario (simulated seconds).
SIM_SECONDS = 0.25
STREAM_RATE_BPS = 100e6

#: The hardened policy chaos runs use: more attempts than the default,
#: with bounded backoff — all in simulated pump quanta.
HARDENED_POLICY = RetryPolicy(max_attempts=8, pumps_per_attempt=64,
                              backoff_base_pumps=2, backoff_max_pumps=32)


# ----------------------------------------------------------------------
# Perf-layer harness
# ----------------------------------------------------------------------

class StubConsole:
    """A standalone debug stub over the machine's real UART.

    Perf-layer scenarios have no monitor; the stub attaches directly to
    the CPU and is serviced the way the monitor services it — raw port
    reads drain the UART RX FIFO into the stub, replies go out through
    raw port writes.  This is the "is the debugger still reachable?"
    probe after a fault window.
    """

    def __init__(self, machine, plan: Optional[FaultPlan] = None,
                 rsp_faults: bool = False) -> None:
        self.machine = machine
        self.stub = DebugStub(CpuTargetAdapter(machine.cpu),
                              self._uart_send)
        host = HostSerialPort(machine.serial_link)
        send, recv = host.send, host.recv
        self.injector: Optional[RspTransportInjector] = None
        if rsp_faults and plan is not None:
            self.injector = RspTransportInjector(plan, send, recv)
            send, recv = self.injector.send, self.injector.recv
        self.client = RspClient(send=send, recv=recv, pump=self._pump,
                                retry_policy=HARDENED_POLICY)
        if plan is not None:
            self.client.on_recovery = plan.recovery_recorder("rsp")

    def _uart_send(self, data: bytes) -> None:
        bus = self.machine.bus
        for byte in data:
            bus.raw_port_write(PORT_BASE_COM1 + REG_DATA, byte, 1)

    def _pump(self) -> None:
        bus = self.machine.bus
        received = bytearray()
        while bus.raw_port_read(PORT_BASE_COM1 + REG_LSR, 1) \
                & LSR_DATA_READY:
            received.append(
                bus.raw_port_read(PORT_BASE_COM1 + REG_DATA, 1))
        if received:
            self.stub.feed(bytes(received))

    def drain(self, pumps: int = 32) -> None:
        """Flush in-flight bytes and stale packets (post-fault resync)."""
        if self.injector is not None:
            self.injector.flush()
        for _ in range(pumps):
            self._pump()
            self.client._drain()
        while self.client._decoder.next_packet() is not None:
            pass


def _run_streaming(attach: Callable[[Machine], None]) -> Tuple[Machine,
                                                               HiTactix]:
    """One streaming window on the lvmm stack with injectors attached."""
    cost = DEFAULT_COST_MODEL
    machine = Machine(MachineConfig(cpu_hz=cost.cpu_hz))
    machine.program_pic_defaults()
    stack = make_stack("lvmm", machine, cost)
    dispatcher = InterruptDispatcher(machine, stack)
    guest = HiTactix(machine, stack, STREAM_RATE_BPS, cost)
    attach(machine)
    guest.register_handlers(dispatcher)
    guest.start()
    dispatcher.dispatch_pending()
    deadline = cycles_for_seconds(SIM_SECONDS, cost.cpu_hz)
    queue = machine.queue
    while True:
        next_time = queue.peek_time()
        if next_time is None or next_time > deadline:
            break
        queue.step()
        dispatcher.dispatch_pending()
    if deadline > queue.now:
        queue.now = deadline
    return machine, guest


def _check_stub_service(client: RspClient, violations: List[str],
                        memory_addr: int, label: str) -> None:
    """The survivability probe: registers and memory still readable."""
    try:
        regs = client.read_registers()
        if len(regs) != NUM_REPORTED_REGS:
            violations.append(f"{label}: short register read")
        data = client.read_memory(memory_addr, 16)
        if len(data) != 16:
            violations.append(f"{label}: short memory read")
    except ProtocolError as exc:
        violations.append(f"{label}: stub unreachable ({exc})")


# ----------------------------------------------------------------------
# Perf-layer scenarios
# ----------------------------------------------------------------------

def _scenario_disk_errors(seed: int):
    plan = FaultPlan(seed, rules=[
        FaultRule("disk*", "medium-error", probability=0.08, max_fires=6),
        FaultRule("disk*", "transport-error", at_count=5, max_fires=1),
        FaultRule("disk*", "dma-corrupt", probability=0.05, max_fires=4),
    ])
    machine, guest = _run_streaming(
        lambda m: DiskInjector(plan, m.hba))
    violations: List[str] = []
    if guest.segments_sent == 0:
        violations.append("stream made no progress under disk faults")
    if guest.read_errors == 0:
        violations.append("driver observed none of the injected errors")
    if not plan.trace.events:
        violations.append("no faults fired (vacuous scenario)")
    plan.disarm()
    console = StubConsole(machine, plan)
    _check_stub_service(console.client, violations, 0x40_0000,
                        "disk-errors")
    return plan, violations, {"client": console.client,
                              "devices": {"hba": machine.hba}}


def _scenario_nic_loss(seed: int):
    plan = FaultPlan(seed, rules=[
        FaultRule("nic.tx", "drop", probability=0.05, max_fires=12),
        FaultRule("nic.tx", "delay", probability=0.03, max_fires=6,
                  params={"delay_cycles": 50_000}),
        FaultRule("nic.tx", "stall", at_count=40, max_fires=1,
                  params={"delay_cycles": 250_000}),
    ])
    machine, guest = _run_streaming(
        lambda m: NicInjector(plan, m.nic))
    violations: List[str] = []
    if guest.segments_sent == 0:
        violations.append("stream made no progress under NIC loss")
    if machine.nic.frames_sent == 0:
        violations.append("no frames made it to the wire")
    if not plan.trace.events:
        violations.append("no faults fired (vacuous scenario)")
    plan.disarm()
    console = StubConsole(machine, plan)
    _check_stub_service(console.client, violations, 0x40_0000, "nic-loss")
    return plan, violations, {"client": console.client,
                              "devices": {"nic": machine.nic}}


def _scenario_nic_corrupt(seed: int):
    plan = FaultPlan(seed, rules=[
        FaultRule("nic.tx", "corrupt", probability=0.08, max_fires=20),
        FaultRule("nic.tx", "duplicate", probability=0.04, max_fires=10),
        FaultRule("nic.tx", "corrupt", at_count=3, max_fires=1),
    ])
    machine, guest = _run_streaming(
        lambda m: NicInjector(plan, m.nic))
    violations: List[str] = []
    if guest.segments_sent == 0:
        violations.append("stream made no progress under corruption")
    if not plan.trace.events:
        violations.append("no faults fired (vacuous scenario)")
    plan.disarm()
    console = StubConsole(machine, plan)
    _check_stub_service(console.client, violations, 0x40_0000,
                        "nic-corrupt")
    return plan, violations, {"client": console.client,
                              "devices": {"nic": machine.nic}}


def _exercise_noisy_stub(plan: FaultPlan, console: StubConsole,
                         violations: List[str], label: str,
                         exchanges: int = 12) -> None:
    """Debug traffic during the fault window.

    Every exchange must end in a well-formed reply or a *typed* error —
    the retry policy guarantees it terminates; an exhausted exchange is
    graceful degradation, recorded, not a violation.  The hard check
    (clean service) happens after the window closes.
    """
    for index in range(exchanges):
        try:
            if index % 3 == 2:
                console.client.read_memory(0x40_0000 + index * 4, 4)
            else:
                console.client.read_registers()
        except ProtocolError:
            plan.record_recovery("rsp", "exchange-abandoned")
    plan.disarm()
    console.drain()
    _check_stub_service(console.client, violations, 0x40_0000, label)


def _scenario_uart_noise(seed: int):
    plan = FaultPlan(seed, rules=[
        FaultRule("uart.*", "drop", probability=0.002),
        FaultRule("uart.*", "noise", probability=0.004),
    ])
    machine, guest = _run_streaming(
        lambda m: UartInjector(plan, m.serial_link))
    violations: List[str] = []
    if guest.segments_sent == 0:
        violations.append("stream made no progress")
    console = StubConsole(machine, plan)
    _exercise_noisy_stub(plan, console, violations, "uart-noise")
    link = machine.serial_link
    if not plan.trace.events:
        violations.append("no faults fired (vacuous scenario)")
    return plan, violations, {"client": console.client,
                              "devices": {"uart-link": link}}


def _scenario_rsp_chaos(seed: int):
    plan = FaultPlan(seed, rules=[
        FaultRule("rsp.h2t", "drop", probability=0.1),
        FaultRule("rsp.h2t", "corrupt", probability=0.1),
        FaultRule("rsp.h2t", "duplicate", probability=0.05),
        FaultRule("rsp.h2t", "reorder", probability=0.05),
        FaultRule("rsp.t2h", "drop", probability=0.1),
        FaultRule("rsp.t2h", "corrupt", probability=0.1),
    ])
    machine, guest = _run_streaming(lambda m: None)
    violations: List[str] = []
    if guest.segments_sent == 0:
        violations.append("stream made no progress")
    console = StubConsole(machine, plan, rsp_faults=True)
    _exercise_noisy_stub(plan, console, violations, "rsp-chaos")
    if not plan.trace.events:
        violations.append("no faults fired (vacuous scenario)")
    return plan, violations, {"client": console.client}


# ----------------------------------------------------------------------
# TCP streaming scenarios (multi-client workload over the chaos wires)
# ----------------------------------------------------------------------

def _tcp_devices(result) -> dict:
    """The wire counters, shaped for ``collect_fault(devices=...)``."""
    from types import SimpleNamespace
    return {"downlink": SimpleNamespace(**result.downlink),
            "uplink": SimpleNamespace(**result.uplink)}


def _scenario_tcp_retransmit(seed: int):
    """Seeded loss on both directions: every accepted stream must still
    arrive byte-identical, recovered by retransmission alone."""
    plan = FaultPlan(seed, rules=[
        FaultRule("nic.tx", "drop", probability=0.02, max_fires=40),
        FaultRule("nic.rx", "drop", probability=0.01, max_fires=20),
    ])
    specs = mixed_rate_specs(48, bytes_total=24_000)
    result = run_tcp_streaming(specs, plan=plan, sim_seconds=0.5,
                               grace_seconds=2.0)
    plan.disarm()
    violations: List[str] = []
    counts = result.counts()
    if counts.get("completed", 0) != len(specs):
        violations.append(f"sessions did not all complete under "
                          f"drop: {counts}")
    if not result.intact:
        violations.append("a delivered stream did not hash-match")
    if result.server_stats["retransmits"] == 0:
        violations.append("loss recovered without retransmits "
                          "(vacuous scenario)")
    if not plan.trace.events:
        violations.append("no faults fired (vacuous scenario)")
    return plan, violations, {"devices": _tcp_devices(result)}


def _scenario_tcp_churn(seed: int):
    """Subscriber churn while the wire delays frames: departures must
    not disturb the surviving streams."""
    plan = FaultPlan(seed, rules=[
        FaultRule("nic.tx", "delay", probability=0.02, max_fires=30,
                  params={"delay_cycles": 60_000}),
        FaultRule("nic.rx", "drop", probability=0.01, max_fires=15),
    ])
    specs = mixed_rate_specs(36, bytes_total=20_000, churn_every=6)
    result = run_tcp_streaming(specs, plan=plan, sim_seconds=0.5,
                               grace_seconds=2.0)
    plan.disarm()
    violations: List[str] = []
    counts = result.counts()
    finished = counts.get("completed", 0) + counts.get("churned", 0)
    if finished != len(specs):
        violations.append(f"sessions neither completed nor churned "
                          f"cleanly: {counts}")
    if counts.get("churned", 0) == 0:
        violations.append("no subscriber churned (vacuous scenario)")
    if not result.intact:
        violations.append("a surviving stream did not hash-match")
    if not plan.trace.events:
        violations.append("no faults fired (vacuous scenario)")
    return plan, violations, {"devices": _tcp_devices(result)}


def _scenario_tcp_slow_consumer(seed: int):
    """Slow consumers shrink their advertised windows while the data
    path reorders frames: flow control must stall, probe and resume."""
    plan = FaultPlan(seed, rules=[
        FaultRule("nic.tx", "reorder", probability=0.03, max_fires=30,
                  params={"delay_cycles": 60_000}),
        FaultRule("nic.rx", "duplicate", probability=0.01, max_fires=10),
    ])
    specs = mixed_rate_specs(32, bytes_total=16_000, slow_every=4)
    result = run_tcp_streaming(specs, plan=plan, sim_seconds=0.5,
                               grace_seconds=3.0)
    plan.disarm()
    violations: List[str] = []
    counts = result.counts()
    if counts.get("completed", 0) != len(specs):
        violations.append(f"sessions did not all complete: {counts}")
    if not result.intact:
        violations.append("a delivered stream did not hash-match")
    stats = result.server_stats
    if stats["zero_window_stalls"] == 0 and stats["window_probes"] == 0:
        violations.append("slow consumers never exercised flow "
                          "control (vacuous scenario)")
    # A swap on the shared wire usually crosses *different* sessions,
    # so assert at the wire: frames really were held back and overtaken.
    if result.downlink["frames_reordered"] == 0:
        violations.append("the wire never reordered a frame "
                          "(vacuous scenario)")
    if not plan.trace.events:
        violations.append("no faults fired (vacuous scenario)")
    return plan, violations, {"devices": _tcp_devices(result)}


# ----------------------------------------------------------------------
# Functional scenarios (guest under the LVMM, faults via the monitor)
# ----------------------------------------------------------------------

def _functional_session(body: str, plan=None, scenario: str = "",
                        seed: Optional[int] = None,
                        record: bool = False) -> DebugSession:
    sess = DebugSession(monitor="lvmm")
    program = assemble(f".org {firmware.GUEST_KERNEL_BASE}\n{body}\n")
    if record:
        # Attach before boot so boot-time device scheduling is part of
        # the record; the replayer mirrors this order.  The recorder is
        # reachable afterwards as sess.monitor.recorder.
        FlightRecorder(sess.machine, sess.monitor, program=program,
                       plan=plan, scenario=scenario, seed=seed)
    sess.load_and_boot(program)
    sess.attach()
    return sess


def _scenario_wild_writes(seed: int, record: bool = False):
    plan = FaultPlan(seed, rules=[
        FaultRule("guest.mem", "wild-write", every=3, max_fires=8),
        FaultRule("guest.irq", "spurious", every=4, max_fires=4),
    ])
    sess = _functional_session("loop:\n    NOP\n    JMP loop",
                               plan=plan, scenario="wild-writes",
                               seed=seed, record=record)
    monitor = sess.monitor
    sess.run_guest(2_000)
    baseline = monitor.monitor_region_hash()
    violations: List[str] = []
    for index in range(24):
        if not monitor.guest_dead:
            sess.run_guest(500)
        rule = plan.decide("guest.mem", "wild-write",
                           detail=f"slice={index}")
        if rule is not None:
            # Aim around the monitor boundary: some writes land in
            # guest memory, some try to cross into the monitor region.
            addr = monitor.monitor_base - 0x1000 + plan.rand_range(0x2000)
            monitor.inject_wild_write(addr, b"\xde\xad\xbe\xef")
        rule = plan.decide("guest.irq", "spurious",
                           detail=f"slice={index}")
        if rule is not None:
            monitor.inject_spurious_interrupt(plan.rand_range(16))
    plan.disarm()
    if monitor.stats.wild_writes_injected == 0:
        violations.append("no wild writes injected (vacuous scenario)")
    if monitor.monitor_region_hash() != baseline:
        violations.append("monitor region corrupted by wild writes")
    _check_stub_service(sess.client, violations,
                        firmware.GUEST_KERNEL_BASE, "wild-writes")
    return plan, violations, {"client": sess.client, "monitor": monitor,
                              "monitor_baseline": baseline}


def _scenario_guest_hang(seed: int, record: bool = False):
    plan = FaultPlan(seed, rules=[
        FaultRule("guest.irq", "spurious", every=2, max_fires=6),
    ])
    sess = _functional_session("    CLI\nhang:\n    JMP hang",
                               plan=plan, scenario="guest-hang",
                               seed=seed, record=record)
    monitor = sess.monitor
    baseline = monitor.monitor_region_hash()
    watchdog = MonitorWatchdog(monitor, spin_checks=3)
    violations: List[str] = []
    sess.client.send_async(b"c")
    for index in range(40):
        sess._pump()
        rule = plan.decide("guest.irq", "spurious",
                           detail=f"check={index}")
        if rule is not None:
            monitor.inject_spurious_interrupt(plan.rand_range(16))
        if watchdog.check() != DEGRADE_FULL:
            break
    plan.disarm()
    if watchdog.level == DEGRADE_FULL:
        violations.append("watchdog never detected the CLI hang")
    try:
        sess.client.wait_for_stop(max_pumps=200)
    except ProtocolError:
        violations.append("no stop reply after forced stub entry")
    _check_stub_service(sess.client, violations,
                        firmware.GUEST_KERNEL_BASE, "guest-hang")
    refused_before = monitor.stats.resumes_refused
    try:
        sess.client.cont()   # must bounce straight back, not hang
    except ProtocolError:
        violations.append("continue against a degraded monitor hung")
    if monitor.stats.resumes_refused == refused_before:
        violations.append("resume was not refused in stub-only mode")
    if monitor.monitor_region_hash() != baseline:
        violations.append("monitor region corrupted during hang")
    return plan, violations, {"client": sess.client, "monitor": monitor,
                              "monitor_baseline": baseline}


def _scenario_triple_fault(seed: int, record: bool = False):
    # The fault is the guest's own: INT with no IDT — unservicable.
    plan = FaultPlan(seed)
    sess = _functional_session("    INT 0x21\n    HLT",
                               plan=plan, scenario="triple-fault",
                               seed=seed, record=record)
    monitor = sess.monitor
    baseline = monitor.monitor_region_hash()
    watchdog = MonitorWatchdog(monitor)
    violations: List[str] = []
    sess.client.send_async(b"c")
    for _ in range(20):
        sess._pump()
        if monitor.guest_dead:
            break
    if not monitor.guest_dead:
        violations.append("guest survived its unservicable INT")
    try:
        sess.client.wait_for_stop(max_pumps=200)
    except ProtocolError:
        violations.append("no stop reply after guest death")
    if watchdog.check() != DEGRADE_FROZEN:
        violations.append("dead guest did not freeze to a snapshot")
    if watchdog.snapshot is None:
        violations.append("no post-mortem snapshot captured")
    plan.record_recovery("monitor", "guest-death-contained")
    _check_stub_service(sess.client, violations,
                        firmware.GUEST_KERNEL_BASE, "triple-fault")
    if monitor.monitor_region_hash() != baseline:
        violations.append("monitor region corrupted by the crash")
    return plan, violations, {"client": sess.client, "monitor": monitor,
                              "monitor_baseline": baseline}


SCENARIOS: Dict[str, Callable[[int], tuple]] = {
    "disk-errors": _scenario_disk_errors,
    "nic-loss": _scenario_nic_loss,
    "nic-corrupt": _scenario_nic_corrupt,
    "uart-noise": _scenario_uart_noise,
    "rsp-chaos": _scenario_rsp_chaos,
    "tcp-retransmit": _scenario_tcp_retransmit,
    "tcp-churn": _scenario_tcp_churn,
    "tcp-slow-consumer": _scenario_tcp_slow_consumer,
    "wild-writes": _scenario_wild_writes,
    "guest-hang": _scenario_guest_hang,
    "triple-fault": _scenario_triple_fault,
}


# ----------------------------------------------------------------------
# Campaign driver
# ----------------------------------------------------------------------

#: Scenarios that run a guest under the LVMM — the ones the flight
#: recorder can journal (the others exercise machines with no monitor).
RECORDABLE = ("wild-writes", "guest-hang", "triple-fault")


def run_scenario(name: str, seed: int, record: bool = True,
                 strict_guest: bool = False,
                 journal_dir: Optional[str] = None,
                 journal_all: bool = False) -> dict:
    """One scenario under one seed; returns its result record.

    Functional scenarios record a replay journal by default
    (``record=False`` turns the flight recorder off).  With
    ``strict_guest`` a dead guest is itself a violation — the knob that
    turns fault-tolerant chaos runs into reproducible failure captures.
    When the scenario ends with violations (or always, under
    ``journal_all``) and ``journal_dir`` is set, the sealed journal is
    written there as ``chaos_<scenario>_seed<seed>.journal``.
    """
    recordable = name in RECORDABLE
    if recordable:
        plan, violations, collected = SCENARIOS[name](seed, record=record)
    else:
        plan, violations, collected = SCENARIOS[name](seed)
    baseline = collected.pop("monitor_baseline", None)
    monitor = collected.get("monitor")
    if strict_guest and monitor is not None and monitor.guest_dead:
        violations.append("guest died under fault load: "
                          f"{monitor.guest_dead_reason}")
    journal = None
    recorder = getattr(monitor, "recorder", None) if monitor else None
    if recorder is not None and not recorder.finished:
        checks = []
        if monitor.guest_dead:
            checks.append({"check": "guest-dead"})
        if baseline is not None \
                and monitor.monitor_region_hash() != baseline:
            checks.append({"check": "monitor-corrupt",
                           "baseline": baseline})
        journal = recorder.finish(violations=violations, checks=checks)
    result = {
        "scenario": name,
        "seed": seed,
        "ok": not violations,
        "violations": violations,
        "fault_stats": collect_fault(plan, **collected),
        "trace": plan.trace.format(),
        "trace_digest": plan.trace.digest(),
    }
    if recorder is not None:
        result["fault_stats"]["recorder"] = recorder.stats()
    if journal is not None and journal_dir \
            and (violations or journal_all):
        os.makedirs(journal_dir, exist_ok=True)
        path = os.path.join(journal_dir,
                            f"chaos_{name}_seed{seed}.journal")
        save_journal(journal, path)
        result["journal"] = path
    return result


def campaign_trace(results: List[dict]) -> str:
    """The canonical campaign-wide fault trace (golden-file format)."""
    parts = []
    for result in results:
        parts.append(f"== scenario={result['scenario']} "
                     f"seed={result['seed']} ==\n")
        parts.append(result["trace"])
    return "".join(parts)


def run_campaign(seed: int = DEFAULT_SEED, runs: int = 1,
                 scenarios: Optional[List[str]] = None,
                 record: bool = True, strict_guest: bool = False,
                 journal_dir: Optional[str] = None,
                 journal_all: bool = False) -> dict:
    names = list(scenarios) if scenarios else list(SCENARIOS)
    for name in names:
        if name not in SCENARIOS:
            raise ValueError(f"unknown scenario {name!r}; "
                             f"pick from {sorted(SCENARIOS)}")
    results = []
    for run_index in range(runs):
        for name in names:
            results.append(run_scenario(
                name, seed + run_index, record=record,
                strict_guest=strict_guest, journal_dir=journal_dir,
                journal_all=journal_all))
    trace = campaign_trace(results)
    return {
        "experiment": "chaos-campaign",
        "seed": seed,
        "runs": runs,
        "scenarios": names,
        "ok": all(result["ok"] for result in results),
        "results": results,
        "trace": trace,
        "trace_digest": hashlib.sha256(
            trace.encode("ascii")).hexdigest(),
    }


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-chaos",
        description="Run seeded fault-injection scenarios and check the "
                    "debugger survivability invariants.")
    parser.add_argument("--seed", type=int, default=DEFAULT_SEED,
                        help="base seed (run N uses seed+N)")
    parser.add_argument("--runs", type=int, default=1,
                        help="seeds per scenario")
    parser.add_argument("--scenario", action="append", default=None,
                        choices=sorted(SCENARIOS), dest="scenarios",
                        help="run only this scenario (repeatable)")
    parser.add_argument("--json", metavar="PATH",
                        help="write the full campaign record as JSON")
    parser.add_argument("--trace", metavar="PATH",
                        help="write the campaign fault trace")
    parser.add_argument("--golden", metavar="PATH",
                        help="compare the trace against a golden file")
    parser.add_argument("--strict-guest", action="store_true",
                        help="treat a dead guest as a violation "
                             "(capture it as a replay journal)")
    parser.add_argument("--no-record", action="store_true",
                        help="disable the flight recorder")
    parser.add_argument("--journal-dir", metavar="DIR",
                        help="write replay journals of failing "
                             "scenarios to this directory")
    parser.add_argument("--journal-all", action="store_true",
                        help="with --journal-dir, keep journals of "
                             "passing scenarios too")
    parser.add_argument("--list", action="store_true",
                        help="list scenarios and exit")
    args = parser.parse_args(argv)

    if args.list:
        for name in SCENARIOS:
            print(name)
        return 0

    campaign = run_campaign(args.seed, args.runs, args.scenarios,
                            record=not args.no_record,
                            strict_guest=args.strict_guest,
                            journal_dir=args.journal_dir,
                            journal_all=args.journal_all)
    for result in campaign["results"]:
        stats = result["fault_stats"]["plan"]
        recoveries = sum(stats["recoveries"].values())
        client = result["fault_stats"].get("client", {})
        recoveries += sum(client.get("recoveries", {}).values())
        status = "ok" if result["ok"] else "FAIL"
        print(f"{result['scenario']:<12} seed={result['seed']} "
              f"{status:<4} faults={stats['trace_length']:<3} "
              f"recoveries={recoveries}")
        for violation in result["violations"]:
            print(f"    violation: {violation}")
        if "journal" in result:
            print(f"    journal: {result['journal']}")
    print(f"trace digest: {campaign['trace_digest']}")

    if args.trace:
        with open(args.trace, "w") as handle:
            handle.write(campaign["trace"])
        print(f"trace written to {args.trace}")
    if args.json:
        document = dict(campaign)
        document.pop("trace")   # the trace file is the canonical form
        with open(args.json, "w") as handle:
            json.dump(document, handle, indent=2)
        print(f"campaign record written to {args.json}")

    exit_code = 0 if campaign["ok"] else 1
    if args.golden:
        with open(args.golden) as handle:
            golden = handle.read()
        if golden != campaign["trace"]:
            print(f"golden trace mismatch against {args.golden}")
            exit_code = 1
        else:
            print("golden trace matches")
    return exit_code


if __name__ == "__main__":
    sys.exit(main())
