"""Bare-metal execution: the 'real hardware' baseline."""

from repro.baremetal.runner import BareMetalRunner, EmbeddedStub

__all__ = ["BareMetalRunner", "EmbeddedStub"]
