"""Bare-metal guest execution — the paper's "real hardware" baseline.

The guest boots at ring 0, owns the real GDT/IDT/PIC/PIT/UART, and no
monitor interposes on anything.  This is the fastest stack and also the
one with **no debugging safety net**: the optional
:class:`EmbeddedStub` reproduces the conventional "software debugger
embedded in the OS" approach the paper criticises — it is serviced only
when the guest cooperates (polls), so a crashed or wedged guest takes
the debugger down with it.  Experiment E4 contrasts this with the LVMM.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import TripleFault
from repro.hw import firmware
from repro.hw.machine import Machine
from repro.hw.uart import LSR_DATA_READY, PORT_BASE_COM1, REG_DATA, REG_LSR
from repro.rsp.stub import DebugStub
from repro.rsp.target import CpuTargetAdapter


class EmbeddedStub:
    """A debug stub living *inside* the guest (the conventional design).

    It only makes progress when the guest calls :meth:`poll` — typically
    from its idle loop.  If the guest never reaches the idle loop again
    (hang, crash, interrupt storm), the debugger is gone.
    """

    def __init__(self, machine: Machine) -> None:
        self.machine = machine
        self.adapter = CpuTargetAdapter(machine.cpu)
        self.stub = DebugStub(self.adapter, send_bytes=self._send)
        self.polls = 0

    def _send(self, data: bytes) -> None:
        bus = self.machine.bus
        for byte in data:
            bus.raw_port_write(PORT_BASE_COM1 + REG_DATA, byte, 1)

    def poll(self) -> None:
        """Service pending debugger traffic (guest-cooperative)."""
        self.polls += 1
        bus = self.machine.bus
        received = bytearray()
        while bus.raw_port_read(PORT_BASE_COM1 + REG_LSR, 1) \
                & LSR_DATA_READY:
            received.append(
                bus.raw_port_read(PORT_BASE_COM1 + REG_DATA, 1))
        if received:
            self.stub.feed(bytes(received))


class BareMetalRunner:
    """Boots and runs a guest directly on the simulated hardware."""

    name = "bare"

    def __init__(self, machine: Machine,
                 with_embedded_stub: bool = False) -> None:
        self.machine = machine
        self.guest_dead = False
        self.guest_dead_reason = ""
        self.embedded_stub: Optional[EmbeddedStub] = (
            EmbeddedStub(machine) if with_embedded_stub else None)

    def boot_guest(self, entry_pc: int) -> None:
        """Ring-0 boot with the firmware flat layout pre-installed.

        Real firmware would run the guest's own boot assembly; the guest
        images in this repo do their own LGDT/LIDT anyway, so the
        pre-install only mirrors what the BIOS leaves behind.
        """
        cpu = self.machine.cpu
        firmware.install_flat_firmware(cpu)
        cpu.pc = entry_pc
        cpu.flags = 0

    def run(self, max_instructions: int = 1_000_000) -> int:
        try:
            return self.machine.run(max_instructions)
        except TripleFault as fault:
            # On real hardware this is a machine reset; the (embedded)
            # debugger does not survive it.
            self.guest_dead = True
            self.guest_dead_reason = str(fault)
            self.embedded_stub = None
            return 0
