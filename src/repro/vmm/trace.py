"""Monitor event tracing.

The monitor records every architectural event it handles — trapped
instructions, fielded and reflected interrupts, VMCALLs, debug stops,
guest death — into a bounded ring buffer.  The host debugger reads it
back with ``monitor trace`` (a GDB ``qRcmd``), which turns "why is my
ISR not running?" from guesswork into a timeline.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Iterable, List, Optional

from repro.obs.taps import TapPoint

KIND_TRAP = "trap"
KIND_INTERRUPT = "irq"
KIND_REFLECT = "reflect"
KIND_EXCEPTION = "exc"
KIND_VMCALL = "vmcall"
KIND_DEBUG = "debug"
KIND_DEATH = "death"


@dataclass(frozen=True)
class TraceEvent:
    """One monitor event."""

    sequence: int
    cycle: int
    kind: str
    detail: str
    pc: int

    def format(self) -> str:
        return (f"[{self.sequence:6d}] cyc={self.cycle:<12d} "
                f"pc={self.pc:#010x} {self.kind:<8s} {self.detail}")


class TraceBuffer:
    """Bounded ring of monitor events."""

    def __init__(self, capacity: int = 1024) -> None:
        self.capacity = capacity
        self._events: Deque[TraceEvent] = deque(maxlen=capacity)
        self._sequence = 0
        self.enabled = True
        #: Multicast observation point notified as ``taps(event)`` with
        #: every recorded :class:`TraceEvent`.  The structured tracer
        #: (:mod:`repro.obs.tracer`) and the guest profiler subscribe
        #: here instead of adding branches to the monitor itself.
        self.taps = TapPoint()

    def record(self, cycle: int, kind: str, detail: str,
               pc: int = 0) -> None:
        if not self.enabled:
            return
        event = TraceEvent(self._sequence, cycle, kind, detail, pc)
        self._events.append(event)
        self._sequence += 1
        if self.taps:
            self.taps(event)

    def __len__(self) -> int:
        return len(self._events)

    @property
    def total_recorded(self) -> int:
        return self._sequence

    def tail(self, count: int = 32) -> List[TraceEvent]:
        """The most recent ``count`` events, oldest first."""
        events = list(self._events)
        return events[-count:]

    def by_kind(self, kind: str) -> List[TraceEvent]:
        return [e for e in self._events if e.kind == kind]

    def clear(self) -> None:
        self._events.clear()

    def format_tail(self, count: int = 32) -> str:
        events = self.tail(count)
        if not events:
            return "(trace empty)"
        return "\n".join(event.format() for event in events)
