"""The LVMM's I/O interception policy: *partial* hardware emulation.

Only the devices the remote-debugging function itself depends on are
claimed — the interrupt controller, the timer, and the debug UART.
Everything else (SCSI HBA, NIC, and any device added later) passes
straight through to real hardware, which is both the efficiency claim
and the customisability claim of the paper: a new high-throughput device
needs **zero** monitor changes.
"""

from __future__ import annotations

from typing import Callable, Optional, Set

from repro.hw.bus import IoIntercept
from repro.hw.pic import MASTER_CMD, MASTER_DATA, SLAVE_CMD, SLAVE_DATA
from repro.hw.pit import PORT_BASE as PIT_BASE
from repro.hw.uart import PORT_BASE_COM1
from repro.sim.budget import CAT_EMULATION, CAT_WORLD_SWITCH
from repro.vmm.shadow import ShadowState

#: Ports the lightweight monitor claims (and nothing else).
LVMM_INTERCEPTED_PORTS: Set[int] = (
    {MASTER_CMD, MASTER_DATA, SLAVE_CMD, SLAVE_DATA}
    | set(range(PIT_BASE, PIT_BASE + 4))
    | set(range(PORT_BASE_COM1, PORT_BASE_COM1 + 8))
)

_EOI_BIT = 0x20
_ICW1_BIT = 0x10


class LvmmIntercept(IoIntercept):
    """Routes guest PIC/PIT/UART accesses to virtual/forwarded devices.

    ``include_world_switch`` distinguishes the two callers:

    * the functional monitor reaches here *after* a #GP trap it already
      charged for, so only emulation time is added;
    * the performance-layer guest model calls the bus directly, so the
      trap cost must be charged here.
    """

    def __init__(self, shadow: ShadowState, bus, budget, cost_model,
                 include_world_switch: bool = False,
                 on_virtual_eoi: Optional[Callable[[], None]] = None) -> None:
        self._shadow = shadow
        self._bus = bus
        self._budget = budget
        self._cost = cost_model
        self._include_world_switch = include_world_switch
        self._on_virtual_eoi = on_virtual_eoi
        self.pic_accesses = 0
        self.pit_accesses = 0
        self.uart_denied = 0

    # -- policy ------------------------------------------------------------

    def intercepts_port(self, port: int) -> bool:
        return port in LVMM_INTERCEPTED_PORTS

    def intercepts_mmio(self, addr: int) -> bool:
        return False  # the NIC and any MMIO device pass through

    # -- accounting ------------------------------------------------------------

    def _charge(self, emulation_cycles: int) -> None:
        if self._include_world_switch:
            self._budget.charge(self._cost.world_switch_cycles,
                                CAT_WORLD_SWITCH)
        self._budget.charge(emulation_cycles, CAT_EMULATION)

    # -- emulation ------------------------------------------------------------

    def emulate_port_read(self, port: int, size: int) -> int:
        if port in (MASTER_CMD, MASTER_DATA, SLAVE_CMD, SLAVE_DATA):
            self.pic_accesses += 1
            self._charge(self._cost.pic_emulation_cycles)
            chip = self._shadow.virtual_pic
            target = chip.master_port() if port < SLAVE_CMD \
                else chip.slave_port()
            return target.port_read(port & 1, size)
        if PIT_BASE <= port < PIT_BASE + 4:
            self.pit_accesses += 1
            self._charge(self._cost.pit_emulation_cycles)
            # Reads reflect the real PIT (guest time is real time).
            return self._bus.raw_port_read(port, size)
        # Debug UART: the guest does not own it; reads are harmless 0.
        self.uart_denied += 1
        self._charge(self._cost.pic_emulation_cycles)
        return 0

    def emulate_port_write(self, port: int, value: int, size: int) -> None:
        if port in (MASTER_CMD, MASTER_DATA, SLAVE_CMD, SLAVE_DATA):
            self.pic_accesses += 1
            self._charge(self._cost.pic_emulation_cycles)
            chip = self._shadow.virtual_pic
            target = chip.master_port() if port < SLAVE_CMD \
                else chip.slave_port()
            is_command = (port & 1) == 0
            target.port_write(port & 1, value, size)
            if is_command and value & _EOI_BIT and not value & _ICW1_BIT:
                self._handle_virtual_eoi()
            return
        if PIT_BASE <= port < PIT_BASE + 4:
            self.pit_accesses += 1
            self._charge(self._cost.pit_emulation_cycles)
            self._shadow.pit_writes.append((port - PIT_BASE, value))
            # Forward: the guest's tick programming drives the real PIT
            # (the monitor multiplexes the same time base).
            self._bus.raw_port_write(port, value, size)
            return
        # Debug UART writes from the guest are discarded.
        self.uart_denied += 1
        self._charge(self._cost.pic_emulation_cycles)

    def _handle_virtual_eoi(self) -> None:
        """Guest signalled end-of-interrupt on its virtual PIC.

        Restore the virtual IF saved at reflection time (the practical
        approximation of restoring it at IRET; both guests in this repo
        EOI immediately before IRET).
        """
        if self._shadow.vif_before_reflect is not None:
            self._shadow.vif = self._shadow.vif_before_reflect
            self._shadow.vif_before_reflect = None
        if self._on_virtual_eoi is not None:
            self._on_virtual_eoi()
