"""The lightweight three-level memory-protection mechanism.

x86 paging alone distinguishes two privilege classes (supervisor/user).
The paper's monitor adds a third level so that *its* memory survives a
buggy guest kernel.  The mechanism reproduced here is the classic
ring-compression + segment-truncation combination:

* the guest kernel, written for ring 0, is run at **ring 1** — its
  privileged instructions trap to the monitor (ring 0);
* every descriptor the guest loads into the GDT is rewritten into a
  **shadow GDT**: DPL 0 becomes DPL 1, and the limit is clamped below
  the monitor's region at the top of the address space;
* ring 3 (guest applications) is left untouched — paging still provides
  the guest-kernel/application split.

Result: monitor (ring 0, full address space) / guest kernel (ring 1,
address space minus the monitor) / guest applications (ring 3, pages the
guest kernel grants) — three levels, no hardware support beyond stock
IA-32 segmentation.
"""

from __future__ import annotations

from typing import Optional

from repro.hw.seg import (
    DESCRIPTOR_SIZE,
    SegmentDescriptor,
    selector_index,
    selector_rpl,
)


def compress_descriptor(descriptor: SegmentDescriptor,
                        monitor_base: int) -> SegmentDescriptor:
    """Rewrite one guest descriptor for the shadow GDT.

    Ring compression maps DPL 0 -> 1 (rings 1..3 keep their DPL) and the
    limit is clamped so no guest segment can reach the monitor region.
    A descriptor whose *base* already sits at or above the monitor
    region cannot be truncated into anything usable — it is marked not
    present, so any guest load of it takes a clean #NP-style fault
    instead of silently dereferencing a zero-limit segment.
    """
    new_dpl = 1 if descriptor.dpl == 0 else descriptor.dpl
    reachable = descriptor.base < monitor_base
    return SegmentDescriptor(
        base=descriptor.base,
        limit=min(descriptor.limit, max(monitor_base - descriptor.base, 0)),
        dpl=new_dpl,
        code=descriptor.code,
        writable=descriptor.writable,
        present=descriptor.present and reachable,
    )


def compress_selector(sel: int) -> int:
    """Adjust a guest selector's RPL for ring compression (RPL 0 -> 1)."""
    rpl = selector_rpl(sel)
    if rpl == 0:
        rpl = 1
    return (selector_index(sel) << 2) | rpl


class ShadowGdt:
    """The monitor-owned real GDT mirroring the guest's table.

    Indices are preserved one-to-one so guest selectors keep working;
    only DPL and limit change.  The shadow lives inside the monitor
    region, where the guest cannot reach it.
    """

    def __init__(self, memory, shadow_base: int, monitor_base: int,
                 max_descriptors: int = 64) -> None:
        self._memory = memory
        self.base = shadow_base
        self.monitor_base = monitor_base
        self.max_descriptors = max_descriptors
        self.limit = 0
        self.rebuilds = 0

    def rebuild(self, guest_base: int, guest_limit: int) -> None:
        """Re-shadow the guest GDT after the guest's LGDT."""
        count = min(guest_limit // DESCRIPTOR_SIZE, self.max_descriptors)
        for index in range(count):
            raw = self._memory.read(guest_base + index * DESCRIPTOR_SIZE,
                                    DESCRIPTOR_SIZE)
            descriptor = SegmentDescriptor.unpack(raw)
            shadowed = compress_descriptor(descriptor, self.monitor_base)
            self._memory.write(self.base + index * DESCRIPTOR_SIZE,
                               shadowed.pack())
        self.limit = count * DESCRIPTOR_SIZE
        self.rebuilds += 1

    def read(self, index: int) -> SegmentDescriptor:
        raw = self._memory.read(self.base + index * DESCRIPTOR_SIZE,
                                DESCRIPTOR_SIZE)
        return SegmentDescriptor.unpack(raw)


def guest_can_reach(descriptor: SegmentDescriptor, offset: int,
                    monitor_base: int) -> bool:
    """Would a guest access at ``offset`` through ``descriptor`` touch
    monitor memory?  (Used by tests to assert the invariant.)"""
    if not descriptor.contains(offset):
        return False
    return descriptor.base + offset >= monitor_base
