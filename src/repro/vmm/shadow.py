"""Shadow (virtual) machine state kept by the lightweight VMM.

The guest believes it owns the hardware; in reality the monitor keeps a
virtual copy of everything it refuses to hand over:

* virtual IDTR / GDTR / TSS — the values the guest loaded with
  LIDT/LGDT/LTSS, which trapped;
* the virtual interrupt flag (the guest's CLI/STI trap into here);
* a complete virtual 8259 pair — guest-owned device interrupts are
  latched here and the guest's mask/EOI programming lands here, while
  the monitor keeps the *real* PIC for itself;
* the guest's PIT programming (forwarded to the real PIT, recorded so
  reads and the debugger see the guest's view).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.hw.pic import PicPair


@dataclass
class TableRegister:
    base: int = 0
    limit: int = 0


@dataclass
class ShadowState:
    """Everything the monitor virtualises for one guest."""

    #: The guest's virtual interrupt flag (its CLI/STI state).
    vif: bool = False
    #: vif value saved when an interrupt was reflected; restored on the
    #: guest's virtual-PIC EOI (monitors without VT approximate the
    #: IRET-time restore this way; see DESIGN.md).
    vif_before_reflect: Optional[bool] = None
    #: Guest-loaded descriptor-table registers.
    idtr: TableRegister = field(default_factory=TableRegister)
    gdtr: TableRegister = field(default_factory=TableRegister)
    tss_base: int = 0
    #: Guest view of the control registers (CR0 paging bit, CR3).
    cr0: int = 0
    cr3: int = 0
    #: The guest's virtual interrupt controller.
    virtual_pic: PicPair = field(default_factory=PicPair)
    #: Guest-programmed PIT divisor/mode bytes (recorded passthrough).
    pit_writes: list = field(default_factory=list)
    #: Guest executed HLT (wake on next virtual interrupt).
    halted: bool = False

    def pending_virtual_vector(self) -> Optional[int]:
        """Vector of the highest-priority deliverable virtual interrupt."""
        if not self.vif:
            return None
        return self.virtual_pic.pending_vector()
