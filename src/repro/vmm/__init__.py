"""The lightweight virtual machine monitor (the paper's contribution)."""

from repro.vmm.intercept import LVMM_INTERCEPTED_PORTS, LvmmIntercept
from repro.vmm.monitor import (
    GuestImageRejected,
    GuestImageWarning,
    LightweightVmm,
    LvmmTargetAdapter,
    MONITOR_MAGIC,
    Monitor,
    MonitorStats,
    VMCALL_MAGIC,
    VMCALL_PANIC,
    VMCALL_PUTC,
    verify_image,
)
from repro.vmm.protect import (
    ShadowGdt,
    compress_descriptor,
    compress_selector,
    guest_can_reach,
)
from repro.vmm.shadow import ShadowState, TableRegister

__all__ = [
    "LightweightVmm",
    "Monitor",
    "GuestImageRejected",
    "GuestImageWarning",
    "verify_image",
    "LvmmTargetAdapter",
    "LvmmIntercept",
    "LVMM_INTERCEPTED_PORTS",
    "MonitorStats",
    "ShadowState",
    "TableRegister",
    "ShadowGdt",
    "compress_descriptor",
    "compress_selector",
    "guest_can_reach",
    "MONITOR_MAGIC",
    "VMCALL_PUTC",
    "VMCALL_MAGIC",
    "VMCALL_PANIC",
]
