"""Monitor watchdog: detect a hung or rampaging guest and keep the
debug stub in charge.

The paper's stability claim is that the debugger keeps working no
matter what the guest does.  The monitor already *survives* guest
failure passively; the watchdog makes the property active: it is a
periodic health check (driven from the host pump or a campaign loop,
i.e. from outside the guest, which may never run another instruction)
that recognises wedged guests and forces entry into the stub.

Detection verdicts, from the same signals ``monitor hang`` reports:

* **dead-idle** — parked in HLT with the virtual IF clear: no interrupt
  can ever wake it;
* **hard-spin** — zero retired instructions across ``spin_checks``
  consecutive checks while supposedly running;
* **irq-off-spin** — executing with the virtual IF clear for
  ``spin_checks`` consecutive checks (a critical section that never
  ends);
* **exception-storm** — more than ``exception_burst`` reflected
  exceptions between checks (a rampaging guest re-faulting forever);
* **guest-dead** — the monitor already declared the guest dead.

On detection the watchdog forces a debug stop (the stub reports it if a
debugger is waiting) and ratchets the monitor's **degradation level**:

    full-service  ->  stub-only  ->  frozen-snapshot

``full-service``: guest runs freely, stub on demand.  ``stub-only``:
the guest is frozen and resume requests are refused — the stub answers
every query but ``c``/``s`` come straight back with a stop reply.
``frozen-snapshot``: additionally, a snapshot of the machine is
captured at the moment of degradation for post-mortem time travel; this
is the terminal level, reached when the guest is dead.  Levels only
ratchet upward; :meth:`MonitorWatchdog.reset` (an explicit operator
action) returns to full service.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.obs.metrics import global_registry
from repro.obs.taps import TapPoint

DEGRADE_FULL = "full-service"
DEGRADE_STUB_ONLY = "stub-only"
DEGRADE_FROZEN = "frozen-snapshot"

_LEVEL_ORDER = {DEGRADE_FULL: 0, DEGRADE_STUB_ONLY: 1, DEGRADE_FROZEN: 2}


class MonitorWatchdog:
    """Periodic guest-health check bound to one monitor."""

    def __init__(self, monitor, spin_checks: int = 3,
                 exception_burst: int = 256) -> None:
        self.monitor = monitor
        self.spin_checks = spin_checks
        self.exception_burst = exception_burst
        self._last_instret = monitor.machine.cpu.instret
        self._last_exceptions = monitor.stats.exceptions_reflected
        self._suspect_checks = 0
        #: (cycle, from-level, to-level, reason) history.
        self.transitions: List[Tuple[int, str, str, str]] = []
        #: Multicast observation point notified as ``taps(cycle, src,
        #: dst, reason)`` for every degradation-level transition.  The
        #: tracer subscribes here; observers must only observe.
        self.transition_taps = TapPoint()
        #: Ladder state as a metric, so the fleet supervisor and any
        #: dashboard export see degradations without a qRcmd round trip.
        #: The gauge carries the :data:`_LEVEL_ORDER` ordinal (0 = full
        #: service, 2 = frozen-snapshot).
        self._level_gauge = global_registry().gauge(
            "monitor.watchdog.level",
            help="watchdog degradation ladder ordinal "
                 "(0=full-service, 1=stub-only, 2=frozen-snapshot)")
        self._level_gauge.set(_LEVEL_ORDER[monitor.degradation_level])
        self._degrade_counter = global_registry().counter(
            "monitor.watchdog.degradations",
            help="degradation-ladder upward transitions")
        self.snapshot = None
        self.stats = {
            "checks": 0,
            "hangs_detected": 0,
            "storms_detected": 0,
            "forced_stops": 0,
            "degradations": 0,
        }
        monitor.watchdog = self

    # ------------------------------------------------------------------

    @property
    def level(self) -> str:
        return self.monitor.degradation_level

    def check(self) -> str:
        """One health check; returns the (possibly new) degradation level."""
        self.stats["checks"] += 1
        monitor = self.monitor
        cpu = monitor.machine.cpu
        progress = cpu.instret - self._last_instret
        self._last_instret = cpu.instret
        exceptions = monitor.stats.exceptions_reflected \
            - self._last_exceptions
        self._last_exceptions = monitor.stats.exceptions_reflected

        if monitor.guest_dead:
            self._degrade(DEGRADE_FROZEN,
                          f"guest dead: {monitor.guest_dead_reason}")
            return self.level
        if monitor.stopped:
            # The debugger is in control; nothing to detect.
            self._suspect_checks = 0
            return self.level
        if cpu.halted and not monitor.shadow.vif:
            self._detect("hangs_detected",
                         "dead-idle: HLT with virtual IF clear")
            return self.level
        if exceptions > self.exception_burst:
            self._detect("storms_detected",
                         f"exception-storm: {exceptions} reflected "
                         f"since last check")
            return self.level
        suspect = (progress == 0 and not cpu.halted) \
            or (progress > 0 and not monitor.shadow.vif)
        if suspect:
            self._suspect_checks += 1
            if self._suspect_checks >= self.spin_checks:
                verdict = "hard-spin: no progress" if progress == 0 \
                    else "irq-off-spin: executing with virtual IF clear"
                self._detect("hangs_detected",
                             f"{verdict} for {self._suspect_checks} checks")
        else:
            self._suspect_checks = 0
        return self.level

    # ------------------------------------------------------------------

    def _detect(self, counter: str, reason: str) -> None:
        self.stats[counter] += 1
        self._suspect_checks = 0
        self._force_stub(reason)
        self._degrade(DEGRADE_STUB_ONLY, reason)

    def _force_stub(self, reason: str) -> None:
        from repro.rsp.target import SIGTRAP
        if not self.monitor.stopped:
            self.stats["forced_stops"] += 1
            self.monitor.debug_stop(SIGTRAP)

    def _degrade(self, target: str, reason: str) -> None:
        current = self.monitor.degradation_level
        if _LEVEL_ORDER[target] <= _LEVEL_ORDER[current]:
            return
        self.stats["degradations"] += 1
        self._degrade_counter.inc()
        cycle = self.monitor.machine.cpu.cycle_count
        self.transitions.append((cycle, current, target, reason))
        if self.transition_taps:
            self.transition_taps(cycle, current, target, reason)
        self.monitor.degradation_level = target
        self._level_gauge.set(_LEVEL_ORDER[target])
        if target == DEGRADE_FROZEN and self.snapshot is None:
            from repro.core import snapshot as snap
            self.snapshot = snap.capture(self.monitor.machine, self.monitor,
                                         label="watchdog-frozen")

    def reset(self) -> None:
        """Operator action: return to full service (does not revive a
        dead guest — the next check re-degrades in that case)."""
        self.monitor.degradation_level = DEGRADE_FULL
        self._level_gauge.set(_LEVEL_ORDER[DEGRADE_FULL])
        self._suspect_checks = 0

    # ------------------------------------------------------------------

    def report(self) -> str:
        """Human-readable state (the ``monitor watchdog`` command)."""
        lines = [f"level: {self.level}",
                 "checks: {checks}, hangs: {hangs_detected}, storms: "
                 "{storms_detected}, forced stops: {forced_stops}"
                 .format(**self.stats)]
        for cycle, src, dst, reason in self.transitions:
            lines.append(f"  cycle {cycle}: {src} -> {dst} ({reason})")
        return "\n".join(lines)
