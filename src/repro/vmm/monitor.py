"""The lightweight virtual machine monitor.

This class is the paper's contribution: a monitor embedded on the target
machine, independent of the guest OS, that

1. runs the unmodified guest kernel **deprivileged at ring 1** and
   emulates the privileged operations that trap (trap-and-emulate);
2. emulates **only** the interrupt controller, the timer and the debug
   UART — the SCSI HBA and NIC are accessed directly by the guest (the
   I/O permission bitmap plus uninterposed MMIO);
3. hosts the GDB remote stub, servicing the host-side debugger over the
   UART it owns, so debugging keeps working no matter what the guest
   does;
4. protects its own memory with ring compression + segment truncation
   (see :mod:`repro.vmm.protect`), giving the three protection levels.

In the reproduction the monitor's "ring-0 code" is Python attached to
the CPU's exception/interrupt hooks — the architectural contract (what
traps, what state is readable, what is reflected) is identical to a
native monitor's.
"""

from __future__ import annotations

import hashlib
import warnings
from dataclasses import dataclass, field
from typing import Dict, Optional, TYPE_CHECKING

if TYPE_CHECKING:
    from repro.analysis.report import Report
    from repro.asm.assembler import Program

from repro.asm.disasm import decode_one
from repro.errors import DisassemblerError, MonitorError, TripleFault
from repro.hw import firmware
from repro.hw.cpu import Cpu, CpuFault, IDT_ENTRY_SIZE, IdtGate
from repro.hw.isa import (
    FLAG_IF,
    FLAG_TF,
    IOPL_MASK,
    SEG_CS,
    SEG_DS,
    SEG_SS,
    VEC_BP,
    VEC_DB,
    VEC_GP,
)
from repro.hw.machine import Machine
from repro.hw.pic import standard_setup
from repro.hw.scsi import PORT_BASE_SCSI, PORT_SPAN
from repro.hw.seg import DESCRIPTOR_SIZE, selector_index
from repro.hw.uart import (
    IRQ_COM1,
    LSR_DATA_READY,
    PORT_BASE_COM1,
    REG_DATA,
    REG_LSR,
)
from repro.obs.profiler import GuestProfiler
from repro.obs.taps import TapPoint, tap_property
from repro.obs.tracer import Tracer
from repro.rsp.stub import DebugStub
from repro.rsp.target import CpuTargetAdapter, SIGILL, SIGSEGV, SIGTRAP
from repro.sim.budget import CAT_EMULATION, CAT_INTERRUPT, CAT_WORLD_SWITCH
from repro.perf.costmodel import DEFAULT_COST_MODEL, CostModel
from repro.vmm.intercept import LvmmIntercept
from repro.vmm.protect import ShadowGdt, compress_selector
from repro.vmm.watchdog import DEGRADE_FULL
from repro.vmm.shadow import ShadowState
from repro.vmm.trace import (
    KIND_DEATH,
    KIND_DEBUG,
    KIND_EXCEPTION,
    KIND_INTERRUPT,
    KIND_REFLECT,
    KIND_TRAP,
    KIND_VMCALL,
    TraceBuffer,
)

#: Offsets of monitor structures inside the monitor region.
OFF_SHADOW_GDT = 0x0000
OFF_SHADOW_IDT = 0x1000
OFF_REAL_TSS = 0x2000

#: Guest kernel-visible console written via VMCALL (function 0).
VMCALL_PUTC = 0
VMCALL_MAGIC = 1
VMCALL_PANIC = 2
#: Register the guest's task table (R1 = header address) so the debug
#: stub can enumerate and inspect threads.
VMCALL_SET_TASK_TABLE = 3
MONITOR_MAGIC = 0x4C564D4D  # "LVMM"


@dataclass
class MonitorStats:
    traps_emulated: int = 0
    traps_by_mnemonic: Dict[str, int] = field(default_factory=dict)
    interrupts_fielded: int = 0
    interrupts_reflected: int = 0
    exceptions_reflected: int = 0
    debug_stops: int = 0
    vmcalls: int = 0
    uart_bytes_in: int = 0
    uart_bytes_out: int = 0
    wild_writes_injected: int = 0
    spurious_interrupts_injected: int = 0
    resumes_refused: int = 0


class GuestImageRejected(MonitorError):
    """A strict monitor refused to load a statically-flagged image."""

    def __init__(self, report: "Report") -> None:
        errors = report.errors
        lines = "\n".join(f.format() for f in errors)
        super().__init__(
            f"guest image rejected: {len(errors)} error finding(s)\n"
            f"{lines}")
        self.report = report


def verify_image(image: bytes, origin: int, *,
                 monitor_base: Optional[int] = None,
                 entry_ring: int = 0) -> "Report":
    """Statically analyze a guest image before it is allowed to run.

    Thin wrapper over :func:`repro.analysis.analyze_image` so the
    monitor (and anything else that loads guest code) has one obvious
    load-time gate.  Returns the full report; callers decide whether
    error findings warn or reject.
    """
    from repro.analysis import analyze_image

    return analyze_image(image, origin, monitor_base=monitor_base,
                         entry_ring=entry_ring)


class GuestImageWarning(UserWarning):
    """Emitted when a non-strict monitor loads a flagged image."""


#: Task states in the guest<->monitor task-table ABI
#: (see repro.guest.asmthreads).
TASK_EMPTY, TASK_READY, TASK_RUNNING, TASK_EXITED = 0, 1, 2, 3
_TASK_STATE_NAMES = {0: "empty", 1: "ready", 2: "running", 3: "exited"}
#: Parked-frame layout below a task's saved SP (ascending words).
_FRAME_REGS = ("R6", "R5", "R4", "R3", "R2", "R1", "R0",
               "PC", "CS", "FLAGS")


class LvmmTargetAdapter(CpuTargetAdapter):
    """Debug-stub view of the guest, mediated by the monitor.

    When the guest has registered a task table (VMCALL 3), the adapter
    exposes every task as a GDB thread: parked tasks' registers are
    read straight out of their switch frames in guest memory.
    """

    def __init__(self, monitor: "LightweightVmm") -> None:
        super().__init__(monitor.machine.cpu)
        self._monitor = monitor

    def resume(self, step: bool) -> None:
        self._monitor.resume_guest(step)

    def monitor_command(self, text: str) -> str:
        return self._monitor.monitor_command(text)

    # -- threads --------------------------------------------------------------

    def _table(self):
        """(current_index, [(state, saved_sp), ...]) or None."""
        base = self._monitor.task_table_addr
        if base is None:
            return None
        memory = self._monitor.machine.memory
        current = memory.read_u32(base)
        count = memory.read_u32(base + 4)
        if not 0 < count <= 64:
            return None
        tasks = [(memory.read_u32(base + 8 + index * 8),
                  memory.read_u32(base + 12 + index * 8))
                 for index in range(count)]
        return current, tasks

    def thread_ids(self):
        table = self._table()
        if table is None:
            return [1]
        _, tasks = table
        return [index + 1 for index, (state, _) in enumerate(tasks)
                if state != TASK_EMPTY]

    def current_thread_id(self):
        table = self._table()
        if table is None:
            return 1
        current, _ = table
        return current + 1

    def thread_registers(self, thread_id: int):
        table = self._table()
        if table is None:
            return super().thread_registers(thread_id)
        current, tasks = table
        index = thread_id - 1
        if not 0 <= index < len(tasks):
            return None
        if index == current:
            return self.read_registers()
        state, saved_sp = tasks[index]
        if state == TASK_EMPTY:
            return None
        # Decode the parked switch frame.
        memory = self._monitor.machine.memory
        words = [memory.read_u32(saved_sp + 4 * i) for i in range(10)]
        r6, r5, r4, r3, r2, r1, r0, pc, _cs, flags = words
        sp_after_switch = (saved_sp + 40) & 0xFFFFFFFF
        return [r0, r1, r2, r3, r4, r5, r6, sp_after_switch, pc, flags]

    def thread_extra_info(self, thread_id: int) -> str:
        table = self._table()
        if table is None:
            return "single-threaded target"
        current, tasks = table
        index = thread_id - 1
        if not 0 <= index < len(tasks):
            return "no such task"
        state, saved_sp = tasks[index]
        name = _TASK_STATE_NAMES.get(state, f"state{state}")
        marker = " (current)" if index == current else ""
        return f"task {index}: {name}{marker}"


class LightweightVmm:
    """The LVMM bound to one :class:`Machine`."""

    name = "lvmm"

    def __init__(self, machine: Machine,
                 cost_model: Optional[CostModel] = None,
                 strict: bool = False) -> None:
        self.machine = machine
        self.cost = cost_model or DEFAULT_COST_MODEL
        #: When True, :meth:`load_guest` refuses statically-flagged
        #: images instead of merely warning.
        self.strict = strict
        #: Report produced by the last :meth:`load_guest` gate.
        self.last_verify_report: Optional["Report"] = None
        self.shadow = ShadowState()
        self.stats = MonitorStats()
        self.monitor_base = firmware.monitor_base(machine.memory.size)
        self.shadow_gdt = ShadowGdt(
            machine.memory, self.monitor_base + OFF_SHADOW_GDT,
            self.monitor_base)
        self.console = bytearray()
        self.trace = TraceBuffer()
        #: Guest task-table header (set via VMCALL 3); None = no
        #: thread-aware debugging.
        self.task_table_addr: Optional[int] = None
        self.guest_dead = False
        self.guest_dead_reason = ""
        self.stopped = False        # guest frozen for the debugger
        self.stepping = False
        self.installed = False
        #: Service level (see repro.vmm.watchdog): full-service lets the
        #: guest run; stub-only / frozen-snapshot refuse resumes.
        self.degradation_level = DEGRADE_FULL
        #: Attached :class:`~repro.vmm.watchdog.MonitorWatchdog`, if any.
        self.watchdog = None
        #: Multicast observation point notified as ``taps(kind,
        #: payload)`` at the nondeterminism boundary (run begin/end,
        #: debugger service, fault triggers, stops, guest death).  The
        #: :class:`repro.replay.FlightRecorder` installs itself in the
        #: legacy :attr:`record_tap` primary slot; the structured tracer
        #: subscribes alongside.  Observers must only observe.
        self.record_taps = TapPoint()
        #: Attached FlightRecorder / replayer status (``monitor record``
        #: and ``monitor replay`` qRcmds report these).
        self.recorder = None
        self.replay_status = None
        #: Attached :class:`repro.obs.profiler.GuestProfiler`, sampled
        #: from :meth:`run` (see :meth:`attach_profiler`).
        self.profiler = None
        self._profiler_reason_cb = None
        #: Live structured tracer started via ``monitor trace start``.
        self.obs_tracer = None
        self.intercept = LvmmIntercept(
            self.shadow, machine.bus, machine.budget, self.cost,
            include_world_switch=False,
            on_virtual_eoi=self._after_virtual_eoi)
        self.adapter = LvmmTargetAdapter(self)
        self.stub = DebugStub(self.adapter, send_bytes=self._uart_send)

    record_tap = tap_property("record_taps")

    # ------------------------------------------------------------------
    # Observability (profiler + structured trace)
    # ------------------------------------------------------------------

    def attach_profiler(self, profiler: GuestProfiler) -> GuestProfiler:
        """Sample guest PCs from the run loop at the profiler's stride.

        Also feeds the profiler's trap-reason channel from the monitor
        trace buffer so samples carry "what last happened" context.
        """
        if self.profiler is not None:
            raise MonitorError("a profiler is already attached")
        self.profiler = profiler
        self._profiler_reason_cb = self.trace.taps.subscribe(
            lambda event: profiler.note_reason(event.kind))
        profiler.start(self.machine.cpu.instret)
        return profiler

    def detach_profiler(self) -> None:
        """Stop sampling (idempotent); keeps collected samples."""
        if self.profiler is None:
            return
        self.profiler.stop()
        self.trace.taps.unsubscribe(self._profiler_reason_cb)
        self._profiler_reason_cb = None
        self.profiler = None

    # ------------------------------------------------------------------
    # Installation / guest boot
    # ------------------------------------------------------------------

    def install(self) -> None:
        """Take ownership of the machine: hooks, intercepts, real PIC."""
        if self.installed:
            raise MonitorError("monitor already installed")
        cpu = self.machine.cpu
        cpu.exception_hook = self._on_exception
        cpu.interrupt_hook = self._on_interrupt
        cpu.vmcall_hook = self._on_vmcall
        self.machine.bus.intercept = self.intercept
        # The monitor owns the real PIC: canonical bases, all unmasked.
        standard_setup(self.machine.pic)
        # The monitor owns the debug UART: RX interrupts on.
        self.machine.bus.raw_port_write(PORT_BASE_COM1 + 1, 0x01, 1)
        # High-throughput passthrough: the guest may touch SCSI ports
        # directly even at ring 1 (the I/O permission bitmap).
        cpu.io_allowed_ports = set(range(PORT_BASE_SCSI,
                                         PORT_BASE_SCSI + PORT_SPAN))
        # Real TSS (ring-transition stacks) lives in monitor memory.
        cpu.tss_base = self.monitor_base + OFF_REAL_TSS
        self.installed = True

    def boot_guest(self, entry_pc: int, guest_memory_limit: int = None) -> None:
        """Start the guest kernel, deprivileged, at ``entry_pc``.

        The guest image believes it boots at ring 0 with flat segments;
        the monitor gives it ring-1 flat segments truncated below the
        monitor region.  Every privileged instruction in its boot path
        traps and is emulated.
        """
        if not self.installed:
            raise MonitorError("install() the monitor before booting")
        cpu = self.machine.cpu
        limit = guest_memory_limit if guest_memory_limit is not None \
            else self.monitor_base
        limit = min(limit, self.monitor_base)
        # Seed a boot shadow GDT from the firmware flat layout.
        selectors = firmware.build_gdt(self.machine.memory, limit)
        self.shadow.gdtr.base = firmware.GDT_BASE
        self.shadow.gdtr.limit = firmware.GDT_DESCRIPTORS * DESCRIPTOR_SIZE
        self.shadow_gdt.rebuild(self.shadow.gdtr.base,
                                self.shadow.gdtr.limit)
        cpu.gdt.load(self.shadow_gdt.base, self.shadow_gdt.limit)

        code1 = self.shadow_gdt.read(firmware.IDX_CODE0)
        data1 = self.shadow_gdt.read(firmware.IDX_DATA0)
        cpu.force_segment(SEG_CS, compress_selector(selectors.code0), code1)
        cpu.force_segment(SEG_DS, compress_selector(selectors.data0), data1)
        cpu.force_segment(SEG_SS, compress_selector(selectors.data0), data1)
        cpu.sp = firmware.RING1_STACK_TOP
        cpu.pc = entry_pc
        cpu.flags = 0  # IOPL 0: every CLI/STI/HLT/IN/OUT gated
        # Default ring-transition stacks until the guest's LTSS traps in.
        firmware.write_tss(
            self.machine.memory,
            {1: (firmware.RING1_STACK_TOP,
                 compress_selector(selectors.data0))},
            tss_base=self.machine.cpu.tss_base)

    def load_guest(self, program: "Program",
                   entry_pc: Optional[int] = None,
                   guest_memory_limit: Optional[int] = None,
                   strict: Optional[bool] = None) -> "Report":
        """Verify, load and boot an assembled guest image in one step.

        The image is statically analyzed (:func:`verify_image`) before
        it touches guest memory.  Error findings raise
        :class:`GuestImageRejected` when the monitor is strict (ctor
        ``strict=True`` or the ``strict`` override here); otherwise
        they are reported as :class:`GuestImageWarning` warnings and
        the guest boots anyway — the monitor survives whatever the
        image does, that is the whole point of the paper.
        """
        report = verify_image(program.image, program.origin,
                              monitor_base=self.monitor_base)
        self.last_verify_report = report
        effective_strict = self.strict if strict is None else strict
        if report.errors:
            if effective_strict:
                raise GuestImageRejected(report)
            for finding in report.errors:
                warnings.warn(
                    f"guest image: {finding.format()}",
                    GuestImageWarning, stacklevel=2)
        program.load_into(self.machine.memory)
        if not self.installed:
            self.install()
        self.boot_guest(program.origin if entry_pc is None else entry_pc,
                        guest_memory_limit)
        return report

    # ------------------------------------------------------------------
    # Exception handling (the trap-and-emulate core)
    # ------------------------------------------------------------------

    def _on_exception(self, cpu: Cpu, vector: int, error: int) -> bool:
        if vector in (VEC_DB, VEC_BP):
            self.debug_stop(SIGTRAP)
            return True
        if vector == VEC_GP and cpu.cpl >= 1:
            if self._try_emulate(cpu):
                return True
        return self._reflect_exception(cpu, vector, error)

    def _try_emulate(self, cpu: Cpu) -> bool:
        """Decode the faulting instruction; emulate it if it is one of
        the privileged operations the monitor virtualises."""
        code = cpu.peek_virtual(SEG_CS, cpu.pc, 8)
        if not code:
            return False
        try:
            insn = decode_one(code, 0, cpu.pc)
        except DisassemblerError:
            return False
        handler = getattr(self, f"_emulate_{insn.mnemonic.lower()}", None)
        if handler is None:
            return False
        self._charge_trap()
        self._skip_pc_advance = False
        if not handler(cpu, insn):
            return False
        self.stats.traps_emulated += 1
        by = self.stats.traps_by_mnemonic
        by[insn.mnemonic] = by.get(insn.mnemonic, 0) + 1
        self.trace.record(cpu.cycle_count, KIND_TRAP, insn.text, cpu.pc)
        if not self._skip_pc_advance:
            cpu.pc = (cpu.pc + insn.length) & 0xFFFFFFFF
        if self.stepping:
            self.debug_stop(SIGTRAP)
        return True

    #: Control-transfer emulations (IRET) set their own PC.
    _skip_pc_advance = False

    def _charge_trap(self, emulation: int = 0) -> None:
        self.machine.budget.charge(self.cost.world_switch_cycles,
                                   CAT_WORLD_SWITCH)
        if emulation:
            self.machine.budget.charge(emulation, CAT_EMULATION)

    # -- individual privileged-instruction emulations ---------------------------

    def _emulate_cli(self, cpu: Cpu, insn) -> bool:
        self.shadow.vif = False
        return True

    def _emulate_sti(self, cpu: Cpu, insn) -> bool:
        self.shadow.vif = True
        # Delivery of anything pending happens *after* PC advances; the
        # caller advances PC, so schedule via the post-emulation check.
        self._pending_sti_window = True
        return True

    _pending_sti_window = False

    def _emulate_hlt(self, cpu: Cpu, insn) -> bool:
        if self.shadow.pending_virtual_vector() is not None:
            # An interrupt is already waiting: HLT falls through.
            return True
        self.shadow.halted = True
        cpu.halted = True
        return True

    def _emulate_iret(self, cpu: Cpu, insn) -> bool:
        """IRET through a guest-fabricated frame.

        Ring compression makes frames the guest built itself (initial
        task contexts, hand-rolled returns) carry RPL-0 selectors; the
        hardware IRET refuses them from ring 1, so the monitor performs
        the return with the selectors compressed — the classic
        IRET-emulation every ring-compression monitor ships.
        """
        try:
            new_pc = cpu.pop32()
            new_cs = cpu.pop32()
            new_flags = cpu.pop32()
            sel = compress_selector(new_cs)
            index = selector_index(sel)
            if index * DESCRIPTOR_SIZE >= self.shadow_gdt.limit:
                return False
            descriptor = self.shadow_gdt.read(index)
            if not descriptor.present or not descriptor.code:
                return False
            outward = descriptor.dpl > cpu.cpl
            if outward:
                new_sp = cpu.pop32()
                new_ss = cpu.pop32()
                ss_sel = compress_selector(new_ss)
                ss_descriptor = self.shadow_gdt.read(
                    selector_index(ss_sel))
                cpu.force_segment(SEG_SS, ss_sel, ss_descriptor)
                cpu.sp = new_sp
            cpu.force_segment(SEG_CS, sel, descriptor)
            cpu.pc = new_pc
            # The guest's IF intent lands on the virtual flag; the real
            # IF stays monitor-owned.  Arithmetic flags pass through.
            self.shadow.vif = bool(new_flags & FLAG_IF)
            cpu.flags = (cpu.flags & (FLAG_IF | IOPL_MASK)) | \
                (new_flags & ~(FLAG_IF | IOPL_MASK))
        except CpuFault:
            return False
        self._skip_pc_advance = True
        if self.shadow.vif:
            self._pending_sti_window = True
        return True

    def _emulate_lidt(self, cpu: Cpu, insn) -> bool:
        pointer = cpu.regs[insn.raw[1] & 0x7]
        raw = cpu.peek_virtual(SEG_DS, pointer, 8)
        if raw is None:
            return False
        self.shadow.idtr.limit = int.from_bytes(raw[0:4], "little")
        self.shadow.idtr.base = int.from_bytes(raw[4:8], "little")
        self._rebuild_shadow_idt()
        return True

    def _emulate_lgdt(self, cpu: Cpu, insn) -> bool:
        pointer = cpu.regs[insn.raw[1] & 0x7]
        raw = cpu.peek_virtual(SEG_DS, pointer, 8)
        if raw is None:
            return False
        self.shadow.gdtr.limit = int.from_bytes(raw[0:4], "little")
        self.shadow.gdtr.base = int.from_bytes(raw[4:8], "little")
        self.shadow_gdt.rebuild(self.shadow.gdtr.base,
                                self.shadow.gdtr.limit)
        cpu.gdt.load(self.shadow_gdt.base, self.shadow_gdt.limit)
        return True

    def _emulate_ltss(self, cpu: Cpu, insn) -> bool:
        guest_tss = cpu.regs[insn.raw[1] & 0x7]
        self.shadow.tss_base = guest_tss
        # The guest's "ring 0" stack is the real ring-1 stack.
        memory = self.machine.memory
        guest_sp0 = memory.read_u32(guest_tss)
        guest_ss0 = memory.read_u32(guest_tss + 4)
        firmware.write_tss(
            memory,
            {1: (guest_sp0, compress_selector(guest_ss0)),
             2: (memory.read_u32(guest_tss + 8),
                 memory.read_u32(guest_tss + 12))},
            tss_base=cpu.tss_base)
        return True

    def _emulate_movcr(self, cpu: Cpu, insn) -> bool:
        crn = (insn.raw[1] >> 4) & 0x3
        value = cpu.regs[insn.raw[1] & 0x7]
        if crn == 0:
            self.shadow.cr0 = value
            cpu.crs[0] = value  # PG bit takes real effect
        elif crn == 3:
            self.shadow.cr3 = value
            cpu.mmu.set_cr3(value)
            cpu.crs[3] = value
        else:
            cpu.crs[crn] = value
        return True

    def _emulate_movrc(self, cpu: Cpu, insn) -> bool:
        crn = (insn.raw[1] >> 4) & 0x3
        reg = insn.raw[1] & 0x7
        if crn == 0:
            cpu.regs[reg] = self.shadow.cr0
        elif crn == 3:
            cpu.regs[reg] = self.shadow.cr3
        else:
            cpu.regs[reg] = cpu.crs[crn]
        return True

    def _emulate_movseg(self, cpu: Cpu, insn) -> bool:
        segn = (insn.raw[1] >> 4) & 0x3
        reg = insn.raw[1] & 0x7
        sel = cpu.regs[reg] & 0xFFFF
        index = selector_index(sel)
        if index * DESCRIPTOR_SIZE >= self.shadow_gdt.limit:
            return False
        descriptor = self.shadow_gdt.read(index)
        if not descriptor.present:
            return False
        cpu.force_segment(segn, compress_selector(sel), descriptor)
        return True

    def _emulate_inb(self, cpu: Cpu, insn) -> bool:
        return self._emulate_io(cpu, insn, size=1, write=False)

    def _emulate_inw(self, cpu: Cpu, insn) -> bool:
        return self._emulate_io(cpu, insn, size=4, write=False)

    def _emulate_outb(self, cpu: Cpu, insn) -> bool:
        return self._emulate_io(cpu, insn, size=1, write=True)

    def _emulate_outw(self, cpu: Cpu, insn) -> bool:
        return self._emulate_io(cpu, insn, size=4, write=True)

    def _emulate_io(self, cpu: Cpu, insn, size: int, write: bool) -> bool:
        ra = (insn.raw[1] >> 4) & 0x7
        rb = insn.raw[1] & 0x7
        port = cpu.regs[rb] & 0xFFFF
        # The bus consults the intercept: PIC/PIT/UART are virtualised,
        # anything else is the guest touching a port outside its bitmap.
        if write:
            self.machine.bus.port_write(port, cpu.regs[ra], size)
        else:
            cpu.regs[ra] = self.machine.bus.port_read(port, size)
        return True

    # ------------------------------------------------------------------
    # Shadow IDT
    # ------------------------------------------------------------------

    def _rebuild_shadow_idt(self) -> None:
        """Mirror the guest's virtual IDT into the real (monitor) IDT.

        Gate target selectors keep their indices (the shadow GDT mirrors
        indices) so handlers execute at ring 1 automatically.
        """
        cpu = self.machine.cpu
        memory = self.machine.memory
        shadow_base = self.monitor_base + OFF_SHADOW_IDT
        entries = min(self.shadow.idtr.limit // IDT_ENTRY_SIZE,
                      firmware.IDT_ENTRIES)
        for vector in range(entries):
            raw = memory.read(self.shadow.idtr.base
                              + vector * IDT_ENTRY_SIZE, IDT_ENTRY_SIZE)
            gate = IdtGate.unpack(raw)
            if gate.present:
                # Gate DPLs are ring-compressed like descriptor DPLs:
                # a DPL-0 gate must stay invocable by the ring-1 guest
                # kernel (its own INT instructions), while DPL-3 gates
                # stay open to applications.
                gate = IdtGate(offset=gate.offset,
                               selector=compress_selector(gate.selector),
                               present=True, dpl=max(gate.dpl, 1),
                               gate_type=gate.gate_type)
            memory.write(shadow_base + vector * IDT_ENTRY_SIZE, gate.pack())
        cpu.idtr_base = shadow_base
        cpu.idtr_limit = entries * IDT_ENTRY_SIZE

    # ------------------------------------------------------------------
    # Exception reflection
    # ------------------------------------------------------------------

    def _reflect_exception(self, cpu: Cpu, vector: int, error: int) -> bool:
        """Deliver a guest-caused exception through the guest's IDT.

        Returning False lets the CPU deliver through the (shadow) IDT
        with full double-fault semantics.  If the guest has no usable
        IDT at all, the guest is dead — but the monitor (and therefore
        the debugger) lives on, which is experiment E4.
        """
        self.stats.exceptions_reflected += 1
        self._charge_trap()
        self.trace.record(cpu.cycle_count, KIND_EXCEPTION,
                          f"vector={vector} error={error:#x}", cpu.pc)
        if self.shadow.idtr.limit == 0:
            self._guest_died(f"unhandled exception {vector} before LIDT")
            return True
        try:
            gate = cpu.read_idt_gate(vector)
            if not gate.present:
                self._guest_died(f"no handler for exception {vector}")
                return True
        except CpuFault:
            self._guest_died(f"unreadable IDT for exception {vector}")
            return True
        return False  # let hardware-style delivery proceed

    def _guest_died(self, reason: str) -> None:
        self.guest_dead = True
        self.guest_dead_reason = reason
        if self.record_taps:
            self.record_taps("death", {"reason": reason})
        self.trace.record(self.machine.cpu.cycle_count, KIND_DEATH,
                          reason, self.machine.cpu.pc)
        self.machine.cpu.halted = True
        self.debug_stop(SIGSEGV)

    # ------------------------------------------------------------------
    # External interrupts
    # ------------------------------------------------------------------

    def _on_interrupt(self, cpu: Cpu, vector: int) -> bool:
        self.stats.interrupts_fielded += 1
        self.machine.budget.charge(self.cost.world_switch_cycles,
                                   CAT_WORLD_SWITCH)
        line = self._line_for_vector(vector)
        self.trace.record(cpu.cycle_count, KIND_INTERRUPT,
                          f"irq={line} vector={vector}", cpu.pc)
        # The monitor completes the real-PIC handshake itself.
        self._real_eoi(line)
        if line == IRQ_COM1:
            self.service_debugger()
            return True
        # A guest-owned device: latch into the virtual PIC and reflect
        # when the guest's virtual IF allows.
        self.shadow.virtual_pic.raise_irq(line)
        if not self.stopped:
            self._reflect_pending_interrupt()
        # HLT semantics: the guest wakes only when an interrupt is
        # actually *delivered* to it; a latched-but-masked interrupt
        # leaves it parked (reflection clears shadow.halted).
        if self.shadow.halted:
            cpu.halted = True
        return True

    @staticmethod
    def _line_for_vector(vector: int) -> int:
        if 32 <= vector < 40:
            return vector - 32
        if 40 <= vector < 48:
            return vector - 40 + 8
        return vector & 0xF

    def _real_eoi(self, line: int) -> None:
        bus = self.machine.bus
        if line >= 8:
            bus.raw_port_write(0xA0, 0x20, 1)
        bus.raw_port_write(0x20, 0x20, 1)

    def _reflect_pending_interrupt(self) -> None:
        if self.guest_dead or self.stopped:
            return
        vector = self.shadow.pending_virtual_vector()
        if vector is None:
            return
        cpu = self.machine.cpu
        if self.shadow.idtr.limit == 0:
            return  # guest not ready for interrupts yet
        try:
            gate = cpu.read_idt_gate(vector)
        except CpuFault:
            self._guest_died(f"bad IDT reflecting vector {vector}")
            return
        if not gate.present:
            return  # guest has no handler: leave it pending
        self.shadow.virtual_pic.acknowledge()
        self.shadow.halted = False
        cpu.halted = False
        self.stats.interrupts_reflected += 1
        self.trace.record(cpu.cycle_count, KIND_REFLECT,
                          f"vector={vector}", cpu.pc)
        self.machine.budget.charge(
            self.cost.pic_emulation_cycles
            + self.cost.interrupt_reflect_cycles, CAT_INTERRUPT)
        # Interrupt-gate semantics on the *virtual* IF.
        self.shadow.vif_before_reflect = True
        self.shadow.vif = False
        try:
            cpu.deliver(vector)
        except CpuFault:
            self._guest_died(f"fault delivering vector {vector}")
        except TripleFault:
            self._guest_died(f"triple fault delivering vector {vector}")

    def _after_virtual_eoi(self) -> None:
        """More virtual interrupts may be deliverable after an EOI."""
        # Delivery happens between instructions; mark for the step loop.
        if self.shadow.vif:
            self._pending_sti_window = True

    # ------------------------------------------------------------------
    # VMCALL services
    # ------------------------------------------------------------------

    def _on_vmcall(self, cpu: Cpu) -> bool:
        self.stats.vmcalls += 1
        self._charge_trap()
        function = cpu.regs[0]
        self.trace.record(cpu.cycle_count, KIND_VMCALL,
                          f"fn={function} arg={cpu.regs[1]:#x}", cpu.pc)
        if function == VMCALL_PUTC:
            self.console.append(cpu.regs[1] & 0xFF)
            return True
        if function == VMCALL_MAGIC:
            cpu.regs[1] = MONITOR_MAGIC
            return True
        if function == VMCALL_PANIC:
            self._guest_died(f"guest panic code {cpu.regs[1]:#x}")
            return True
        if function == VMCALL_SET_TASK_TABLE:
            self.task_table_addr = cpu.regs[1]
            return True
        return False  # unknown hypercall: #GP-like reflection

    # ------------------------------------------------------------------
    # Debugger service
    # ------------------------------------------------------------------

    def _uart_send(self, data: bytes) -> None:
        bus = self.machine.bus
        for byte in data:
            bus.raw_port_write(PORT_BASE_COM1 + REG_DATA, byte, 1)
        self.stats.uart_bytes_out += len(data)

    def service_debugger(self) -> None:
        """Drain debugger bytes from the UART into the stub."""
        bus = self.machine.bus
        received = bytearray()
        while bus.raw_port_read(PORT_BASE_COM1 + REG_LSR, 1) \
                & LSR_DATA_READY:
            received.append(bus.raw_port_read(PORT_BASE_COM1 + REG_DATA, 1))
        if received:
            self.stats.uart_bytes_in += len(received)
            was_running = self.stub.running
            self.stub.feed(bytes(received))
            if was_running and not self.stub.running:
                # ^C from the debugger interrupted the guest.
                self.stopped = True
        if self.record_taps:
            self.record_taps("svc", {"drained": len(received)})

    def debug_stop(self, signal: int) -> None:
        self.stopped = True
        self.stepping = False
        self.machine.cpu.flags &= ~FLAG_TF
        self.stats.debug_stops += 1
        self.trace.record(self.machine.cpu.cycle_count, KIND_DEBUG,
                          f"stop signal={signal}", self.machine.cpu.pc)
        if self.record_taps:
            self.record_taps("stop", {"signal": signal,
                                      "pc": self.machine.cpu.pc})
        self.stub.report_stop(signal)

    # ------------------------------------------------------------------
    # Fault triggers (repro.faults campaign hooks)
    # ------------------------------------------------------------------

    def inject_wild_write(self, addr: int, data: bytes) -> bool:
        """Simulate a rampaging guest writing through a stray pointer.

        Bytes below the monitor region land in guest memory like any
        guest store would.  A write reaching ``monitor_base`` is the
        case the paper's protection mechanism exists for: the monitor
        refuses the bytes and declares the guest dead instead of
        letting its own code/data be corrupted.  Returns True when the
        write stayed entirely within guest memory.
        """
        if self.record_taps:
            self.record_taps("wild-write", {"addr": addr,
                                            "data": data.hex()})
        memory = self.machine.memory
        self.stats.wild_writes_injected += 1
        end = addr + len(data)
        landed = max(0, min(end, self.monitor_base) - addr)
        if landed:
            memory.write(addr, data[:landed])
        if end > self.monitor_base:
            self._guest_died(
                f"wild write into monitor region at {addr:#x}")
            return False
        return True

    def inject_spurious_interrupt(self, line: int) -> None:
        """Raise a hardware interrupt the guest never asked for."""
        if self.record_taps:
            self.record_taps("spurious-irq", {"line": line})
        self.stats.spurious_interrupts_injected += 1
        self.machine.pic.raise_irq(line)

    def monitor_region_hash(self) -> str:
        """sha256 over the protected monitor region.

        The campaign invariant: this hash is identical before and
        after any fault schedule — nothing the guest or the injected
        faults do may touch the monitor's half of memory.
        """
        memory = self.machine.memory
        blob = memory.read(self.monitor_base,
                           memory.size - self.monitor_base)
        return hashlib.sha256(blob).hexdigest()

    # ------------------------------------------------------------------
    # Monitor commands (GDB "monitor ..." / qRcmd)
    # ------------------------------------------------------------------

    def monitor_command(self, text: str) -> str:
        """Service a host-side ``monitor <cmd>`` request."""
        parts = text.split()
        command = parts[0] if parts else "help"
        if command == "stats":
            stats = self.stats
            traps = ", ".join(f"{k}={v}" for k, v in
                              sorted(stats.traps_by_mnemonic.items()))
            cpu = self.machine.cpu
            decode = cpu.decode_cache_stats()
            blocks = cpu.block_cache_stats()
            tlb = cpu.mmu.tlb.stats()
            return (f"traps emulated: {stats.traps_emulated} "
                    f"({traps or 'none'})\n"
                    f"interrupts fielded/reflected: "
                    f"{stats.interrupts_fielded}/"
                    f"{stats.interrupts_reflected}\n"
                    f"exceptions reflected: {stats.exceptions_reflected}\n"
                    f"vmcalls: {stats.vmcalls}, debug stops: "
                    f"{stats.debug_stops}\n"
                    f"decode cache: hits={decode['hits']} "
                    f"misses={decode['misses']} "
                    f"hit-rate={decode['hit_rate']:.3f} "
                    f"invalidations={decode['invalidations']}\n"
                    f"block cache: blocks={blocks['entries']} "
                    f"hits={blocks['hits']} "
                    f"guard-fails={blocks['guard_failures']} "
                    f"hit-rate={blocks['hit_rate']:.3f}\n"
                    f"tlb: hits={tlb['hits']} misses={tlb['misses']} "
                    f"hit-rate={tlb['hit_rate']:.3f}\n"
                    f"guest dead: {self.guest_dead} "
                    f"{self.guest_dead_reason}")
        if command == "console":
            return self.console.decode("latin-1", errors="replace") \
                or "(console empty)"
        if command == "trace":
            if len(parts) > 1 and parts[1] in ("start", "stop",
                                               "dump", "status"):
                return self._trace_command(parts[1:])
            count = int(parts[1]) if len(parts) > 1 else 24
            return self.trace.format_tail(count)
        if command == "shadow":
            shadow = self.shadow
            return (f"vif={shadow.vif} halted={shadow.halted}\n"
                    f"idtr={shadow.idtr.base:#x}/{shadow.idtr.limit:#x} "
                    f"gdtr={shadow.gdtr.base:#x}/{shadow.gdtr.limit:#x}\n"
                    f"cr0={shadow.cr0:#x} cr3={shadow.cr3:#x}\n"
                    f"virtual pic: {shadow.virtual_pic.state()}")
        if command == "hang":
            return self._hang_report()
        if command == "record":
            if self.recorder is None:
                return "recording: off (no flight recorder attached)"
            if len(parts) > 1 and parts[1] == "checkpoint":
                digest = self.recorder.checkpoint()
                return f"checkpoint taken: digest {digest[:16]}..."
            stats = self.recorder.stats()
            return (f"recording: on\n"
                    f"frames: {stats['frames']} "
                    f"(~{stats['journal_bytes']} journal bytes)\n"
                    f"inputs: {stats['input_frames']}, ops: "
                    f"{stats['op_frames']}, cross-checks: "
                    f"{stats['xc_frames']}\n"
                    f"checkpoints: {stats['checkpoints']} "
                    f"(every {stats['checkpoint_every']} run slices)\n"
                    f"uart bytes recorded: h2t={stats['uart_rx_bytes']} "
                    f"t2h={stats['t2h_bytes']}")
        if command == "replay":
            status = self.replay_status
            if status is None:
                return "replay: off (not driven by a replayer)"
            lines = [f"replay: frame {status['frame']}/"
                     f"{status['total']} ({status['mode']})"]
            divergence = status.get("divergence")
            if divergence:
                lines.append(f"DIVERGED at frame "
                             f"{divergence['frame_index']}: "
                             f"{divergence['message']}")
            else:
                lines.append("no divergence so far")
            return "\n".join(lines)
        if command == "watchdog":
            if self.watchdog is None:
                return (f"level: {self.degradation_level}\n"
                        "(no watchdog attached)")
            return self.watchdog.report()
        if command == "fleet":
            # Populated by a fleet worker (repro.fleet.worker); a
            # standalone monitor has no fleet context.
            info = getattr(self, "fleet_info", None)
            if not info:
                return "fleet: not a fleet worker"
            return "\n".join(f"{key}: {info[key]}"
                             for key in sorted(info))
        if command == "jit":
            return self._jit_command(parts[1:])
        if command == "tv":
            return self._tv_command(parts[1:])
        if command == "net":
            return self._net_command(parts[1:])
        if command == "help":
            return ("monitor commands: stats console trace [n] shadow "
                    "hang watchdog fleet record [checkpoint] replay "
                    "jit tv net help\n"
                    "structured trace: trace start [stride] | stop | "
                    "dump [n] | status\n"
                    "superblocks: jit [on|off|flush]\n"
                    "translation validation: tv [on|off]\n"
                    "network: net [tcp|rx|all]")
        return f"unknown monitor command {command!r} (try 'help')"

    def _net_command(self, parts) -> str:
        """``monitor net [tcp|rx|all]``: the process-wide ``net.*``
        metrics snapshot (see docs/PROTOCOL.md and INTERNALS.md §15).

        The TCP stack and the streaming workload publish their
        counters into the shared registry (``repro.obs.metrics``);
        this command is the debugger-side window onto them —
        retransmits, RTO expirations, dup-acks, the cwnd histogram,
        malformed-frame drops.
        """
        from repro.obs.metrics import global_registry
        scope = parts[0] if parts else "all"
        prefixes = {"tcp": ("net.tcp.",), "rx": ("net.rx.",),
                    "all": ("net.",)}.get(scope)
        if prefixes is None:
            return f"unknown net subcommand {scope!r} (try 'help')"
        registry = global_registry()
        lines = []
        for name in registry.names():
            if not name.startswith(prefixes):
                continue
            snap = registry.get(name).snapshot()
            if snap["type"] == "histogram":
                buckets = " ".join(
                    f"<={bound}:{count}" for bound, count
                    in snap["buckets"].items() if count)
                lines.append(f"{name}: count={snap['count']} "
                             f"min={snap['min']} max={snap['max']} "
                             f"{buckets or '(empty)'}")
            else:
                lines.append(f"{name}: {snap['value']}")
        return "\n".join(lines) if lines else \
            "net: no net.* metrics recorded yet"

    def _jit_command(self, parts) -> str:
        """``monitor jit [on|off|flush]``: superblock translator control
        and status (see docs/PROTOCOL.md and docs/INTERNALS.md §12)."""
        cpu = self.machine.cpu
        engine = cpu._sb_engine
        if engine is None:
            return ("superblock translation unavailable "
                    "(CPU built with translate=False)")
        if parts:
            action = parts[0]
            if action == "on":
                engine.enabled = True
                return "superblock translation enabled"
            if action == "off":
                engine.enabled = False
                engine.invalidate()
                return "superblock translation disabled (blocks flushed)"
            if action == "flush":
                engine.invalidate()
                return "superblock cache flushed"
            return f"unknown jit subcommand {action!r} (try 'help')"
        stats = engine.stats()
        return (f"superblock translation: "
                f"{'on' if stats['enabled'] else 'off'}\n"
                f"blocks: {stats['entries']} live, "
                f"{stats['blocks_compiled']} compiled, "
                f"{stats['invalidations']} invalidations\n"
                f"dispatch: {stats['hits']} block entries, "
                f"{stats['guard_failures']} guard failures\n"
                f"translated: {stats['insns_translated']} instructions "
                f"(hit-rate {stats['hit_rate']:.3f})")

    def _tv_command(self, parts) -> str:
        """``monitor tv [on|off]``: verify-on-compile translation
        validation control and status (see docs/INTERNALS.md §13)."""
        cpu = self.machine.cpu
        engine = cpu._sb_engine
        if engine is None:
            return ("translation validation unavailable "
                    "(CPU built with translate=False)")
        if parts:
            action = parts[0]
            if action == "on":
                engine.verify = True
                # Already-installed blocks were compiled unverified;
                # flush so every live block has been through the prover.
                engine.invalidate()
                return ("translation validation enabled "
                        "(block cache flushed)")
            if action == "off":
                engine.verify = False
                return "translation validation disabled"
            return f"unknown tv subcommand {action!r} (try 'help')"
        stats = engine.tv_stats()
        lines = [f"translation validation: "
                 f"{'on' if stats['enabled'] else 'off'}\n"
                 f"blocks validated: {stats['validated']}, "
                 f"rejected: {stats['rejected']}"]
        for message in stats["failures"][:8]:
            lines.append(f"  {message}")
        return "\n".join(lines)

    def _trace_command(self, parts) -> str:
        """``monitor trace start|stop|dump|status``: live structured
        tracing of this debug session over RSP."""
        action = parts[0]
        if action == "start":
            if self.obs_tracer is not None:
                return "structured trace already running"
            stride = int(parts[1]) if len(parts) > 1 else 4096
            tracer = Tracer()
            tracer.attach(monitor=self, recorder=self.recorder)
            self.attach_profiler(GuestProfiler(stride=stride))
            self.obs_tracer = tracer
            return (f"structured trace started "
                    f"(profiler stride {stride} instructions)")
        tracer = self.obs_tracer
        if tracer is None:
            return "structured trace not running ('monitor trace start')"
        if action == "dump":
            count = int(parts[1]) if len(parts) > 1 else 24
            events = tracer.bus.tail(count)
            if not events:
                return "(structured trace empty)"
            return "\n".join(event.format() for event in events)
        if action == "status":
            stats = tracer.bus.stats()
            profiler = self.profiler
            lines = [f"structured trace: on "
                     f"({stats['retained']} events retained, "
                     f"{stats['recorded']} recorded, "
                     f"{stats['dropped']} dropped)"]
            counts = tracer.bus.counts_by_category()
            if counts:
                lines.append("by category: " + ", ".join(
                    f"{cat}={n}" for cat, n in counts.items()))
            if profiler is not None:
                lines.append(f"profiler: {profiler.total_samples} "
                             f"samples at stride {profiler.stride}")
            return "\n".join(lines)
        # action == "stop"
        recorded = tracer.bus.total_recorded
        samples = self.profiler.total_samples \
            if self.profiler is not None else 0
        tracer.detach()
        self.detach_profiler()
        self.obs_tracer = None
        return (f"structured trace stopped "
                f"({recorded} events, {samples} profile samples)")

    _hang_last_instret = 0

    def _hang_report(self) -> str:
        """Hang diagnosis: progress since the last check + a verdict.

        The conventional embedded stub cannot even be *asked* this
        question once the guest wedges; asking it of the monitor is
        always safe.
        """
        cpu = self.machine.cpu
        progress = cpu.instret - self._hang_last_instret
        self._hang_last_instret = cpu.instret
        if self.guest_dead:
            verdict = f"guest is dead: {self.guest_dead_reason}"
        elif cpu.halted and not self.shadow.vif:
            verdict = ("guest parked in HLT with virtual IF clear — "
                       "it can never wake (dead idle or missed STI)")
        elif cpu.halted:
            verdict = "guest idle in HLT, interrupts enabled (healthy)"
        elif not self.shadow.vif and progress > 0:
            verdict = ("guest executing with virtual IF clear — "
                       "a long critical section or an interrupt-off spin")
        elif progress == 0 and not self.stopped:
            verdict = "no progress since last check — possible hard spin"
        else:
            verdict = "guest making progress"
        return (f"instructions retired: {cpu.instret} "
                f"(+{progress} since last check)\n"
                f"pc={cpu.pc:#010x} halted={cpu.halted} "
                f"vif={self.shadow.vif}\n{verdict}")

    def resume_guest(self, step: bool) -> None:
        if self.degradation_level != DEGRADE_FULL:
            # Degraded service (watchdog verdict): refuse to hand the
            # CPU back.  The stub marked itself running before calling
            # us, so the stop below reaches the debugger as an
            # immediate stop reply — queries keep working, c/s bounce.
            self.stats.resumes_refused += 1
            self.debug_stop(SIGTRAP)
            return
        self.stopped = False
        self.stepping = step
        # RF semantics: stepping off/over a breakpointed instruction.
        self.machine.cpu.resume_flag = True
        if step:
            self.machine.cpu.flags |= FLAG_TF

    # ------------------------------------------------------------------
    # Run loop
    # ------------------------------------------------------------------

    def run(self, max_instructions: int = 1_000_000,
            until=None) -> int:
        """Run the guest under the monitor until it stops or dies.

        ``until`` is an optional zero-argument predicate checked between
        instructions (e.g. "guest reached its done state").
        """
        executed = 0
        cpu = self.machine.cpu
        # Profiler threshold, hoisted so the steady-state cost of
        # sampling support is ONE integer compare per instruction; with
        # no profiler attached the threshold is +inf and the compare can
        # never fire (see repro.obs.profiler).
        profiler = self.profiler
        next_sample = profiler.next_sample if profiler is not None \
            else float("inf")
        # Superblock pacing: before each step, cap the translated-block
        # budget at whichever boundary comes first — the run cap, the
        # next profiler stride, or the next device-event due time — so
        # every per-instruction observable (samples, timer IRQs, replay
        # frames) lands on exactly the same instruction as under the
        # pure interpreter.  ``until`` predicates inspect state between
        # single instructions, so translation is disabled for them.
        engine = cpu._sb_engine
        translate = engine is not None and until is None
        inf = float("inf")
        if self.record_taps:
            self.record_taps("run-begin", {"max": max_instructions,
                                           "pre_stopped": self.stopped})
        try:
            while executed < max_instructions:
                if self.stopped or self.guest_dead:
                    break
                if until is not None and until():
                    break
                if self._pending_sti_window:
                    self._pending_sti_window = False
                    self._reflect_pending_interrupt()
                self.machine.sync_events()
                if cpu.halted and not self.machine.pic.has_pending():
                    next_time = self.machine.queue.peek_time()
                    if next_time is None:
                        break
                    cpu.cycle_count = next_time
                    continue
                if translate:
                    limit = cpu.instret + (max_instructions - executed)
                    if next_sample < limit:
                        limit = next_sample
                    cpu.block_instret_limit = limit
                    next_time = self.machine.queue.peek_time()
                    cpu.block_cycle_limit = \
                        inf if next_time is None else next_time
                try:
                    cpu.step()
                except TripleFault as fault:
                    executed += cpu.block_extra_steps
                    cpu.block_extra_steps = 0
                    self._guest_died(str(fault))
                    break
                executed += 1 + cpu.block_extra_steps
                cpu.block_extra_steps = 0
                if cpu.instret >= next_sample:
                    next_sample = profiler.sample(cpu)
                    if engine is not None:
                        engine.note_sample(cpu)
        finally:
            cpu.block_instret_limit = 0
            cpu.block_cycle_limit = 0
        if self.record_taps:
            self.record_taps("run-end", {"max": max_instructions,
                                         "executed": executed})
        return executed


#: Short alias used throughout the docs and tests.
Monitor = LightweightVmm
