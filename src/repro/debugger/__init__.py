"""Host-side remote debugger (CLI + symbol tables)."""

from repro.debugger.cli import Debugger
from repro.debugger.symbols import SymbolTable

__all__ = ["Debugger", "SymbolTable"]
