"""The host-side software remote debugger (Fig. 2.1, left box).

A small GDB-flavoured command-line front end over the RSP client:

    break <addr|symbol>        set a breakpoint
    delete <addr|symbol>       clear a breakpoint
    watch <addr|symbol> [len]  write watchpoint
    continue / c               run until the next stop
    step / s                   single-step one instruction
    interrupt                  ^C the running guest
    regs                       dump registers
    set <reg> <value>          write a register (r0..r7, pc, flags)
    x <addr|symbol> [len]      hex-dump guest memory
    write <addr> <hexbytes>    patch guest memory
    disas [addr] [count]       disassemble guest code
    symbols                    list known symbols
    console                    show the guest's monitor console
    monitor <cmd>              monitor commands (stats/console/trace/shadow)
    checkpoint [name]          snapshot the stopped guest
    restore [name]             rewind to a snapshot
    threads                    list guest tasks (needs a task table)
    thread <id|0>              select the thread 'regs' shows
    quit                       leave

Usable interactively (``repro-debugger``) or scripted
(:meth:`Debugger.execute` returns the textual output), which is how the
test suite drives it.
"""

from __future__ import annotations

import sys
from typing import Callable, List, Optional

from repro.asm.disasm import disassemble
from repro.core.session import DebugSession
from repro.debugger.symbols import SymbolTable
from repro.errors import ProtocolError, ReproError

REG_NAMES = [f"r{i}" for i in range(8)] + ["pc", "flags"]


class Debugger:
    """Command interpreter bound to one debug session."""

    def __init__(self, session: DebugSession,
                 symbols: Optional[SymbolTable] = None) -> None:
        self.session = session
        self.symbols = symbols or SymbolTable()
        self.done = False

    # ------------------------------------------------------------------

    def execute(self, line: str) -> str:
        """Run one command line; returns its output text."""
        parts = line.split()
        if not parts:
            return ""
        command, args = parts[0].lower(), parts[1:]
        handler = self._handlers().get(command)
        if handler is None:
            return f"unknown command {command!r} (try 'help')"
        try:
            return handler(args)
        except ProtocolError as exc:
            return f"protocol error: {exc}"
        except ReproError as exc:
            return f"error: {exc}"

    def _handlers(self) -> dict:
        return {
            "break": self._cmd_break, "b": self._cmd_break,
            "delete": self._cmd_delete,
            "watch": self._cmd_watch,
            "continue": self._cmd_continue, "c": self._cmd_continue,
            "step": self._cmd_step, "s": self._cmd_step,
            "interrupt": self._cmd_interrupt,
            "regs": self._cmd_regs,
            "set": self._cmd_set,
            "x": self._cmd_examine,
            "write": self._cmd_write,
            "disas": self._cmd_disas,
            "symbols": self._cmd_symbols,
            "console": self._cmd_console,
            "monitor": self._cmd_monitor,
            "checkpoint": self._cmd_checkpoint,
            "restore": self._cmd_restore,
            "threads": self._cmd_threads,
            "thread": self._cmd_thread,
            "help": self._cmd_help,
            "quit": self._cmd_quit, "q": self._cmd_quit,
        }

    # -- address helpers ------------------------------------------------------

    def _addr(self, text: str) -> int:
        address = self.symbols.resolve(text)
        if address is None:
            raise ReproError(f"cannot resolve {text!r}")
        return address

    # -- commands ------------------------------------------------------------

    def _cmd_break(self, args: List[str]) -> str:
        if len(args) != 1:
            return "usage: break <addr|symbol>"
        address = self._addr(args[0])
        self.session.client.set_breakpoint(address)
        return f"breakpoint at {self.symbols.format_address(address)}"

    def _cmd_delete(self, args: List[str]) -> str:
        if len(args) != 1:
            return "usage: delete <addr|symbol>"
        address = self._addr(args[0])
        self.session.client.clear_breakpoint(address)
        return f"deleted breakpoint at {address:#x}"

    def _cmd_watch(self, args: List[str]) -> str:
        if not 1 <= len(args) <= 2:
            return "usage: watch <addr|symbol> [length]"
        address = self._addr(args[0])
        length = int(args[1], 0) if len(args) == 2 else 4
        self.session.client.set_watchpoint(address, length)
        return f"watchpoint at {address:#x} ({length} bytes)"

    def _stop_text(self, reply: bytes) -> str:
        signal = int(reply[1:3], 16) if len(reply) >= 3 else 0
        pc = self.session.client.read_registers()[8]
        names = {5: "SIGTRAP", 2: "SIGINT", 11: "SIGSEGV", 4: "SIGILL"}
        return (f"stopped ({names.get(signal, signal)}) at "
                f"{self.symbols.format_address(pc)}")

    def _cmd_continue(self, args: List[str]) -> str:
        reply = self.session.client.cont()
        return self._stop_text(reply)

    def _cmd_step(self, args: List[str]) -> str:
        reply = self.session.client.step()
        return self._stop_text(reply)

    def _cmd_interrupt(self, args: List[str]) -> str:
        self.session.client.send_interrupt()
        reply = self.session.client.wait_for_stop()
        return self._stop_text(reply)

    def _cmd_regs(self, args: List[str]) -> str:
        values = self.session.client.read_registers()
        lines = []
        for index in range(0, 8, 4):
            lines.append("  ".join(
                f"R{i}={values[i]:08x}" for i in range(index, index + 4)))
        lines.append(f"PC={values[8]:08x}  FLAGS={values[9]:08x}   "
                     f"({self.symbols.format_address(values[8])})")
        return "\n".join(lines)

    def _cmd_set(self, args: List[str]) -> str:
        if len(args) != 2:
            return "usage: set <reg> <value>"
        name = args[0].lower()
        if name not in REG_NAMES:
            return f"unknown register {args[0]!r}"
        value = int(args[1], 0)
        self.session.client.write_register(REG_NAMES.index(name), value)
        return f"{name} = {value:#x}"

    def _cmd_examine(self, args: List[str]) -> str:
        if not 1 <= len(args) <= 2:
            return "usage: x <addr|symbol> [length]"
        address = self._addr(args[0])
        length = int(args[1], 0) if len(args) == 2 else 64
        data = self.session.client.read_memory(address, length)
        lines = []
        for offset in range(0, len(data), 16):
            chunk = data[offset:offset + 16]
            hex_part = " ".join(f"{b:02x}" for b in chunk)
            ascii_part = "".join(
                chr(b) if 32 <= b < 127 else "." for b in chunk)
            lines.append(f"{address + offset:08x}:  {hex_part:<47}  "
                         f"{ascii_part}")
        return "\n".join(lines)

    def _cmd_write(self, args: List[str]) -> str:
        if len(args) != 2:
            return "usage: write <addr> <hexbytes>"
        address = self._addr(args[0])
        data = bytes.fromhex(args[1])
        self.session.client.write_memory(address, data)
        return f"wrote {len(data)} bytes at {address:#x}"

    def _cmd_disas(self, args: List[str]) -> str:
        if args:
            address = self._addr(args[0])
        else:
            address = self.session.client.read_registers()[8]
        count = int(args[1], 0) if len(args) > 1 else 8
        code = self.session.client.read_memory(address, count * 6)
        lines = []
        for insn in disassemble(code, origin=address, count=count,
                                strict=False):
            lines.append(f"{self.symbols.format_address(insn.address)}"
                         f":  {insn.text}")
        if not lines:
            lines.append("<no decodable instructions here>")
        return "\n".join(lines)

    def _cmd_symbols(self, args: List[str]) -> str:
        rows = sorted(self.symbols.names())
        if not rows:
            return "no symbols loaded"
        return "\n".join(
            f"{self.symbols.resolve(name):08x}  {name}" for name in rows)

    def _cmd_monitor(self, args: List[str]) -> str:
        text = " ".join(args) if args else "help"
        return self.session.client.monitor_command(text).rstrip("\n")

    def _cmd_threads(self, args: List[str]) -> str:
        client = self.session.client
        ids = client.thread_ids()
        if not ids:
            return "target reports no threads"
        current = client.current_thread()
        lines = []
        for thread_id in ids:
            marker = "*" if thread_id == current else " "
            info = client.thread_extra_info(thread_id)
            regs = None
            client.select_thread(thread_id)
            try:
                regs = client.read_registers()
            finally:
                client.select_thread(0)
            where = self.symbols.format_address(regs[8]) if regs else "?"
            lines.append(f"{marker} {thread_id:2d}  {info:<24s} {where}")
        return "\n".join(lines)

    def _cmd_thread(self, args: List[str]) -> str:
        if len(args) != 1:
            return "usage: thread <id|0>"
        thread_id = int(args[0], 0)
        self.session.client.select_thread(thread_id)
        if thread_id == 0:
            return "register view: current thread"
        return f"register view: thread {thread_id}"

    def _cmd_checkpoint(self, args: List[str]) -> str:
        name = args[0] if args else "default"
        self.session.checkpoint(name)
        return f"checkpoint {name!r} saved " \
               f"({len(self.session.checkpoints)} total)"

    def _cmd_restore(self, args: List[str]) -> str:
        name = args[0] if args else "default"
        self.session.restore(name)
        pc = self.session.client.read_registers()[8]
        return (f"restored {name!r}; guest back at "
                f"{self.symbols.format_address(pc)}")

    def _cmd_console(self, args: List[str]) -> str:
        return self.session.console_output.decode("latin-1",
                                                  errors="replace")

    def _cmd_help(self, args: List[str]) -> str:
        # The command table lives in the module docstring's third block.
        return __doc__.split("\n\n")[2]

    def _cmd_quit(self, args: List[str]) -> str:
        self.done = True
        return "bye"

    # ------------------------------------------------------------------

    def repl(self, input_fn: Callable[[str], str] = input,
             output_fn: Callable[[str], None] = print) -> None:
        """Interactive loop."""
        while not self.done:
            try:
                line = input_fn("(repro-dbg) ")
            except EOFError:
                break
            text = self.execute(line)
            if text:
                output_fn(text)


def main() -> int:
    """Entry point: boot the demo kernel under the LVMM and debug it."""
    from repro.guest.asmkernel import KernelConfig, build_kernel

    session = DebugSession(monitor="lvmm")
    kernel = build_kernel(KernelConfig(ticks_to_run=50))
    session.load_and_boot(kernel)
    session.attach()
    symbols = SymbolTable()
    symbols.add_program(kernel)
    print("attached to HiTactix mini-kernel under the lightweight VMM")
    print("type 'help' for commands")
    Debugger(session, symbols).repl()
    return 0


if __name__ == "__main__":
    sys.exit(main())
