"""TCP bridge: point a real GDB at the simulated target.

``repro-gdbserver`` listens on a TCP port and splices the socket onto
the target's serial link, driving the machine in between — exactly what
a serial-to-TCP pod does on a hardware bench.  Any RSP client works;
with a real GDB::

    $ repro-gdbserver --port 3333 --guest threads &
    $ gdb -ex "set architecture auto" \
          -ex "target remote :3333"

(The stub serves ``qXfer:features:read`` so GDB learns the register
layout from the target itself.)

The server is single-client and synchronous by design: the simulated
machine only executes inside :meth:`GdbServer.serve_client`'s loop, so
there is no cross-thread state to guard.
"""

from __future__ import annotations

import argparse
import select
import socket
import sys
from typing import Optional

from repro.core.session import DebugSession
from repro.hw.uart import HostSerialPort

RUN_SLICE = 4000


class GdbServer:
    """Serve one debug session over TCP."""

    def __init__(self, session: DebugSession, host: str = "127.0.0.1",
                 port: int = 3333) -> None:
        self.session = session
        self._listener = socket.socket(socket.AF_INET,
                                       socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET,
                                  socket.SO_REUSEADDR, 1)
        self._listener.bind((host, port))
        self._listener.listen(1)
        self.address = self._listener.getsockname()
        self._port = HostSerialPort(session.machine.serial_link)
        self.bytes_in = 0
        self.bytes_out = 0
        #: Set True (e.g. from a test) to stop serving.
        self.shutdown_requested = False

    def close(self) -> None:
        self._listener.close()

    # ------------------------------------------------------------------

    def serve_client(self, poll_seconds: float = 0.005,
                     max_idle_polls: Optional[int] = None) -> None:
        """Accept one client and bridge until it disconnects.

        Any client-side failure — a clean FIN, an RST mid-session, a
        broken pipe on send — ends *this session* and returns to the
        caller's accept loop; it never propagates and takes the server
        (and the simulated machine behind it) down with it.
        """
        connection, _ = self._listener.accept()
        connection.setblocking(False)
        idle = 0
        try:
            while not self.shutdown_requested:
                try:
                    readable, _, _ = select.select([connection], [], [],
                                                   poll_seconds)
                except (ValueError, OSError):
                    break  # socket already torn down under us
                moved = False
                if readable:
                    try:
                        data = connection.recv(4096)
                    except BlockingIOError:
                        data = None
                    except (ConnectionResetError, ConnectionAbortedError,
                            OSError):
                        break  # client died mid-session
                    if data == b"":
                        break  # client hung up
                    if data:
                        self.bytes_in += len(data)
                        self._port.send(data)
                        moved = True

                self._drive_target()

                out = self._port.recv()
                if out:
                    self.bytes_out += len(out)
                    try:
                        connection.sendall(out)
                    except (BrokenPipeError, ConnectionResetError,
                            OSError):
                        break  # client gone before we could reply
                    moved = True

                if moved:
                    idle = 0
                else:
                    idle += 1
                    if max_idle_polls is not None \
                            and idle >= max_idle_polls:
                        break
        finally:
            try:
                connection.close()
            except OSError:
                pass

    def _drive_target(self) -> None:
        """One scheduling quantum for the simulated machine."""
        monitor = self.session.monitor
        monitor.service_debugger()
        if not monitor.stopped and not monitor.guest_dead:
            from repro.errors import TripleFault
            try:
                monitor.run(RUN_SLICE)
            except TripleFault as fault:
                monitor._guest_died(str(fault))


def _build_session(guest: str) -> DebugSession:
    session = DebugSession(monitor="lvmm")
    if guest == "kernel":
        from repro.guest.asmkernel import KernelConfig, build_kernel
        session.load_and_boot(build_kernel(KernelConfig(
            ticks_to_run=10_000)))
    elif guest == "threads":
        from repro.guest.asmthreads import build_threaded_kernel
        session.load_and_boot(build_threaded_kernel(threads=3,
                                                    iterations=10_000))
    elif guest == "io":
        from repro.guest.asmio import build_io_demo
        session.load_and_boot(build_io_demo())
    else:
        raise ValueError(f"unknown guest {guest!r} "
                         "(kernel | threads | io)")
    return session


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=3333)
    parser.add_argument("--guest", default="kernel",
                        choices=("kernel", "threads", "io"))
    args = parser.parse_args(argv)

    session = _build_session(args.guest)
    server = GdbServer(session, args.host, args.port)
    print(f"repro-gdbserver: guest {args.guest!r} under the LVMM, "
          f"listening on {server.address[0]}:{server.address[1]}")
    print("attach with: gdb -ex 'target remote "
          f"{server.address[0]}:{server.address[1]}'")
    try:
        while True:
            server.serve_client()
            print("client disconnected; waiting for the next one")
    except KeyboardInterrupt:
        print("\nbye")
    finally:
        server.close()
    return 0


if __name__ == "__main__":
    sys.exit(main())
