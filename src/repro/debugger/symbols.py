"""Symbol tables for the host debugger.

The assembler records every label; the debugger uses them both ways —
resolving names in user commands and annotating addresses in output.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.asm.assembler import Program


class SymbolTable:
    """Name <-> address mapping merged from one or more programs."""

    def __init__(self) -> None:
        self._by_name: Dict[str, int] = {}
        self._sorted: List[Tuple[int, str]] = []

    def add_program(self, program: Program) -> None:
        for name, address in program.symbols.items():
            self._by_name[name] = address
        self._resort()

    def add(self, name: str, address: int) -> None:
        self._by_name[name] = address
        self._resort()

    def _resort(self) -> None:
        self._sorted = sorted(
            (address, name) for name, address in self._by_name.items())

    def resolve(self, text: str) -> Optional[int]:
        """Resolve a name, hex literal or decimal literal to an address."""
        if text in self._by_name:
            return self._by_name[text]
        try:
            return int(text, 0)
        except ValueError:
            return None

    def nearest(self, address: int) -> Optional[Tuple[str, int]]:
        """(symbol, offset) of the closest symbol at or below address."""
        best: Optional[Tuple[str, int]] = None
        for sym_address, name in self._sorted:
            if sym_address > address:
                break
            best = (name, address - sym_address)
        return best

    def format_address(self, address: int) -> str:
        near = self.nearest(address)
        if near is None:
            return f"{address:#010x}"
        name, offset = near
        if offset == 0:
            return f"{address:#010x} <{name}>"
        return f"{address:#010x} <{name}+{offset:#x}>"

    def names(self) -> Iterable[str]:
        return self._by_name.keys()

    def __len__(self) -> int:
        return len(self._by_name)
