"""Findings and the analysis report.

Every checker emits :class:`Finding` objects; the driver bundles them
with coverage counters into a :class:`Report` that is consumable three
ways: formatted text (the CLI), JSON (``--json`` / CI artifacts, via
:func:`repro.obs.exporters.export_stats_json`), and programmatically
(the monitor's load-time gate inspects :attr:`Report.errors`).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional

#: Finding severities, most severe first.
SEV_ERROR = "error"
SEV_WARNING = "warning"
SEV_INFO = "info"

_SEVERITY_ORDER: Dict[str, int] = {SEV_ERROR: 0, SEV_WARNING: 1, SEV_INFO: 2}


@dataclass(frozen=True)
class Finding:
    """One defect (or observation) located in the analyzed image."""

    check: str          # stable check id, e.g. "AN001"
    severity: str       # SEV_ERROR / SEV_WARNING / SEV_INFO
    address: Optional[int]
    message: str

    def to_dict(self) -> Dict[str, object]:
        return {
            "check": self.check,
            "severity": self.severity,
            "address": self.address,
            "message": self.message,
        }

    def format(self) -> str:
        where = f"{self.address:#010x}" if self.address is not None else (
            " " * 10)
        return f"{where}  {self.severity:<7}  {self.check}  {self.message}"


@dataclass
class Report:
    """The full result of analyzing one guest image."""

    origin: int
    end: int
    entry_ring: int
    monitor_base: int
    findings: List[Finding] = field(default_factory=list)
    #: Coverage / work counters (blocks, edges, instructions, handlers,
    #: driver iterations, checks run ...), collected by repro.obs.metrics.
    stats: Dict[str, int] = field(default_factory=dict)

    # -- severity views --------------------------------------------------

    @property
    def errors(self) -> List[Finding]:
        return [f for f in self.findings if f.severity == SEV_ERROR]

    @property
    def warnings(self) -> List[Finding]:
        return [f for f in self.findings if f.severity == SEV_WARNING]

    def findings_for(self, check: str) -> List[Finding]:
        return [f for f in self.findings if f.check == check]

    @property
    def clean(self) -> bool:
        """True when no error-severity finding survived."""
        return not self.errors

    # -- serialization ---------------------------------------------------

    def sorted_findings(self) -> List[Finding]:
        return sorted(
            self.findings,
            key=lambda f: (_SEVERITY_ORDER.get(f.severity, 9),
                           f.check,
                           f.address if f.address is not None else -1))

    def counts_by_severity(self) -> Dict[str, int]:
        counts = {SEV_ERROR: 0, SEV_WARNING: 0, SEV_INFO: 0}
        for finding in self.findings:
            counts[finding.severity] = counts.get(finding.severity, 0) + 1
        return counts

    def counts_by_check(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for finding in self.findings:
            counts[finding.check] = counts.get(finding.check, 0) + 1
        return counts

    def to_dict(self) -> Dict[str, object]:
        return {
            "image": {
                "origin": self.origin,
                "end": self.end,
                "entry_ring": self.entry_ring,
                "monitor_base": self.monitor_base,
            },
            "stats": dict(self.stats),
            "counts": {
                "by_severity": self.counts_by_severity(),
                "by_check": self.counts_by_check(),
            },
            "findings": [f.to_dict() for f in self.sorted_findings()],
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    def format_text(self) -> str:
        lines = [
            f"image {self.origin:#x}..{self.end:#x} "
            f"(entry ring {self.entry_ring}, "
            f"monitor base {self.monitor_base:#x})",
        ]
        stats = self.stats
        if stats:
            lines.append(
                "coverage: "
                f"{stats.get('walked_insns', 0)} insns in "
                f"{stats.get('blocks', 0)} blocks, "
                f"{stats.get('edges', 0)} edges, "
                f"{stats.get('handlers', 0)} IDT handlers, "
                f"{stats.get('iterations', 0)} fixpoint rounds")
        counts = self.counts_by_severity()
        lines.append(
            f"findings: {counts[SEV_ERROR]} error(s), "
            f"{counts[SEV_WARNING]} warning(s), {counts[SEV_INFO]} info")
        for finding in self.sorted_findings():
            lines.append(finding.format())
        return "\n".join(lines)
