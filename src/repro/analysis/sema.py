"""Single-source HX32 semantics for the static-analysis stack.

Before this module, HX32 facts were re-encoded in four places: the CFG
recovery kept its own control-flow classification, the abstract
interpreter its own ALU and memory tables, the check catalogue its own
stack-effect model, and the superblock translator its own inline/handler
split.  This module is now the one place those classifications live;
the other modules import them (the translator keeps its *formula
strings* local — they are the independent encoding the translation
validator checks, see :mod:`repro.analysis.tv`).

It also defines the small symbolic expression IR the translation
validator uses:

* expressions are hashable nested tuples (``("const", 3)``,
  ``("add", a, b)``, ``("cond", test, x, y)``, leaf symbols for the
  block-entry register file and flags and for post-handler havoc);
* :func:`simplify` normalises (constant folding plus canonical
  ordering of commutative chains), :func:`evaluate` runs an expression
  concretely over unbounded Python ints — exactly the arithmetic the
  generated superblock source performs;
* :func:`inline_effect` builds the *reference* effect of one inlined
  instruction, and :func:`branch_conditions` the reference taken /
  not-taken predicates of one conditional branch, in the same algebraic
  shape the translator emits — so a correct block compares equal
  syntactically, while any miscompiled formula diverges and is refuted
  by the concrete battery (:func:`battery_environments`).

The reference semantics here are themselves cross-checked against the
interpreter (``Cpu._alu_*`` and the ``_op_*`` handlers) by
``tests/unit/test_sema.py`` — the differential anchor that keeps this
module honest.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, Iterator, List, Mapping, Optional, Tuple

from repro.hw import isa

Expr = Tuple[Any, ...]

MASK32 = 0xFFFFFFFF
#: ``f & -2242`` clears CF|ZF|SF|OF (~0x8C1) preserving TF/IF/IOPL.
CLEAR_ARITH_FLAGS = -2242

# ---------------------------------------------------------------------------
# Shared instruction classification (imported by cfg, absint, checks,
# interproc and the superblock translator)
# ---------------------------------------------------------------------------

#: Control transfers with *no* sequential successor.
NO_FALL: FrozenSet[str] = frozenset({"JMP", "RET", "IRET", "JMPR"})

#: Conditional branches (target + fall-through).
CONDITIONAL_BRANCHES: FrozenSet[str] = frozenset({
    "JZ", "JNZ", "JC", "JNC", "JG", "JGE", "JL", "JLE", "JS", "JNS"})

#: Anything that transfers control (ends a basic block).
CONTROL_MNEMONICS: FrozenSet[str] = \
    NO_FALL | CONDITIONAL_BRANCHES | frozenset({"CALL", "CALLR"})

#: Pure register/flag transforms the translator inlines (cannot fault,
#: cannot touch memory/devices, cannot change privilege state).
INLINE: FrozenSet[str] = frozenset({
    "NOP", "MOVI", "MOV", "LEA", "XCHG",
    "ADD", "ADDI", "SUB", "SUBI", "AND", "ANDI", "OR", "ORI",
    "XOR", "XORI", "SHL", "SHLI", "SHR", "SHRI", "MUL", "MULI",
    "DIVI",  # immediate != 0 only; DIVI #0 ends the trace instead
    "CMP", "CMPI", "TEST", "NOT", "NEG",
})

#: Instructions the translator runs through their bound interpreter
#: handler (they can fault or touch memory/MMIO).
HANDLER: FrozenSet[str] = frozenset({
    "LD", "LD8", "LD16", "ST", "ST8", "ST16", "PUSH", "PUSHI", "POP",
    "DIV",
})

#: Handler instructions that access memory (an MMIO side effect may
#: raise an interrupt; acceptance must happen at the next boundary).
MEMORY: FrozenSet[str] = frozenset({
    "LD", "LD8", "LD16", "ST", "ST8", "ST16", "PUSH", "PUSHI", "POP"})

#: Handler instructions that can write memory (self-modifying-code
#: hazard for the remainder of the block).
STORE: FrozenSet[str] = frozenset({"ST", "ST8", "ST16", "PUSH", "PUSHI"})

#: Mnemonics that end a superblock trace with a branch.
TERMINATORS: FrozenSet[str] = CONDITIONAL_BRANCHES | frozenset({"JMP"})

#: Store/load widths by mnemonic.
STORE_WIDTH: Dict[str, int] = {"ST": 4, "ST16": 2, "ST8": 1}
LOAD_WIDTH: Dict[str, int] = {"LD": 4, "LD16": 2, "LD8": 1}
WIDTH_MASK: Dict[int, int] = {1: 0xFF, 2: 0xFFFF, 4: 0xFFFFFFFF}

#: Register-register / register-immediate ALU transfer functions (the
#: abstract interpreter's value-set maps).  Unbounded-int semantics;
#: callers mask to 32 bits through the lattice.
ALU_RR: Dict[str, Any] = {
    "ADD": lambda a, b: a + b,
    "SUB": lambda a, b: a - b,
    "AND": lambda a, b: a & b,
    "OR": lambda a, b: a | b,
    "XOR": lambda a, b: a ^ b,
    "SHL": lambda a, b: a << (b & 31),
    "SHR": lambda a, b: a >> (b & 31),
    "MUL": lambda a, b: a * b,
}
ALU_RI: Dict[str, Any] = {
    "ADDI": lambda a, b: a + b,
    "SUBI": lambda a, b: a - b,
    "ANDI": lambda a, b: a & b,
    "ORI": lambda a, b: a | b,
    "XORI": lambda a, b: a ^ b,
    "SHLI": lambda a, b: a << (b & 31),
    "SHRI": lambda a, b: a >> (b & 31),
    "MULI": lambda a, b: a * b,
}

#: Instructions that leave every register except SP unknown afterwards.
HAVOC_MNEMONICS: FrozenSet[str] = frozenset({"INT", "VMCALL"})

ALL_GPRS: FrozenSet[int] = frozenset(range(isa.NUM_GPRS))


def regs_written(mnemonic: str, ops: Any) -> FrozenSet[int]:
    """General registers an instruction may write (architectural view).

    ``INT``/``VMCALL``/``IRET`` return every GPR except SP — the
    handler-clobber assumption the abstract interpreter also makes.
    """
    if mnemonic in ("MOVI", "ADDI", "SUBI", "ANDI", "ORI", "XORI",
                    "SHLI", "SHRI", "MULI", "DIVI"):
        return frozenset({ops[0]})
    if mnemonic in ("MOV", "ADD", "SUB", "AND", "OR", "XOR", "SHL",
                    "SHR", "MUL", "DIV"):
        return frozenset({ops[0]})
    if mnemonic in ("LD", "LD8", "LD16", "LEA"):
        return frozenset({ops[0]})
    if mnemonic == "XCHG":
        return frozenset({ops[0], ops[1]})
    if mnemonic in ("NOT", "NEG"):
        return frozenset({ops})
    if mnemonic == "POP":
        return frozenset({ops, isa.REG_SP})
    if mnemonic in ("PUSH", "PUSHI", "PUSHF", "POPF"):
        return frozenset({isa.REG_SP})
    if mnemonic in ("MOVRC", "MOVSGR"):
        return frozenset({ops[1]})
    if mnemonic in ("INB", "INW"):
        return frozenset({ops[0]})
    if mnemonic == "RET":
        return frozenset({isa.REG_SP})
    if mnemonic in HAVOC_MNEMONICS or mnemonic == "IRET":
        return ALL_GPRS - {isa.REG_SP}
    return frozenset()


def writes_sp(mnemonic: str, ops: Any) -> bool:
    """Does this instruction re-point SP directly (not push/pop-style)?"""
    if mnemonic in ("MOVI", "ADDI", "SUBI", "ANDI", "ORI", "XORI",
                    "SHLI", "SHRI", "MULI", "DIVI"):
        return bool(ops[0] == isa.REG_SP)
    if mnemonic in ("MOV", "ADD", "SUB", "AND", "OR", "XOR", "SHL",
                    "SHR", "MUL", "DIV"):
        return bool(ops[0] == isa.REG_SP)
    if mnemonic == "XCHG":
        return isa.REG_SP in ops
    if mnemonic in ("LD", "LD16", "LD8", "LEA"):
        return bool(ops[0] == isa.REG_SP)
    if mnemonic in ("NOT", "NEG", "POP"):
        return bool(ops == isa.REG_SP)
    return False


def stack_delta(mnemonic: str, ops: Any) -> Optional[int]:
    """Net stack growth in bytes, or ``None`` when SP is re-pointed.

    Positive means the stack grew (SP moved down).  ``CALL`` is 0 here:
    the pushed return address is popped by the callee's ``RET`` under
    the balanced-call assumption; per-function imbalance is what AN012
    reports.  ``RET`` is -4 (it pops the return address).
    """
    if mnemonic in ("PUSH", "PUSHI", "PUSHF"):
        return 4
    if mnemonic in ("POP", "POPF"):
        return -4
    if mnemonic in ("ADDI", "SUBI") and ops[0] == isa.REG_SP:
        return int(ops[1]) if mnemonic == "SUBI" else -int(ops[1])
    if mnemonic == "RET":
        return -4
    if writes_sp(mnemonic, ops):
        return None
    return 0


def handler_written_regs(mnemonic: str, ops: Any) -> Tuple[int, ...]:
    """Registers a handler-executed instruction writes, in havoc order.

    Both translation-validator lifters use this to introduce identical
    fresh symbols after a handler call.
    """
    if mnemonic in ("LD", "LD8", "LD16"):
        return (ops[0],)
    if mnemonic in ("ST", "ST8", "ST16"):
        return ()
    if mnemonic in ("PUSH",):
        return (isa.REG_SP,)
    if mnemonic == "PUSHI":
        return (isa.REG_SP,)
    if mnemonic == "POP":
        return (ops, isa.REG_SP)
    if mnemonic == "DIV":
        return (ops[0],)
    raise ValueError(f"not a handler mnemonic: {mnemonic}")


#: Handler instructions that rewrite FLAGS (the generated block reloads
#: its local ``f`` from ``cpu.flags`` afterwards).
HANDLER_WRITES_FLAGS: FrozenSet[str] = frozenset({"DIV"})


# ---------------------------------------------------------------------------
# Symbolic expression IR
# ---------------------------------------------------------------------------

#: Leaf node kinds (their value comes from an environment).
_LEAVES = ("init-reg", "init-flags", "hreg", "hflags")

#: Commutative-associative operators canonicalised by simplify().
_COMMUTATIVE = ("add", "and", "or", "xor", "mul")

_BINOPS: Dict[str, Any] = {
    "add": lambda a, b: a + b,
    "sub": lambda a, b: a - b,
    "and": lambda a, b: a & b,
    "or": lambda a, b: a | b,
    "xor": lambda a, b: a ^ b,
    "shl": lambda a, b: a << b,
    "shr": lambda a, b: a >> b,
    "mul": lambda a, b: a * b,
    "floordiv": lambda a, b: a // b,
}


def const(value: int) -> Expr:
    return ("const", value)


def reg(index: int) -> Expr:
    """The value of register ``index`` at block entry."""
    return ("init-reg", index)


FLAGS: Expr = ("init-flags",)


def havoc_reg(event: int, index: int) -> Expr:
    """Register ``index`` right after handler event ``event`` (fresh)."""
    return ("hreg", event, index)


def havoc_flags(event: int) -> Expr:
    """FLAGS right after handler event ``event`` (fresh)."""
    return ("hflags", event)


class SemaError(Exception):
    """An expression the IR cannot represent or evaluate."""


def evaluate(expr: Expr, env: Mapping[Expr, int]) -> int:
    """Run an expression concretely over unbounded Python ints."""
    op = expr[0]
    if op == "const":
        return int(expr[1])
    if op in _LEAVES:
        return env[expr]
    if op in _BINOPS:
        return int(_BINOPS[op](evaluate(expr[1], env),
                               evaluate(expr[2], env)))
    if op == "invert":
        return ~evaluate(expr[1], env)
    if op == "neg":
        return -evaluate(expr[1], env)
    if op == "cond":
        branch = expr[2] if evaluate_bool(expr[1], env) else expr[3]
        return evaluate(branch, env)
    raise SemaError(f"cannot evaluate {expr!r}")


def evaluate_bool(expr: Expr, env: Mapping[Expr, int]) -> bool:
    """Evaluate a boolean (condition) expression."""
    op = expr[0]
    if op == "truthy":
        return evaluate(expr[1], env) != 0
    if op == "not":
        return not evaluate_bool(expr[1], env)
    if op == "or-b":
        return evaluate_bool(expr[1], env) or evaluate_bool(expr[2], env)
    if op == "and-b":
        return evaluate_bool(expr[1], env) and evaluate_bool(expr[2], env)
    if op == "lt":
        return evaluate(expr[1], env) < evaluate(expr[2], env)
    if op == "eq0":
        return evaluate(expr[1], env) == 0
    raise SemaError(f"cannot evaluate condition {expr!r}")


def _sort_key(expr: Expr) -> str:
    return repr(expr)


def simplify(expr: Expr) -> Expr:
    """Normalise: fold constants, canonicalise commutative chains."""
    op = expr[0]
    if op == "const" or op in _LEAVES:
        return expr
    if op in ("truthy", "not", "invert", "neg", "eq0"):
        inner = simplify(expr[1])
        if inner[0] == "const":
            value = int(inner[1])
            if op == "truthy":
                return ("const-b", value != 0)
            if op == "eq0":
                return ("const-b", value == 0)
            if op == "invert":
                return const(~value)
            if op == "neg":
                return const(-value)
        if op == "not" and inner[0] == "const-b":
            return ("const-b", not inner[1])
        return (op, inner)
    if op in ("lt",):
        a, b = simplify(expr[1]), simplify(expr[2])
        if a[0] == "const" and b[0] == "const":
            return ("const-b", int(a[1]) < int(b[1]))
        return (op, a, b)
    if op in ("or-b", "and-b"):
        a, b = simplify(expr[1]), simplify(expr[2])
        return (op, a, b)
    if op == "cond":
        test = simplify(expr[1])
        then, other = simplify(expr[2]), simplify(expr[3])
        if test[0] == "const-b":
            return then if test[1] else other
        return ("cond", test, then, other)
    if op in _BINOPS:
        a, b = simplify(expr[1]), simplify(expr[2])
        if a[0] == "const" and b[0] == "const":
            return const(int(_BINOPS[op](int(a[1]), int(b[1]))))
        if op in _COMMUTATIVE:
            terms = _flatten(op, a) + _flatten(op, b)
            constants = [int(t[1]) for t in terms if t[0] == "const"]
            symbolic = sorted((t for t in terms if t[0] != "const"),
                              key=_sort_key)
            if constants:
                folded = constants[0]
                for value in constants[1:]:
                    folded = int(_BINOPS[op](folded, value))
                symbolic = symbolic + [const(folded)]
            out = symbolic[0]
            for term in symbolic[1:]:
                out = (op, out, term)
            return out
        return (op, a, b)
    raise SemaError(f"cannot simplify {expr!r}")


def _flatten(op: str, expr: Expr) -> List[Expr]:
    if expr[0] == op:
        return _flatten(op, expr[1]) + _flatten(op, expr[2])
    return [expr]


def leaves(expr: Expr) -> Iterator[Expr]:
    """All leaf symbols in an expression."""
    op = expr[0]
    if op in _LEAVES:
        yield expr
    elif op in ("const", "const-b"):
        return
    else:
        for child in expr[1:]:
            if isinstance(child, tuple):
                yield from leaves(child)


# ---------------------------------------------------------------------------
# Hash-consing normaliser (DAG-scale simplify/evaluate)
# ---------------------------------------------------------------------------


class Normalizer:
    """Memoising, hash-consing :func:`simplify`/:func:`evaluate`.

    The tuple IR is a tree; expressions produced by symbolically
    executing a whole superblock share subterms heavily (every flag
    formula references the register expressions before it), and a
    naive structural walk is exponential on chains like repeated
    ``ADD R0, R0``.  A ``Normalizer`` interns every simplified node so
    structurally equal terms are the *same object*: simplification and
    evaluation memoise by ``id``, equality of canonical forms is
    ``is``, and commutative canonical ordering uses the intern serial
    number (a total order over interned nodes, identical for both
    lifted sides because they share the instance).

    Both expressions of a comparison must be simplified by the same
    ``Normalizer`` for the identity check to be meaningful.
    """

    def __init__(self) -> None:
        #: intern key -> canonical node (children keyed by identity).
        self._nodes: Dict[Tuple[Any, ...], Expr] = {}
        #: id(canonical node) -> creation serial (canonical sort order).
        self._serials: Dict[int, int] = {}
        #: id(input expr) -> canonical node.
        self._simplified: Dict[int, Expr] = {}
        #: Keeps inputs alive so their ids are not reused.
        self._pinned: List[Expr] = []

    def node(self, op: str, *children: Any) -> Expr:
        """Interning constructor; tuple children must be canonical."""
        key = (op,) + tuple(
            id(child) if isinstance(child, tuple) else child
            for child in children)
        got = self._nodes.get(key)
        if got is None:
            got = (op,) + children
            self._nodes[key] = got
            self._serials[id(got)] = len(self._serials)
            self._simplified[id(got)] = got  # canonical = fixpoint
        return got

    def _serial(self, expr: Expr) -> int:
        return self._serials[id(expr)]

    def _flatten(self, op: str, expr: Expr) -> List[Expr]:
        terms: List[Expr] = []
        while isinstance(expr, tuple) and expr[0] == op:
            terms.append(expr[2])
            expr = expr[1]
        terms.append(expr)
        terms.reverse()
        return terms

    def simplify(self, expr: Expr) -> Expr:
        """Canonicalise; same rules as module-level :func:`simplify`."""
        got = self._simplified.get(id(expr))
        if got is not None:
            return got
        out = self._simplify(expr)
        self._simplified[id(expr)] = out
        self._pinned.append(expr)
        return out

    def _simplify(self, expr: Expr) -> Expr:
        op = expr[0]
        if op == "const":
            return self.node("const", int(expr[1]))
        if op == "const-b":
            return self.node("const-b", bool(expr[1]))
        if op in _LEAVES:
            return self.node(*expr)
        if op in ("truthy", "not", "invert", "neg", "eq0"):
            inner = self.simplify(expr[1])
            if inner[0] == "const":
                value = int(inner[1])
                if op == "truthy":
                    return self.node("const-b", value != 0)
                if op == "eq0":
                    return self.node("const-b", value == 0)
                if op == "invert":
                    return self.node("const", ~value)
                if op == "neg":
                    return self.node("const", -value)
            if op == "not" and inner[0] == "const-b":
                return self.node("const-b", not inner[1])
            return self.node(op, inner)
        if op == "lt":
            a, b = self.simplify(expr[1]), self.simplify(expr[2])
            if a[0] == "const" and b[0] == "const":
                return self.node("const-b", int(a[1]) < int(b[1]))
            return self.node(op, a, b)
        if op in ("or-b", "and-b"):
            return self.node(op, self.simplify(expr[1]),
                             self.simplify(expr[2]))
        if op == "cond":
            test = self.simplify(expr[1])
            then, other = self.simplify(expr[2]), self.simplify(expr[3])
            if test[0] == "const-b":
                return then if test[1] else other
            return self.node("cond", test, then, other)
        if op in _BINOPS:
            a, b = self.simplify(expr[1]), self.simplify(expr[2])
            if a[0] == "const" and b[0] == "const":
                return self.node(
                    "const", int(_BINOPS[op](int(a[1]), int(b[1]))))
            if op in _COMMUTATIVE:
                terms = self._flatten(op, a) + self._flatten(op, b)
                constants = [int(t[1]) for t in terms if t[0] == "const"]
                symbolic = sorted(
                    (t for t in terms if t[0] != "const"),
                    key=self._serial)
                if constants:
                    folded = constants[0]
                    for value in constants[1:]:
                        folded = int(_BINOPS[op](folded, value))
                    symbolic = symbolic + [self.node("const", folded)]
                out = symbolic[0]
                for term in symbolic[1:]:
                    out = self.node(op, out, term)
                return out
            return self.node(op, a, b)
        raise SemaError(f"cannot simplify {expr!r}")

    def leaves(self, expr: Expr) -> List[Expr]:
        """Distinct leaf symbols of a canonical DAG (shared-aware)."""
        seen: set = set()
        out: List[Expr] = []
        stack = [expr]
        while stack:
            node = stack.pop()
            if id(node) in seen:
                continue
            seen.add(id(node))
            op = node[0]
            if op in _LEAVES:
                out.append(node)
            elif op not in ("const", "const-b"):
                for child in node[1:]:
                    if isinstance(child, tuple):
                        stack.append(child)
        return out

    def evaluate(self, expr: Expr, env: Mapping[Expr, int],
                 memo: Dict[int, Any]) -> int:
        got = memo.get(id(expr))
        if got is not None:
            return int(got)
        op = expr[0]
        if op == "const":
            value = int(expr[1])
        elif op in _LEAVES:
            value = env[expr]
        elif op in _BINOPS:
            value = int(_BINOPS[op](self.evaluate(expr[1], env, memo),
                                    self.evaluate(expr[2], env, memo)))
        elif op == "invert":
            value = ~self.evaluate(expr[1], env, memo)
        elif op == "neg":
            value = -self.evaluate(expr[1], env, memo)
        elif op == "cond":
            branch = expr[2] \
                if self.evaluate_bool(expr[1], env, memo) else expr[3]
            value = self.evaluate(branch, env, memo)
        else:
            raise SemaError(f"cannot evaluate {expr!r}")
        memo[id(expr)] = value
        return value

    def evaluate_bool(self, expr: Expr, env: Mapping[Expr, int],
                      memo: Dict[int, Any]) -> bool:
        got = memo.get(id(expr))
        if got is not None:
            return bool(got)
        op = expr[0]
        if op == "const-b":
            value = bool(expr[1])
        elif op == "truthy":
            value = self.evaluate(expr[1], env, memo) != 0
        elif op == "not":
            value = not self.evaluate_bool(expr[1], env, memo)
        elif op == "or-b":
            value = self.evaluate_bool(expr[1], env, memo) \
                or self.evaluate_bool(expr[2], env, memo)
        elif op == "and-b":
            value = self.evaluate_bool(expr[1], env, memo) \
                and self.evaluate_bool(expr[2], env, memo)
        elif op == "lt":
            value = self.evaluate(expr[1], env, memo) \
                < self.evaluate(expr[2], env, memo)
        elif op == "eq0":
            value = self.evaluate(expr[1], env, memo) == 0
        else:
            raise SemaError(f"cannot evaluate condition {expr!r}")
        memo[id(expr)] = value
        return value

    def _eq0_operands(self, *exprs: Expr) -> List[Expr]:
        """Operands of every ``eq0`` node reachable from the roots."""
        seen: set = set()
        out: List[Expr] = []
        stack = [expr for expr in exprs]
        while stack:
            node = stack.pop()
            if id(node) in seen:
                continue
            seen.add(id(node))
            if node[0] == "eq0":
                out.append(node[1])
            if node[0] not in ("const", "const-b"):
                for child in node[1:]:
                    if isinstance(child, tuple):
                        stack.append(child)
        return out

    def invert(self, expr: Expr,
               target: int) -> Optional[Dict[Expr, int]]:
        """Best-effort leaf assignment making ``expr`` evaluate near
        ``target`` — a one-chain constraint solver for the shapes the
        translator emits (leaf composed with constants).  The result is
        only used to *direct* extra refutation environments, so a miss
        (chains the solver cannot invert, or 32-bit truncation at the
        leaf) is harmless."""
        op = expr[0]
        if op in _LEAVES:
            return {expr: target & MASK32}
        if op == "neg":
            return self.invert(expr[1], -target)
        if op == "invert":
            return self.invert(expr[1], ~target)
        if op not in _BINOPS or len(expr) != 3:
            return None
        a, b = expr[1], expr[2]
        if isinstance(b, tuple) and b[0] == "const":
            x, c = a, int(b[1])
        elif isinstance(a, tuple) and a[0] == "const":
            if op == "sub":  # c - x == target
                return self.invert(b, int(a[1]) - target)
            x, c = b, int(a[1])
        else:
            return None
        if not isinstance(x, tuple):
            return None
        if op == "add":
            return self.invert(x, target - c)
        if op == "sub":
            return self.invert(x, target + c)
        if op == "xor":
            return self.invert(x, target ^ c)
        if op == "and":
            if target & ~c:
                return None
            return self.invert(x, target)
        if op == "or":
            if target & c != c:
                return None
            return self.invert(x, target)
        if op == "shl":
            if (target >> c) << c != target:
                return None
            return self.invert(x, target >> c)
        if op == "shr":
            return self.invert(x, target << c)
        if op == "mul":
            if not c or target % c:
                return None
            return self.invert(x, target // c)
        if op == "floordiv":
            return self.invert(x, target * c)
        return None

    def equal(self, a: Expr, b: Expr,
              boolean: bool = False) -> Tuple[bool, str,
                                              Optional[Dict[Expr, int]]]:
        """Like :func:`exprs_equal`, memoised over the shared DAG."""
        na, nb = self.simplify(a), self.simplify(b)
        if na is nb:
            return True, "syntactic", None
        symbols = self.leaves(na) + self.leaves(nb)
        environments = battery_environments(symbols)
        # Condition-directed probes: the generic battery rarely lands
        # on derived zeros (e.g. a ZF term needing r1 == -3), so for
        # every ``x == 0`` condition, invert x's constant chain and
        # force that environment explicitly.
        for operand in self._eq0_operands(na, nb):
            assignment = self.invert(operand, 0)
            if assignment:
                for base in (0, 1, 3, 0xFFFFFFFF):
                    env = {leaf: base for leaf in symbols}
                    env.update(assignment)
                    environments.append(env)
        for env in environments:
            memo: Dict[int, Any] = {}
            if boolean:
                va: Any = self.evaluate_bool(na, env, memo)
                vb: Any = self.evaluate_bool(nb, env, memo)
            else:
                va = self.evaluate(na, env, memo)
                vb = self.evaluate(nb, env, memo)
            if va != vb:
                return False, "refuted", env
        return True, "concrete", None


# ---------------------------------------------------------------------------
# Concrete refutation battery
# ---------------------------------------------------------------------------

#: Corner values: flag-bit positions, sign boundaries, carry producers.
_SPECIAL_VALUES: Tuple[int, ...] = (
    0, 1, 2, 3, 4, 31, 32, 63, 64, 127, 128, 255, 256,
    0x7FFF, 0x8000, 0xFFFF, 0x10000,
    0x7FFFFFFE, 0x7FFFFFFF, 0x80000000, 0x80000001,
    0xFFFFFFFE, 0xFFFFFFFF,
    0x12345678, 0x9E3779B9, 0x55555555, 0xAAAAAAAA,
    0x8C1, 0x341, 0x200, 0x3000,
)


def battery_environments(symbols: List[Expr],
                         trials: int = 64) -> List[Dict[Expr, int]]:
    """Deterministic concrete environments over the given leaf symbols.

    The first environments set every symbol to the same corner value
    (guaranteeing zero results for subtract-style ZF paths); the rest
    mix corner values and LCG pseudo-randoms.
    """
    ordered = sorted(set(symbols), key=_sort_key)
    environments: List[Dict[Expr, int]] = []
    for value in (0, 1, 3, 64, 0x7FFFFFFF, 0x80000000, 0xFFFFFFFF):
        environments.append({leaf: value for leaf in ordered})
    state = 0x243F6A88
    for _trial in range(trials):
        env: Dict[Expr, int] = {}
        for leaf in ordered:
            state = (state * 1103515245 + 12345) & 0xFFFFFFFF
            if state % 3:
                env[leaf] = _SPECIAL_VALUES[
                    (state >> 8) % len(_SPECIAL_VALUES)]
            else:
                env[leaf] = (state * 2654435761) & MASK32
        environments.append(env)
    return environments


# ---------------------------------------------------------------------------
# Reference instruction semantics (inline tier)
# ---------------------------------------------------------------------------


@dataclass
class InsnEffect:
    """Symbolic effect of one inlined instruction."""

    #: Register writes applied simultaneously: index -> new value.
    regs: Dict[int, Expr] = field(default_factory=dict)
    #: New FLAGS expression; ``None`` leaves FLAGS unchanged.
    flags: Optional[Expr] = None


def _or_chain(*terms: Expr) -> Expr:
    out = terms[0]
    for term in terms[1:]:
        out = ("or", out, term)
    return out


def _flags_add(f: Expr, a: Expr, b: Expr, t: Expr, m: Expr) -> Expr:
    """``Cpu._alu_add`` flags, in the translator's algebraic shape."""
    return _or_chain(
        ("and", f, const(CLEAR_ARITH_FLAGS)),
        ("shr", t, const(32)),
        ("and", ("shr", m, const(24)), const(128)),
        ("shr", ("and", ("and", ("xor", a, m), ("xor", b, m)),
                 const(2147483648)), const(20)),
        ("cond", ("eq0", m), const(64), const(0)))


def _flags_sub(f: Expr, a: Expr, b: Expr, m: Expr) -> Expr:
    """``Cpu._alu_sub`` flags, in the translator's algebraic shape."""
    return _or_chain(
        ("and", f, const(CLEAR_ARITH_FLAGS)),
        ("cond", ("lt", a, b), const(1), const(0)),
        ("and", ("shr", m, const(24)), const(128)),
        ("shr", ("and", ("and", ("xor", a, b), ("xor", a, m)),
                 const(2147483648)), const(20)),
        ("cond", ("eq0", m), const(64), const(0)))


def _flags_logic(f: Expr, m: Expr) -> Expr:
    """``Cpu._alu_logic`` flags (CF=OF=0, ZF/SF from the result)."""
    return _or_chain(
        ("and", f, const(CLEAR_ARITH_FLAGS)),
        ("and", ("shr", m, const(24)), const(128)),
        ("cond", ("eq0", m), const(64), const(0)))


def _mask(expr: Expr) -> Expr:
    return ("and", expr, const(MASK32))


def _add_effect(f: Expr, dest: Optional[int], a: Expr, b: Expr) -> InsnEffect:
    t: Expr = ("add", a, b)
    m = _mask(t)
    effect = InsnEffect(flags=_flags_add(f, a, b, t, m))
    if dest is not None:
        effect.regs[dest] = m
    return effect


def _sub_effect(f: Expr, dest: Optional[int], a: Expr, b: Expr) -> InsnEffect:
    m = _mask(("sub", a, b))
    effect = InsnEffect(flags=_flags_sub(f, a, b, m))
    if dest is not None:
        effect.regs[dest] = m
    return effect


def _logic_effect(f: Expr, dest: Optional[int], m: Expr) -> InsnEffect:
    effect = InsnEffect(flags=_flags_logic(f, m))
    if dest is not None:
        effect.regs[dest] = m
    return effect


def inline_effect(mnemonic: str, ops: Any, regs: Tuple[Expr, ...],
                  f: Expr) -> InsnEffect:
    """Reference effect of one inlined instruction.

    ``regs`` is the current symbolic register file, ``f`` the current
    symbolic FLAGS.  Raises :class:`SemaError` for non-inline mnemonics.
    """
    if mnemonic == "NOP":
        return InsnEffect()
    if mnemonic == "MOVI":
        return InsnEffect(regs={ops[0]: const(ops[1])})
    if mnemonic == "MOV":
        return InsnEffect(regs={ops[0]: regs[ops[1]]})
    if mnemonic == "LEA":
        return InsnEffect(
            regs={ops[0]: _mask(("add", regs[ops[1]], const(ops[2])))})
    if mnemonic == "XCHG":
        ra, rb = ops
        return InsnEffect(regs={ra: regs[rb], rb: regs[ra]})
    if mnemonic == "ADD":
        return _add_effect(f, ops[0], regs[ops[0]], regs[ops[1]])
    if mnemonic == "ADDI":
        return _add_effect(f, ops[0], regs[ops[0]], const(ops[1]))
    if mnemonic == "SUB":
        return _sub_effect(f, ops[0], regs[ops[0]], regs[ops[1]])
    if mnemonic == "SUBI":
        return _sub_effect(f, ops[0], regs[ops[0]], const(ops[1]))
    if mnemonic == "CMP":
        return _sub_effect(f, None, regs[ops[0]], regs[ops[1]])
    if mnemonic == "CMPI":
        return _sub_effect(f, None, regs[ops[0]], const(ops[1]))
    if mnemonic == "NEG":
        return _sub_effect(f, ops, const(0), regs[ops])
    if mnemonic == "AND":
        return _logic_effect(f, ops[0], ("and", regs[ops[0]], regs[ops[1]]))
    if mnemonic == "ANDI":
        return _logic_effect(f, ops[0], ("and", regs[ops[0]], const(ops[1])))
    if mnemonic == "OR":
        return _logic_effect(f, ops[0], ("or", regs[ops[0]], regs[ops[1]]))
    if mnemonic == "ORI":
        return _logic_effect(f, ops[0], ("or", regs[ops[0]], const(ops[1])))
    if mnemonic == "XOR":
        return _logic_effect(f, ops[0], ("xor", regs[ops[0]], regs[ops[1]]))
    if mnemonic == "XORI":
        return _logic_effect(f, ops[0], ("xor", regs[ops[0]], const(ops[1])))
    if mnemonic == "TEST":
        return _logic_effect(f, None, ("and", regs[ops[0]], regs[ops[1]]))
    if mnemonic == "SHL":
        return _logic_effect(
            f, ops[0],
            _mask(("shl", regs[ops[0]], ("and", regs[ops[1]], const(31)))))
    if mnemonic == "SHLI":
        return _logic_effect(
            f, ops[0], _mask(("shl", regs[ops[0]], const(ops[1] & 31))))
    if mnemonic == "SHR":
        return _logic_effect(
            f, ops[0],
            ("shr", regs[ops[0]], ("and", regs[ops[1]], const(31))))
    if mnemonic == "SHRI":
        return _logic_effect(
            f, ops[0], ("shr", regs[ops[0]], const(ops[1] & 31)))
    if mnemonic == "MUL":
        return _logic_effect(
            f, ops[0], _mask(("mul", regs[ops[0]], regs[ops[1]])))
    if mnemonic == "MULI":
        return _logic_effect(
            f, ops[0], _mask(("mul", regs[ops[0]], const(ops[1]))))
    if mnemonic == "DIVI":
        # Only inlined with a non-zero immediate.
        return _logic_effect(
            f, ops[0], ("floordiv", regs[ops[0]], const(ops[1])))
    if mnemonic == "NOT":
        return _logic_effect(f, ops, _mask(("invert", regs[ops])))
    raise SemaError(f"no inline semantics for {mnemonic}")


# ---------------------------------------------------------------------------
# Reference branch predicates
# ---------------------------------------------------------------------------


def _flag_test(f: Expr, bit: int) -> Expr:
    return ("truthy", ("and", f, const(bit)))


def _sf_ne_of(f: Expr) -> Expr:
    """``((f >> 4) ^ f) & 128`` — aligns OF with SF so 128 tests SF != OF."""
    return ("truthy",
            ("and", ("xor", ("shr", f, const(4)), f), const(128)))


def branch_conditions(mnemonic: str, f: Expr) -> Tuple[Expr, Expr]:
    """(taken, not-taken) reference predicates over a FLAGS expression."""
    zf = _flag_test(f, 64)
    cf = _flag_test(f, 1)
    sf = _flag_test(f, 128)
    lt = _sf_ne_of(f)
    le: Expr = ("or-b", zf, lt)
    table: Dict[str, Tuple[Expr, Expr]] = {
        "JZ": (zf, ("not", zf)),
        "JNZ": (("not", zf), zf),
        "JC": (cf, ("not", cf)),
        "JNC": (("not", cf), cf),
        "JS": (sf, ("not", sf)),
        "JNS": (("not", sf), sf),
        "JGE": (("not", lt), lt),
        "JL": (lt, ("not", lt)),
        "JG": (("not", le), le),
        "JLE": (le, ("not", le)),
    }
    try:
        return table[mnemonic]
    except KeyError:
        raise SemaError(f"not a conditional branch: {mnemonic}") from None


# ---------------------------------------------------------------------------
# Equivalence helpers
# ---------------------------------------------------------------------------


def exprs_equal(a: Expr, b: Expr,
                environments: Optional[List[Dict[Expr, int]]] = None,
                boolean: bool = False) -> Tuple[bool, str, Optional[Dict[Expr, int]]]:
    """Decide equivalence of two expressions.

    Returns ``(equal, how, witness)`` where ``how`` is ``"syntactic"``
    (normal forms match — a proof), ``"concrete"`` (normal forms differ
    but every battery environment agrees), or ``"refuted"`` with the
    counterexample environment as ``witness``.
    """
    sa, sb = simplify(a), simplify(b)
    if sa == sb:
        return True, "syntactic", None
    symbols = list(leaves(a)) + list(leaves(b))
    if environments is None:
        environments = battery_environments(symbols)
    for env in environments:
        local = dict(env)
        for symbol in symbols:
            local.setdefault(symbol, 0)
        if boolean:
            va: Any = evaluate_bool(a, local)
            vb: Any = evaluate_bool(b, local)
        else:
            va = evaluate(a, local)
            vb = evaluate(b, local)
        if va != vb:
            return False, "refuted", local
    return True, "concrete", None
