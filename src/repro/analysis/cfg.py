"""Control-flow-graph recovery for HX32 images.

Two classic passes over the flat image:

* a **linear sweep** (:func:`repro.asm.disasm.decode_range`) that tiles
  every byte — used as the instruction-boundary reference and to find
  code the recursive walk never reaches;
* a **recursive descent** from the entry points, following JMP/Jcc/CALL
  fall-throughs and targets, that yields the reachable instruction map
  and the basic-block graph.

Indirect control flow (JMPR/CALLR, IRET through a fabricated frame) has
no static successors; the abstract interpreter resolves what it can and
feeds the extra edges back in through ``dyn_edges`` — the driver
iterates recovery and interpretation to a joint fixpoint.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.analysis import sema
from repro.asm.disasm import DecodedInsn, _pseudo_byte, decode_one, decode_range
from repro.errors import DisassemblerError
from repro.hw import isa

#: Successor-edge kinds.
EDGE_FALL = "fall"      # sequential successor
EDGE_JUMP = "jump"      # unconditional JMP target
EDGE_BRANCH = "branch"  # conditional Jcc target
EDGE_CALL = "call"      # CALL/CALLR callee entry
EDGE_DYN = "dyn"        # resolved indirect edge (JMPR/IRET frame)

# Instruction classification lives in repro.analysis.sema — the single
# source of HX32 semantics the CFG, the abstract interpreter and the
# translation validator all share.
_NO_FALL = sema.NO_FALL
_CONDITIONALS = sema.CONDITIONAL_BRANCHES
CONTROL_MNEMONICS = sema.CONTROL_MNEMONICS


@dataclass
class BasicBlock:
    """A maximal straight-line instruction run."""

    start: int
    insns: List[DecodedInsn] = field(default_factory=list)
    #: (target address, edge kind) pairs; targets are in-image only.
    succs: List[Tuple[int, str]] = field(default_factory=list)

    @property
    def last(self) -> DecodedInsn:
        return self.insns[-1]

    @property
    def end(self) -> int:
        tail = self.last
        return tail.address + tail.length

    def __repr__(self) -> str:
        return (f"BasicBlock({self.start:#x}..{self.end:#x}, "
                f"{len(self.insns)} insns, succs={self.succs})")


@dataclass
class Cfg:
    """The recovered graph plus the raw facts the checkers consume."""

    origin: int
    end: int
    entries: FrozenSet[int]
    blocks: Dict[int, BasicBlock] = field(default_factory=dict)
    #: Reachable instruction map from the recursive walk.
    insn_at: Dict[int, DecodedInsn] = field(default_factory=dict)
    #: Linear-sweep instruction list (tiles the whole image).
    linear: List[DecodedInsn] = field(default_factory=list)
    #: Static control transfers leaving the image: (src, target, kind).
    out_of_image: List[Tuple[int, int, str]] = field(default_factory=list)
    #: Instructions whose sequential successor is past the image end.
    fall_off: List[int] = field(default_factory=list)
    #: Static branch/jump/call targets: (src, target).
    branch_targets: List[Tuple[int, int]] = field(default_factory=list)

    def reachable_addresses(self) -> Set[int]:
        return set(self.insn_at)

    def block_count(self) -> int:
        return len(self.blocks)

    def edge_count(self) -> int:
        return sum(len(block.succs) for block in self.blocks.values())


def _decode_at(image: bytes, origin: int, address: int) -> DecodedInsn:
    offset = address - origin
    try:
        return decode_one(image, offset, address)
    except DisassemblerError:
        return _pseudo_byte(image, offset, address)


def _static_successors(insn: DecodedInsn, origin: int,
                       end: int) -> Tuple[List[Tuple[int, str]],
                                          List[Tuple[int, int, str]],
                                          bool]:
    """Successors of one instruction from its encoding alone.

    Returns (in-image successors, out-of-image transfers, falls_off) —
    the latter two feed the AN003/AN005 checks.
    """
    succs: List[Tuple[int, str]] = []
    escaped: List[Tuple[int, int, str]] = []
    falls_off = False
    after = insn.address + insn.length

    def add(target: int, kind: str) -> None:
        if origin <= target < end:
            succs.append((target, kind))
        else:
            escaped.append((insn.address, target, kind))

    name = insn.mnemonic
    if name in _NO_FALL or name in _CONDITIONALS or name == "CALL":
        if name != "JMPR" and name not in ("RET", "IRET"):
            spec = isa.SPECS[insn.opcode]
            rel = isa.decode_operands(spec.fmt, insn.raw[1:])
            assert isinstance(rel, int)
            add(isa.mask32(after + rel),
                EDGE_JUMP if name == "JMP"
                else EDGE_CALL if name == "CALL" else EDGE_BRANCH)
    if insn.is_pseudo:
        return succs, escaped, False
    if name not in _NO_FALL:
        if after < end:
            succs.append((after, EDGE_FALL))
        elif after >= end:
            falls_off = True
    return succs, escaped, falls_off


def recover_cfg(image: bytes, origin: int, entries: Iterable[int],
                dyn_edges: Optional[Dict[int, Set[int]]] = None) -> Cfg:
    """Recursive-descent CFG recovery seeded at ``entries``.

    ``dyn_edges`` maps an instruction address (a JMPR/IRET site) to the
    in-image targets the abstract interpreter resolved for it.
    """
    end = origin + len(image)
    dyn_edges = dyn_edges or {}
    entry_set = frozenset(a for a in entries if origin <= a < end)
    cfg = Cfg(origin=origin, end=end, entries=entry_set)
    cfg.linear = list(decode_range(image, origin))

    # -- pass 1: reachable instruction map -----------------------------
    succ_map: Dict[int, List[Tuple[int, str]]] = {}
    worklist = list(entry_set)
    while worklist:
        address = worklist.pop()
        if address in cfg.insn_at:
            continue
        insn = _decode_at(image, origin, address)
        cfg.insn_at[address] = insn
        succs, escaped, falls_off = _static_successors(insn, origin, end)
        for target in sorted(dyn_edges.get(address, ())):
            if origin <= target < end:
                kind = EDGE_CALL if insn.mnemonic == "CALLR" else EDGE_DYN
                succs.append((target, kind))
        succ_map[address] = succs
        cfg.out_of_image.extend(escaped)
        if falls_off:
            cfg.fall_off.append(address)
        for target, kind in succs:
            if kind != EDGE_FALL:
                cfg.branch_targets.append((address, target))
            worklist.append(target)

    # -- pass 2: split into basic blocks -------------------------------
    leaders: Set[int] = set(entry_set)
    for address, succs in succ_map.items():
        insn = cfg.insn_at[address]
        if insn.mnemonic in CONTROL_MNEMONICS or insn.is_pseudo \
                or address in dyn_edges:
            for target, kind in succs:
                leaders.add(target)
    for leader in leaders:
        if leader not in cfg.insn_at:
            continue
        block = BasicBlock(start=leader)
        address = leader
        while True:
            insn = cfg.insn_at[address]
            block.insns.append(insn)
            succs = succ_map[address]
            is_control = (insn.mnemonic in CONTROL_MNEMONICS
                          or insn.is_pseudo or address in dyn_edges)
            after = address + insn.length
            if is_control or after in leaders or after not in cfg.insn_at \
                    or not succs:
                block.succs = list(succs)
                break
            address = after
        cfg.blocks[leader] = block
    return cfg
