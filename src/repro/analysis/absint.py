"""Abstract interpretation over the recovered CFG.

A worklist fixpoint propagating :class:`repro.analysis.lattice.AbsState`
(register value sets, privilege rings, stack depth, shadow stack)
through every reachable basic block.  Alongside the flow-sensitive
state, the interpreter accumulates flow-insensitive facts the checkers
and the driver consume:

* ``store_targets`` — per store/push instruction, the value set of
  addresses it may write (the wild-write check's input);
* ``store_log`` — a global (address, width) → value-set map of every
  statically-resolved store.  Loads read it back, which is what lets
  the analyzer follow a fabricated task frame: the saved SP stored into
  a TCB is reloaded by ``LD SP, [tcb+4]``, the pops read the frame
  words, and the final IRET resolves to the task entry point.  This is
  deliberately *optimistic* for loads (an unknown store does not clobber
  the log) — right for a bug-finder, wrong for a verifier;
* ``lidt_sites`` — the pointer value set at every LIDT, from which the
  driver statically discovers the guest IDT and its registered
  handlers;
* ``resolved`` / ``iret_drops`` — indirect control-flow targets the
  value-set domain pinned down, fed back into CFG recovery.

Calls, INT and VMCALL havoc the general registers (callee/handler
clobbers are unknown) but preserve SP and the stack depth — the
balanced-call assumption stated in docs/INTERNALS.md §8.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, FrozenSet, List, Optional, Set, Tuple

if TYPE_CHECKING:
    from repro.analysis.interproc import FunctionSummary

from repro.analysis import sema
from repro.analysis.cfg import (
    EDGE_CALL,
    EDGE_DYN,
    EDGE_FALL,
    BasicBlock,
    Cfg,
)
from repro.analysis.lattice import ALL_RINGS, AbsState, ValueSet
from repro.asm.disasm import DecodedInsn
from repro.hw import isa
from repro.hw.isa import REG_SP

# HX32 semantics tables live in repro.analysis.sema (shared with the
# CFG, the checkers and the translation validator).
_STORE_WIDTH = sema.STORE_WIDTH
_LOAD_WIDTH = sema.LOAD_WIDTH
_WIDTH_MASK = sema.WIDTH_MASK
_ALU_RR = sema.ALU_RR
_ALU_RI = sema.ALU_RI
_HAVOC_MNEMONICS = sema.HAVOC_MNEMONICS


@dataclass
class IretResolution:
    """What an IRET statically popped, for dynamic-edge dispatch."""

    targets: FrozenSet[int]
    rings: FrozenSet[int]
    state: AbsState            # state *after* popping the frame


@dataclass
class AbsResult:
    """Everything one interpretation fixpoint learned."""

    entry_states: Dict[int, AbsState] = field(default_factory=dict)
    insn_rings: Dict[int, FrozenSet[int]] = field(default_factory=dict)
    store_targets: Dict[int, ValueSet] = field(default_factory=dict)
    store_log: Dict[Tuple[int, int], ValueSet] = field(default_factory=dict)
    lidt_sites: Dict[int, ValueSet] = field(default_factory=dict)
    #: Indirect sites (JMPR/CALLR/IRET) → in-image targets resolved.
    resolved: Dict[int, Set[int]] = field(default_factory=dict)
    #: Resolved indirect transfers leaving the image: (src, target).
    resolved_out: List[Tuple[int, int]] = field(default_factory=list)
    #: IRET privilege drops observed: (site, target, new ring).
    iret_drops: List[Tuple[int, int, int]] = field(default_factory=list)
    #: JMPR/CALLR whose register never resolved.
    unknown_indirect: Set[int] = field(default_factory=set)
    rounds: int = 0


class Interpreter:
    """One abstract-interpretation run over a fixed CFG."""

    def __init__(self, cfg: Cfg, entry_rings: Dict[int, int],
                 store_log: Optional[Dict[Tuple[int, int], ValueSet]] = None,
                 summaries: Optional[Dict[int, "FunctionSummary"]] = None,
                 ) -> None:
        self.cfg = cfg
        self.entry_rings = entry_rings
        self.summaries = summaries or {}
        self.result = AbsResult()
        if store_log:
            self.result.store_log = dict(store_log)
        self._iret: Dict[int, IretResolution] = {}

    # -- memory model ----------------------------------------------------

    def _record_store(self, address: int, target: ValueSet, width: int,
                      value: ValueSet) -> None:
        log = self.result.store_log
        joined = self.result.store_targets.get(address)
        self.result.store_targets[address] = \
            target if joined is None else joined.join(target)
        if target.is_top:
            return
        masked = value.map(lambda v: v & _WIDTH_MASK[width])
        for concrete in target.concrete():
            key = (concrete, width)
            old = log.get(key)
            log[key] = masked if old is None else old.join(masked)

    def _load(self, target: ValueSet, width: int) -> ValueSet:
        if target.is_top:
            return ValueSet.top()
        out: Optional[ValueSet] = None
        for concrete in target.concrete():
            value = self.result.store_log.get((concrete, width))
            if value is None:
                return ValueSet.top()
            out = value if out is None else out.join(value)
        return out if out is not None else ValueSet.top()

    # -- stack helpers ---------------------------------------------------

    def _push(self, state: AbsState, value: ValueSet,
              insn_address: Optional[int] = None) -> None:
        sp = state.regs[REG_SP]
        new_sp = sp.add_const(-4)
        if insn_address is not None:
            self._record_store(insn_address, new_sp, 4, value)
        state.with_reg(REG_SP, new_sp)
        if state.depth is not None:
            state.depth += 4
            state.shadow = state.shadow + (value,)

    def _pop(self, state: AbsState) -> ValueSet:
        sp = state.regs[REG_SP]
        if state.shadow:
            value = state.shadow[-1]
            state.shadow = state.shadow[:-1]
        else:
            value = self._load(sp, 4)
        state.with_reg(REG_SP, sp.add_const(4))
        if state.depth is not None:
            state.depth -= 4
        return value

    @staticmethod
    def _havoc_regs(state: AbsState) -> None:
        top = ValueSet.top()
        state.regs = tuple(
            state.regs[i] if i == REG_SP else top
            for i in range(len(state.regs)))

    def _havoc_call_return(self, state: AbsState,
                           callees: List[int]) -> None:
        """Clobber the caller's state across a call, as precisely as
        the interprocedural summaries allow.

        With a summary for every callee (and none of them re-pointing
        SP), only the transitively-clobbered registers go to TOP —
        context-insensitive value-set propagation across the call.
        Otherwise fall back to the classic havoc-everything-but-SP.
        """
        summaries = [self.summaries.get(c) for c in callees]
        if not summaries or any(s is None or s.resets_sp
                                or s.clobbers_all for s in summaries):
            self._havoc_regs(state)
            return
        clobbered = frozenset().union(*(s.clobbered for s in summaries))
        top = ValueSet.top()
        state.regs = tuple(
            top if i in clobbered and i != REG_SP else state.regs[i]
            for i in range(len(state.regs)))

    # -- per-instruction transfer ----------------------------------------

    def _set_reg(self, state: AbsState, index: int,
                 value: ValueSet) -> None:
        state.with_reg(index, value)
        if index == REG_SP:
            state.reset_stack()

    def _transfer(self, state: AbsState, insn: DecodedInsn) -> None:
        address = insn.address
        rings = self.result.insn_rings.get(address, frozenset())
        self.result.insn_rings[address] = rings | state.rings
        if insn.is_pseudo:
            return
        spec = isa.SPECS[insn.opcode]
        name = insn.mnemonic
        ops = isa.decode_operands(spec.fmt, insn.raw[1:])

        if name == "MOVI":
            ra, imm = ops
            self._set_reg(state, ra, ValueSet.const(imm))
        elif name == "MOV":
            ra, rb = ops
            self._set_reg(state, ra, state.regs[rb])
        elif name == "XCHG":
            ra, rb = ops
            va, vb = state.regs[ra], state.regs[rb]
            self._set_reg(state, ra, vb)
            self._set_reg(state, rb, va)
        elif name == "LEA":
            ra, rb, disp = ops
            self._set_reg(state, ra,
                          state.regs[rb].add_const(isa.signed32(disp)))
        elif name in _LOAD_WIDTH:
            ra, rb, disp = ops
            target = state.regs[rb].add_const(isa.signed32(disp))
            self._set_reg(state, ra, self._load(target, _LOAD_WIDTH[name]))
        elif name in _STORE_WIDTH:
            ra, rb, disp = ops
            target = state.regs[rb].add_const(isa.signed32(disp))
            self._record_store(address, target, _STORE_WIDTH[name],
                               state.regs[ra])
        elif name == "PUSH":
            self._push(state, state.regs[ops], address)
        elif name == "PUSHI":
            self._push(state, ValueSet.const(ops), address)
        elif name == "PUSHF":
            self._push(state, ValueSet.top(), address)
        elif name == "POP":
            value = self._pop(state)
            self._set_reg(state, ops, value)
        elif name == "POPF":
            self._pop(state)
        elif name in _ALU_RR:
            ra, rb = ops
            fn = _ALU_RR[name]
            result = state.regs[ra].map2(state.regs[rb], fn)
            if ra == REG_SP:
                self._set_reg(state, ra, result)
            else:
                state.with_reg(ra, result)
        elif name in _ALU_RI:
            ra, imm = ops
            fn = _ALU_RI[name]
            result = state.regs[ra].map(lambda v: fn(v, imm))
            if ra == REG_SP:
                # Explicit stack alloc/free keeps a tracked depth.
                state.with_reg(REG_SP, result)
                if state.depth is not None and name in ("ADDI", "SUBI"):
                    delta = imm if name == "SUBI" else -imm
                    state.depth += delta
                    if delta < 0:
                        drop = min(len(state.shadow), (-delta) // 4)
                        state.shadow = state.shadow[:len(state.shadow)
                                                   - drop]
                else:
                    state.forget_stack()
            else:
                state.with_reg(ra, result)
        elif name in ("DIV", "DIVI"):
            ra = ops[0]
            self._set_reg(state, ra, ValueSet.top())
        elif name in ("NOT", "NEG"):
            fn = (lambda v: ~v) if name == "NOT" else (lambda v: -v)
            self._set_reg(state, ops, state.regs[ops].map(fn))
        elif name in ("MOVRC", "MOVSGR"):
            _n, reg = ops  # (crn/segn, destination reg) nibble pair
            self._set_reg(state, reg, ValueSet.top())
        elif name in ("INB", "INW"):
            ra, _rb = ops
            self._set_reg(state, ra, ValueSet.top())
        elif name == "LIDT":
            pointer = state.regs[ops]
            joined = self.result.lidt_sites.get(address)
            self.result.lidt_sites[address] = \
                pointer if joined is None else joined.join(pointer)
        elif name in _HAVOC_MNEMONICS:
            self._havoc_regs(state)
        # CMP/CMPI/TEST, NOP, HLT, CLI, STI, BKPT, OUTB/OUTW, MOVCR,
        # MOVSEG, LGDT, LTSS: no effect on the tracked domain.
        # JMP/Jcc/CALL/CALLR/JMPR/RET/IRET are handled at block dispatch.

    # -- control-flow resolution -----------------------------------------

    def _resolve_indirect(self, state: AbsState,
                          insn: DecodedInsn) -> Optional[FrozenSet[int]]:
        """Targets of JMPR/CALLR from the register value set."""
        reg = isa.decode_operands(isa.SPECS[insn.opcode].fmt,
                                  insn.raw[1:])
        value = state.regs[reg]
        if value.is_top:
            self.result.unknown_indirect.add(insn.address)
            return None
        targets: Set[int] = set()
        for concrete in value.concrete():
            if self.cfg.origin <= concrete < self.cfg.end:
                targets.add(concrete)
            else:
                self.result.resolved_out.append((insn.address, concrete))
        self.result.resolved.setdefault(insn.address, set()).update(targets)
        return frozenset(targets)

    def _resolve_iret(self, state: AbsState,
                      insn: DecodedInsn) -> Optional[IretResolution]:
        """Pop the IRET frame abstractly; resolve fabricated frames."""
        after = state.copy()
        pc = self._pop(after)
        cs = self._pop(after)
        self._pop(after)  # FLAGS image: not tracked
        if pc.is_top or cs.is_top:
            return None
        new_rings = frozenset(sel & 0b11 for sel in cs.concrete())
        current_max = max(state.rings) if state.rings else 0
        if new_rings and min(new_rings) > current_max:
            # Outward return: the frame also carries SP and SS.
            new_sp = self._pop(after)
            self._pop(after)  # SS selector
            after.with_reg(REG_SP, new_sp)
            after.reset_stack()
        after.rings = new_rings if new_rings else ALL_RINGS
        targets: Set[int] = set()
        for concrete in pc.concrete():
            if self.cfg.origin <= concrete < self.cfg.end:
                targets.add(concrete)
            else:
                self.result.resolved_out.append((insn.address, concrete))
            for ring in after.rings:
                self.result.iret_drops.append(
                    (insn.address, concrete, ring))
        self.result.resolved.setdefault(insn.address, set()).update(targets)
        return IretResolution(targets=frozenset(targets),
                              rings=after.rings, state=after)

    # -- block dispatch ---------------------------------------------------

    def _successor_states(self, block: BasicBlock,
                          state: AbsState) -> List[Tuple[int, AbsState]]:
        last = block.last
        name = last.mnemonic
        out: List[Tuple[int, AbsState]] = []
        iret: Optional[IretResolution] = None
        if name == "IRET":
            iret = self._resolve_iret(state, last)
            if iret is not None:
                self._iret[last.address] = iret
        elif name in ("JMPR", "CALLR"):
            self._resolve_indirect(state, last)

        for target, kind in block.succs:
            if kind == EDGE_CALL:
                callee = state.copy()
                self._push(callee,
                           ValueSet.const(last.address + last.length))
                out.append((target, callee))
            elif kind == EDGE_FALL and name in ("CALL", "CALLR"):
                fall = state.copy()
                callees = [t for t, k in block.succs if k == EDGE_CALL]
                self._havoc_call_return(fall, callees)
                out.append((target, fall))
            elif kind == EDGE_DYN and name == "IRET":
                if iret is not None and target in iret.targets:
                    out.append((target, iret.state.copy()))
                # An IRET edge resolved in an earlier round but opaque in
                # this one contributes nothing new.
            else:
                out.append((target, state.copy()))
        return out

    # -- the fixpoint ------------------------------------------------------

    def run(self) -> AbsResult:
        states = self.result.entry_states
        worklist = deque()
        for entry in sorted(self.cfg.entries):
            if entry not in self.cfg.blocks:
                continue
            fresh = AbsState.entry(self.entry_rings.get(entry, 0))
            known = states.get(entry)
            states[entry] = fresh if known is None else known.join(fresh)
            worklist.append(entry)
        seen_in_list = set(worklist)
        while worklist:
            start = worklist.popleft()
            seen_in_list.discard(start)
            block = self.cfg.blocks.get(start)
            if block is None or start not in states:
                continue
            state = states[start].copy()
            for insn in block.insns:
                self._transfer(state, insn)
            for target, succ_state in self._successor_states(block, state):
                if target not in self.cfg.blocks:
                    continue
                old = states.get(target)
                new = succ_state if old is None else old.join(succ_state)
                if old is None or new != old:
                    states[target] = new
                    if target not in seen_in_list:
                        worklist.append(target)
                        seen_in_list.add(target)
        return self.result


def interpret(cfg: Cfg, entry_rings: Dict[int, int],
              max_rounds: int = 6,
              summaries: Optional[Dict[int, "FunctionSummary"]] = None,
              ) -> AbsResult:
    """Iterate interpretation until the global store log stabilises.

    The store log is flow-insensitive: a state computed before a later
    store was recorded can be stale (e.g. ``LD SP, [tcb+4]`` reading a
    frame fabricated further down the boot path).  Re-running with the
    accumulated log converges in two or three rounds.

    ``summaries`` (from :mod:`repro.analysis.interproc`) sharpen the
    post-call states: only registers a callee may actually clobber are
    forgotten across its calls.
    """
    log: Dict[Tuple[int, int], ValueSet] = {}
    result = AbsResult()
    for round_number in range(1, max_rounds + 1):
        interp = Interpreter(cfg, entry_rings, store_log=log,
                             summaries=summaries)
        result = interp.run()
        result.rounds = round_number
        if result.store_log == log:
            break
        log = dict(result.store_log)
    return result
