"""Command-line front end for the guest-image static analyzer.

    python -m repro.analysis.cli image.bin [--org 0x200000] [--json]
    python -m repro.analysis.cli --builtin kernel --json
    repro-analyze image.bin --monitor-base 0xF00000

Exit-code contract (what CI gates on):

* 0 — the image analyzed cleanly at the requested ``--fail-on``
  threshold (default: no error-severity findings).
* 1 — at least one finding at or above the threshold.  ``--fail-on
  warning`` also fails on warnings; ``--fail-on info`` fails on any
  finding at all; ``--fail-on none`` always exits 0 when analysis ran.
* 2 — the analysis itself could not run (bad image, usage error).
"""

from __future__ import annotations

import sys
from argparse import ArgumentParser
from pathlib import Path
from typing import Optional, Sequence, Tuple

from repro.analysis.analyzer import DEFAULT_MEMORY_SIZE, analyze_image
from repro.analysis.report import Report
from repro.errors import ReproError
from repro.hw import firmware

#: Built-in guest images usable as ``--builtin`` targets.
BUILTIN_IMAGES = ("kernel", "kernel-user", "kernel-paging", "user",
                  "threads", "threads-preemptive")


def build_builtin(name: str) -> Tuple[bytes, int, int]:
    """(image, origin, entry ring) for a built-in guest."""
    from repro.asm.assembler import assemble
    from repro.guest import asmkernel, asmthreads

    if name == "kernel":
        program = asmkernel.build_kernel()
    elif name == "kernel-user":
        program = asmkernel.build_kernel(
            asmkernel.KernelConfig(with_user_task=True))
    elif name == "kernel-paging":
        program = asmkernel.build_kernel(
            asmkernel.KernelConfig(with_paging=True))
    elif name == "user":
        return asmkernel.build_user_task().image, \
            firmware.GUEST_APP_BASE, 3
    elif name == "threads":
        program = asmthreads.build_threaded_kernel()
    elif name == "threads-preemptive":
        program = assemble(
            asmthreads.threaded_kernel_source(preemptive=True))
    else:
        raise ReproError(f"unknown builtin image {name!r} "
                         f"(try one of {', '.join(BUILTIN_IMAGES)})")
    return program.image, program.origin, 0


def _number(text: str) -> int:
    return int(text, 0)


def exceeds_threshold(report: Report, fail_on: str) -> bool:
    """True when the report has findings at or above ``fail_on``."""
    if fail_on == "none":
        return False
    counts = report.counts_by_severity()
    if fail_on == "info":
        return bool(report.findings)
    if fail_on == "warning":
        return bool(counts["error"] or counts["warning"])
    return bool(counts["error"])


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = ArgumentParser(prog="repro-analyze", description=__doc__)
    parser.add_argument("image", nargs="?",
                        help="flat HX32 image file to analyze")
    parser.add_argument("--builtin", choices=BUILTIN_IMAGES,
                        help="analyze a built-in guest image instead")
    parser.add_argument("--org", type=_number, default=None,
                        help="load address of the image "
                             "(default: guest kernel base)")
    parser.add_argument("--entry-ring", type=int, default=None,
                        choices=(0, 1, 2, 3),
                        help="privilege ring at the entry point")
    parser.add_argument("--monitor-base", type=_number, default=None,
                        help="base of the protected monitor region")
    parser.add_argument("--memory-size", type=_number,
                        default=DEFAULT_MEMORY_SIZE,
                        help="installed RAM used to derive the monitor "
                             "base when --monitor-base is absent")
    parser.add_argument("--fail-on", choices=("none", "info", "warning",
                                              "error"),
                        default="error",
                        help="lowest finding severity that makes the "
                             "exit status nonzero (default: error)")
    parser.add_argument("--json", action="store_true",
                        help="emit the report as JSON on stdout")
    parser.add_argument("--out", metavar="PATH",
                        help="also write the JSON report to a file")
    args = parser.parse_args(argv)

    if bool(args.image) == bool(args.builtin):
        parser.error("give exactly one of IMAGE or --builtin")

    monitor_base = args.monitor_base
    if monitor_base is None:
        monitor_base = firmware.monitor_base(args.memory_size)

    try:
        if args.builtin:
            image, origin, default_ring = build_builtin(args.builtin)
            if args.org is not None:
                origin = args.org
        else:
            image = Path(args.image).read_bytes()
            origin = args.org if args.org is not None \
                else firmware.GUEST_KERNEL_BASE
            default_ring = 0
        entry_ring = args.entry_ring if args.entry_ring is not None \
            else default_ring
        report = analyze_image(image, origin,
                               monitor_base=monitor_base,
                               entry_ring=entry_ring)
    except (ReproError, OSError) as exc:
        print(f"repro-analyze: {exc}", file=sys.stderr)
        return 2

    if args.out:
        from repro.obs.exporters import export_stats_json
        from repro.obs.metrics import collect_analysis
        export_stats_json(args.out, "static-analysis",
                          collect_analysis(report),
                          extra={"report": report.to_dict()})
    print(report.to_json() if args.json else report.format_text())
    return 1 if exceeds_threshold(report, args.fail_on) else 0


if __name__ == "__main__":
    sys.exit(main())
