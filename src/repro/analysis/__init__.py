"""Static analysis of HX32 guest images.

CFG recovery (linear sweep + recursive descent), an abstract
interpreter over a ring/stack-depth/value-set lattice, and a checker
catalogue that flags the bug classes the paper's monitor survives
dynamically — wild writes into the monitor region, privileged
instructions reachable at ring 3, runaway control flow — before the
guest ever runs.  See docs/INTERNALS.md §8.
"""

from repro.analysis.analyzer import (
    DEFAULT_MEMORY_SIZE,
    analyze_image,
    analyze_program,
)
from repro.analysis.checks import ALL_CHECKS, Analysis, Check, run_checks
from repro.analysis.report import (
    SEV_ERROR,
    SEV_INFO,
    SEV_WARNING,
    Finding,
    Report,
)

__all__ = [
    "DEFAULT_MEMORY_SIZE",
    "analyze_image",
    "analyze_program",
    "ALL_CHECKS",
    "Analysis",
    "Check",
    "run_checks",
    "SEV_ERROR",
    "SEV_INFO",
    "SEV_WARNING",
    "Finding",
    "Report",
]
