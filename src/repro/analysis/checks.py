"""The check catalogue.

Each check is a class with a stable ``id``, a default ``severity`` and a
``run`` generator producing :class:`repro.analysis.report.Finding`s from
the shared :class:`Analysis` context.  Adding a check means subclassing
:class:`Check` and appending to :data:`ALL_CHECKS` — docs/INTERNALS.md
§8 documents the catalogue and the recipe.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, Iterator, List, Optional, Set, \
    Tuple, Type

from repro.analysis import sema
from repro.analysis.absint import AbsResult
from repro.analysis.cfg import EDGE_CALL, BasicBlock, Cfg
from repro.analysis.interproc import CallGraph, FunctionSummary
from repro.analysis.report import (
    SEV_ERROR,
    SEV_INFO,
    SEV_WARNING,
    Finding,
)
from repro.hw import isa


@dataclass
class Analysis:
    """Everything the driver learned about one image, handed to checks."""

    image: bytes
    origin: int
    end: int
    monitor_base: int
    entry_ring: int
    cfg: Cfg
    absres: AbsResult
    #: Statically-discovered IDT: vector → handler addresses (in-image).
    handlers: Dict[int, FrozenSet[int]] = field(default_factory=dict)
    idt_base: int = -1
    iterations: int = 0
    #: Interprocedural facts (repro.analysis.interproc).
    call_graph: Optional[CallGraph] = None
    summaries: Dict[int, FunctionSummary] = field(default_factory=dict)
    #: Translation-validation results over the image's superblock
    #: candidates (repro.analysis.tv), empty when the audit was off.
    tv_results: List[Any] = field(default_factory=list)


class Check:
    """Base class: one bug-class detector over the analysis context."""

    id: str = "AN000"
    severity: str = SEV_ERROR
    title: str = "abstract check"

    def run(self, analysis: Analysis) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(self, address: int, message: str,
                severity: str = "") -> Finding:
        return Finding(check=self.id, severity=severity or self.severity,
                       address=address, message=message)


class WildWriteCheck(Check):
    """Stores whose resolved target reaches the monitor region."""

    id = "AN001"
    severity = SEV_ERROR
    title = "wild write into the monitor region"

    def run(self, analysis: Analysis) -> Iterator[Finding]:
        base = analysis.monitor_base
        for address in sorted(analysis.absres.store_targets):
            targets = analysis.absres.store_targets[address]
            if targets.is_top:
                continue
            bad = sorted(t for t in targets.concrete() if t >= base)
            if bad:
                insn = analysis.cfg.insn_at.get(address)
                what = insn.text if insn else "store"
                yield self.finding(
                    address,
                    f"{what} may write {bad[0]:#x} inside the monitor "
                    f"region (monitor base {base:#x})")


class PrivilegedRing3Check(Check):
    """Privileged instructions on paths reachable at ring 3."""

    id = "AN002"
    severity = SEV_ERROR
    title = "privileged instruction reachable at ring 3"

    def run(self, analysis: Analysis) -> Iterator[Finding]:
        for address in sorted(analysis.absres.insn_rings):
            insn = analysis.cfg.insn_at.get(address)
            if insn is None or insn.is_pseudo:
                continue
            spec = isa.SPECS[insn.opcode]
            if spec.privilege == isa.PRIV_NONE:
                continue
            rings = analysis.absres.insn_rings[address]
            if 3 in rings:
                yield self.finding(
                    address,
                    f"{insn.mnemonic} ({spec.privilege}) executes on a "
                    f"ring-3-reachable path — faults with #GP at CPL 3")


class OutOfImageTargetCheck(Check):
    """Control transfers to addresses outside the image."""

    id = "AN003"
    severity = SEV_ERROR
    title = "branch or call target outside the image"

    def run(self, analysis: Analysis) -> Iterator[Finding]:
        seen: Set[Tuple[int, int]] = set()
        for source, target, kind in analysis.cfg.out_of_image:
            if (source, target) in seen:
                continue
            seen.add((source, target))
            yield self.finding(
                source,
                f"{kind} target {target:#x} is outside the image "
                f"({analysis.origin:#x}..{analysis.end:#x})")
        for source, target in analysis.absres.resolved_out:
            if (source, target) in seen:
                continue
            seen.add((source, target))
            insn = analysis.cfg.insn_at.get(source)
            if insn is not None and insn.mnemonic == "CALLR":
                continue  # indirect calls are AN013's business
            if insn is not None and insn.mnemonic == "IRET":
                # IRET leaving the image is how a kernel launches code
                # in another image (e.g. the ring-3 task): legitimate,
                # but worth surfacing.
                yield self.finding(
                    source,
                    f"IRET transfers control to {target:#x} outside "
                    f"the image ({analysis.origin:#x}.."
                    f"{analysis.end:#x})",
                    severity=SEV_INFO)
                continue
            yield self.finding(
                source,
                f"indirect target {target:#x} is outside the image "
                f"({analysis.origin:#x}..{analysis.end:#x})")


class MisalignedTargetCheck(Check):
    """Branch targets that are not on a linear-sweep boundary."""

    id = "AN004"
    severity = SEV_ERROR
    title = "branch target inside another instruction"

    def run(self, analysis: Analysis) -> Iterator[Finding]:
        boundaries = {insn.address for insn in analysis.cfg.linear}
        seen: Set[Tuple[int, int]] = set()
        for source, target in analysis.cfg.branch_targets:
            if target in boundaries or (source, target) in seen:
                continue
            seen.add((source, target))
            yield self.finding(
                source,
                f"target {target:#x} is not on an instruction boundary")


class FallOffImageCheck(Check):
    """Execution that can run sequentially past the image end."""

    id = "AN005"
    severity = SEV_ERROR
    title = "fall-through past the image end"

    def run(self, analysis: Analysis) -> Iterator[Finding]:
        for address in sorted(set(analysis.cfg.fall_off)):
            insn = analysis.cfg.insn_at[address]
            yield self.finding(
                address,
                f"{insn.mnemonic} falls through past the image end "
                f"{analysis.end:#x} into unmapped bytes")


class UnreachableCodeCheck(Check):
    """Linear-sweep instructions no entry point can reach."""

    id = "AN006"
    severity = SEV_WARNING
    title = "unreachable code"

    def run(self, analysis: Analysis) -> Iterator[Finding]:
        covered: Set[int] = set()
        for insn in analysis.cfg.insn_at.values():
            covered.update(range(insn.address, insn.address + insn.length))
        region_start = -1
        region_insns = 0
        last_end = -1

        def flush() -> Iterator[Finding]:
            if region_start >= 0:
                yield self.finding(
                    region_start,
                    f"{region_insns} instruction(s) at "
                    f"{region_start:#x}..{last_end:#x} unreachable from "
                    f"any entry point")

        for insn in analysis.cfg.linear:
            if insn.address in covered:
                yield from flush()
                region_start = -1
                region_insns = 0
                continue
            if region_start < 0:
                region_start = insn.address
                region_insns = 0
            region_insns += 1
            last_end = insn.address + insn.length
        yield from flush()


class HandlerIretCheck(Check):
    """IDT-registered handlers must terminate in IRET."""

    id = "AN007"
    severity = SEV_ERROR
    title = "IDT handler path ends without IRET"

    def run(self, analysis: Analysis) -> Iterator[Finding]:
        reported: Set[Tuple[int, int]] = set()
        for vector in sorted(analysis.handlers):
            for handler in sorted(analysis.handlers[vector]):
                yield from self._walk(analysis, vector, handler, reported)

    def _walk(self, analysis: Analysis, vector: int, handler: int,
              reported: Set[Tuple[int, int]]) -> Iterator[Finding]:
        blocks = analysis.cfg.blocks
        if handler not in blocks:
            return
        seen = {handler}
        stack = [handler]
        while stack:
            block = blocks[stack.pop()]
            # Follow everything but the callee edge: a called helper
            # returns to the handler; its RET is not the handler's exit.
            onward = [t for t, kind in block.succs if kind != EDGE_CALL
                      and t in blocks]
            if not [t for t, _ in block.succs]:
                tail = block.last
                if tail.mnemonic != "IRET" \
                        and (handler, tail.address) not in reported:
                    reported.add((handler, tail.address))
                    yield self.finding(
                        tail.address,
                        f"handler {handler:#x} (vector {vector}) path "
                        f"ends in {tail.mnemonic} without IRET")
            for target in onward:
                if target not in seen:
                    seen.add(target)
                    stack.append(target)


class StackGrowthLoopCheck(Check):
    """Loops whose net stack delta is positive grow without bound."""

    id = "AN008"
    severity = SEV_ERROR
    title = "unbounded stack growth in a loop"

    def _block_effect(self, block: BasicBlock) -> Tuple[int, bool]:
        """(net stack delta in bytes, block re-points SP directly).

        Stack semantics are delegated to :mod:`repro.analysis.sema`
        (shared with the interprocedural summaries).  ``RET`` keeps its
        legacy weight of 0 here: this check walks call edges with an
        explicit +4, so the callee's return-address pop must not be
        double-counted.
        """
        delta = 0
        resets = False
        for insn in block.insns:
            name = insn.mnemonic
            if insn.is_pseudo:
                continue
            spec = isa.SPECS[insn.opcode]
            ops = isa.decode_operands(spec.fmt, insn.raw[1:])
            if name == "RET":
                continue
            step = sema.stack_delta(name, ops)
            if step is None:
                resets = True
            else:
                delta += step
        return delta, resets

    def run(self, analysis: Analysis) -> Iterator[Finding]:
        blocks = analysis.cfg.blocks
        effects = {start: self._block_effect(block)
                   for start, block in blocks.items()}
        color: Dict[int, int] = {}   # 0 absent/white, 1 grey, 2 black
        depth_at: Dict[int, int] = {}
        path: List[int] = []
        reported: Set[int] = set()
        findings: List[Finding] = []

        def edge_delta(source: int, kind: str) -> int:
            delta, _ = effects[source]
            return delta + (4 if kind == EDGE_CALL else 0)

        def visit(root: int) -> None:
            stack: List[Tuple[int, Iterator[Tuple[int, str]]]] = []
            color[root] = 1
            depth_at[root] = 0
            path.append(root)
            stack.append((root, iter(blocks[root].succs)))
            while stack:
                node, succs = stack[-1]
                advanced = False
                for target, kind in succs:
                    if target not in blocks:
                        continue
                    if color.get(target, 0) == 0:
                        color[target] = 1
                        depth_at[target] = depth_at[node] + \
                            edge_delta(node, kind)
                        path.append(target)
                        stack.append((target, iter(blocks[target].succs)))
                        advanced = True
                        break
                    if color.get(target) == 1:
                        loop_delta = depth_at[node] \
                            + edge_delta(node, kind) - depth_at[target]
                        cycle = path[path.index(target):]
                        has_reset = any(effects[b][1] for b in cycle)
                        if loop_delta > 0 and not has_reset \
                                and target not in reported:
                            reported.add(target)
                            findings.append(self.finding(
                                target,
                                f"loop at {target:#x} grows the stack by "
                                f"{loop_delta} byte(s) per iteration"))
                if not advanced:
                    stack.pop()
                    path.pop()
                    color[node] = 2

        for entry in sorted(analysis.cfg.entries):
            if entry in blocks and color.get(entry, 0) == 0:
                visit(entry)
        yield from findings


class UnknownIndirectCheck(Check):
    """Indirect jumps/calls the value-set domain could not resolve."""

    id = "AN009"
    severity = SEV_INFO
    title = "unresolved indirect control flow"

    def run(self, analysis: Analysis) -> Iterator[Finding]:
        for address in sorted(analysis.absres.unknown_indirect):
            insn = analysis.cfg.insn_at.get(address)
            name = insn.mnemonic if insn else "indirect"
            yield self.finding(
                address,
                f"{name} target register never resolved statically — "
                f"analysis is incomplete past this point")


class ReachableInvalidCheck(Check):
    """Execution reaches bytes that do not decode."""

    id = "AN010"
    severity = SEV_ERROR
    title = "reachable undecodable bytes"

    def run(self, analysis: Analysis) -> Iterator[Finding]:
        for address in sorted(analysis.cfg.insn_at):
            insn = analysis.cfg.insn_at[address]
            if insn.is_pseudo:
                yield self.finding(
                    address,
                    f"execution reaches undecodable byte "
                    f"{insn.raw[0]:#04x} (#UD at runtime)")


class TranslatedBlockGuardCheck(Check):
    """Superblocks the translation validator could not prove correct.

    The analyzer's ``tv_audit`` pass compiles every statically-visible
    hot-loop candidate with the real superblock engine and runs the
    symbolic equivalence prover over the result (repro.analysis.tv).
    Any failure — wrong effect, missing commit barrier, insufficient
    guard set, lost IRQ/SMC exit — lands here.
    """

    id = "AN011"
    severity = SEV_ERROR
    title = "translated block fails validation"

    def run(self, analysis: Analysis) -> Iterator[Finding]:
        for result in analysis.tv_results:
            if result.ok:
                continue
            detail = result.failures[0] if result.failures \
                else "unknown failure"
            more = len(result.failures) - 1
            suffix = f" (+{more} more)" if more > 0 else ""
            yield self.finding(
                result.entry_pc,
                f"superblock at {result.entry_pc:#x} fails translation "
                f"validation: {detail}{suffix}")


class CallStackImbalanceCheck(Check):
    """Functions whose RET pops a word that is not the return address.

    Uses the interprocedural summaries: a function is flagged when some
    RET path has a provably nonzero net stack delta (pushes minus pops,
    callees included).  Such a RET jumps to whatever the imbalance left
    on top of the stack.
    """

    id = "AN012"
    severity = SEV_ERROR
    title = "cross-function stack imbalance"

    def run(self, analysis: Analysis) -> Iterator[Finding]:
        for entry in sorted(analysis.summaries):
            summary = analysis.summaries[entry]
            if summary.balanced or summary.clobbers_all \
                    or summary.resets_sp:
                continue
            bad = sorted(d for d in summary.ret_deltas if d != 0)
            if not bad:
                continue
            yield self.finding(
                entry,
                f"function at {entry:#x} returns with a net stack "
                f"delta of {bad[0]} byte(s) — RET pops a non-return-"
                f"address word")


class IndirectCallEscapeCheck(Check):
    """Resolved CALLR whose target set escapes the image."""

    id = "AN013"
    severity = SEV_ERROR
    title = "indirect call target outside the image"

    def run(self, analysis: Analysis) -> Iterator[Finding]:
        seen: Set[Tuple[int, int]] = set()
        for source, target in analysis.absres.resolved_out:
            insn = analysis.cfg.insn_at.get(source)
            if insn is None or insn.mnemonic != "CALLR":
                continue
            if (source, target) in seen:
                continue
            seen.add((source, target))
            yield self.finding(
                source,
                f"CALLR target {target:#x} is outside the image "
                f"({analysis.origin:#x}..{analysis.end:#x}) — the "
                f"callee cannot return into analyzed code")


#: The shipped catalogue, in id order.
ALL_CHECKS: List[Type[Check]] = [
    WildWriteCheck,
    PrivilegedRing3Check,
    OutOfImageTargetCheck,
    MisalignedTargetCheck,
    FallOffImageCheck,
    UnreachableCodeCheck,
    HandlerIretCheck,
    StackGrowthLoopCheck,
    UnknownIndirectCheck,
    ReachableInvalidCheck,
    TranslatedBlockGuardCheck,
    CallStackImbalanceCheck,
    IndirectCallEscapeCheck,
]


def run_checks(analysis: Analysis) -> List[Finding]:
    findings: List[Finding] = []
    for check_class in ALL_CHECKS:
        findings.extend(check_class().run(analysis))
    return findings
