"""Lift generated superblock Python source into the symbolic trace.

The translator emits blocks in a rigid idiom: a ``_factory`` binding
the fault class, budget category and the per-instruction handlers, a
``_block(cpu)`` whose preamble binds the register file and counters to
locals, a ``try``/``while True`` body, and a commit epilogue.  This
module re-parses that source with :mod:`ast` and symbolically executes
the loop body, producing the event trace of :mod:`.events`:

* the fixed skeleton (preamble, except clause, epilogue) is matched
  statement-for-statement against templates — any deviation is a
  :class:`TvStructureError`;
* the body is interpreted: local assignments build symbolic
  expressions, commit statements update the tracked committed state,
  handler calls emit :class:`~repro.analysis.tv.events.Barrier` +
  :class:`~repro.analysis.tv.events.HandlerCall` (with the handler's
  register havoc applied from the *binding table*, which the validator
  separately checks against the decoded instructions), and the
  IRQ/SMC/pacing/terminator conditionals emit their exit events.

The lifter never consults the decoded instruction list — everything it
produces comes from the emitted source plus the handler binding table,
so comparing its trace against :mod:`.lift_guest` is a genuine
two-sided check.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.analysis import sema
from repro.analysis.tv.events import (
    Barrier,
    CondExit,
    CondTerm,
    Event,
    Exit,
    HandlerCall,
    IrqExit,
    LoopEdge,
    Pacing,
    SmcExit,
    State,
)

Expr = Tuple[Any, ...]


class TvStructureError(Exception):
    """The source does not follow the translator's structural contract."""


@dataclass
class LiftedBlock:
    """The symbolic trace plus the structural facts the lifter saw."""

    events: List[Event]
    binds_irq: bool
    binds_gens: bool
    binds_limits: bool
    handler_count: int


# -- template matching -------------------------------------------------------

_TEMPLATES: Dict[str, str] = {}


def _template(source: str) -> str:
    dump = _TEMPLATES.get(source)
    if dump is None:
        dump = ast.dump(ast.parse(source).body[0])
        _TEMPLATES[source] = dump
    return dump


def _matches(stmt: ast.stmt, source: str) -> bool:
    return ast.dump(stmt) == _template(source)


def _require(stmt: ast.stmt, source: str, where: str) -> None:
    if not _matches(stmt, source):
        raise TvStructureError(
            f"{where}: expected `{source.splitlines()[0]}`, found "
            f"`{ast.dump(stmt)[:120]}`")


_PREAMBLE = (
    "regs = cpu.regs",
    "f = cpu.flags",
    "ir = cpu.instret",
    "ir0 = ir",
    "cy = cpu.cycle_count",
    "chg = 0",
    "saved = 0",
    "charge = cpu.budget.charge",
)

_EXCEPT_BODY = (
    "cpu.block_extra_steps = ir - ir0",
    "cpu._handle_fault(fault, saved)",
    "return",
)

_EPILOGUE = (
    "cpu.flags = f",
    "cpu.instret = ir",
    "cpu.cycle_count = cy",
    "if chg:\n    charge(chg, GUEST)",
    "cpu.block_extra_steps = ir - ir0 - 1",
)

_CHARGE_FLUSH = "if chg:\n    charge(chg, GUEST)\n    chg = 0"
_IRQ_CHECK = "if irq is not None and irq.has_pending():\n    break"


# -- AST helpers -------------------------------------------------------------


def _int_const(node: ast.expr) -> Optional[int]:
    if isinstance(node, ast.Constant) and isinstance(node.value, int) \
            and not isinstance(node.value, bool):
        return node.value
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
        inner = _int_const(node.operand)
        if inner is not None:
            return -inner
    return None


def _is_name(node: ast.expr, name: str) -> bool:
    return isinstance(node, ast.Name) and node.id == name


def _is_cpu_attr(node: ast.expr, attr: str) -> bool:
    return (isinstance(node, ast.Attribute) and node.attr == attr
            and _is_name(node.value, "cpu"))


def _reg_index(node: ast.expr) -> Optional[int]:
    """``regs[i]`` -> i."""
    if not isinstance(node, ast.Subscript) \
            or not _is_name(node.value, "regs"):
        return None
    index = node.slice
    if isinstance(index, ast.Index):  # Python < 3.9 compatibility
        index = index.value  # type: ignore[attr-defined]
    return _int_const(index)


_BINOPS: Dict[type, str] = {
    ast.Add: "add", ast.Sub: "sub", ast.BitAnd: "and", ast.BitOr: "or",
    ast.BitXor: "xor", ast.LShift: "shl", ast.RShift: "shr",
    ast.Mult: "mul", ast.FloorDiv: "floordiv",
}


class _Lifter:
    """Symbolic executor over one ``_block`` loop body."""

    def __init__(self, handlers: List[Tuple[str, Any]],
                 entry_pc: int) -> None:
        self.handlers = handlers
        self.regs: List[Expr] = [sema.reg(i) for i in range(8)]
        self.f: Expr = sema.FLAGS
        self.locals: Dict[str, Expr] = {}
        self.ir = 0
        self.cy = 0
        self.chg = 0
        #: Current value of ``cpu.flags`` (committed or handler-written).
        self.cpu_flags: Expr = sema.FLAGS
        self.committed_ir = 0
        self.committed_cy = 0
        self.committed_pc = entry_pc
        self.saved = -1
        self.pending_flush: Optional[int] = None
        self.handler_index = 0
        self.events: List[Event] = []
        self.terminated = False

    # -- expression lifting ------------------------------------------------

    def lift_expr(self, node: ast.expr) -> Expr:
        value = _int_const(node)
        if value is not None:
            return sema.const(value)
        if isinstance(node, ast.Name):
            if node.id == "f":
                return self.f
            if node.id in self.locals:
                return self.locals[node.id]
            raise TvStructureError(f"unbound local `{node.id}`")
        index = _reg_index(node)
        if index is not None:
            if not 0 <= index < 8:
                raise TvStructureError(f"register index {index} out of range")
            return self.regs[index]
        if isinstance(node, ast.BinOp):
            op = _BINOPS.get(type(node.op))
            if op is None:
                raise TvStructureError(
                    f"unsupported operator {type(node.op).__name__}")
            return (op, self.lift_expr(node.left),
                    self.lift_expr(node.right))
        if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.Invert):
            return ("invert", self.lift_expr(node.operand))
        if isinstance(node, ast.IfExp):
            return ("cond", self.lift_bool(node.test),
                    self.lift_expr(node.body),
                    self.lift_expr(node.orelse))
        raise TvStructureError(
            f"unsupported expression `{ast.dump(node)[:80]}`")

    def lift_bool(self, node: ast.expr) -> Expr:
        if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.Not):
            return ("not", self.lift_bool(node.operand))
        if isinstance(node, ast.BoolOp):
            kind = "or-b" if isinstance(node.op, ast.Or) else "and-b"
            out = self.lift_bool(node.values[0])
            for value in node.values[1:]:
                out = (kind, out, self.lift_bool(value))
            return out
        if isinstance(node, ast.Compare) and len(node.ops) == 1:
            op = node.ops[0]
            left, right = node.left, node.comparators[0]
            if isinstance(op, ast.Eq) and _int_const(right) == 0:
                return ("eq0", self.lift_expr(left))
            if isinstance(op, ast.Lt):
                return ("lt", self.lift_expr(left), self.lift_expr(right))
            raise TvStructureError(
                f"unsupported comparison `{ast.dump(node)[:80]}`")
        return ("truthy", self.lift_expr(node))

    # -- state -------------------------------------------------------------

    def state(self) -> State:
        return State(regs=tuple(self.regs), flags=self.f,
                     ir=self.ir, cy=self.cy, chg=self.chg)

    # -- statement dispatch ------------------------------------------------

    def run(self, stmts: List[ast.stmt]) -> None:
        i = 0
        while i < len(stmts):
            if self.terminated:
                raise TvStructureError(
                    "statements after the block's terminal exit")
            i = self._step(stmts, i)
        if not self.terminated:
            self.events.append(LoopEdge(state=self.state()))

    def _step(self, stmts: List[ast.stmt], i: int) -> int:
        stmt = stmts[i]
        if isinstance(stmt, ast.If):
            return self._if_stmt(stmts, i)
        if isinstance(stmt, ast.Assign):
            self._assign(stmts, i, stmt)
            # `cpu.pc = C` directly followed by `break` is an exit.
            if len(stmt.targets) == 1 \
                    and _is_cpu_attr(stmt.targets[0], "pc") \
                    and i + 1 < len(stmts) \
                    and isinstance(stmts[i + 1], ast.Break):
                self.events.append(Exit(pc=self.committed_pc,
                                        state=self.state()))
                self.terminated = True
                return i + 2
            return i + 1
        if isinstance(stmt, ast.AugAssign):
            self._aug_assign(stmt)
            return i + 1
        if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Call):
            self._handler_call(stmt.value)
            return i + 1
        raise TvStructureError(
            f"unsupported statement `{ast.dump(stmt)[:80]}`")

    # -- conditionals ------------------------------------------------------

    def _if_stmt(self, stmts: List[ast.stmt], i: int) -> int:
        stmt = stmts[i]
        assert isinstance(stmt, ast.If)
        if _matches(stmt, _CHARGE_FLUSH):
            self.pending_flush = self.chg
            self.chg = 0
            return i + 1
        if _matches(stmt, _IRQ_CHECK):
            self.events.append(IrqExit(pc=self.committed_pc,
                                       state=self.state()))
            return i + 1
        smc = self._match_smc(stmt)
        if smc is not None:
            page, generation = smc
            self.events.append(SmcExit(page=page, generation=generation,
                                       pc=self.committed_pc,
                                       state=self.state()))
            return i + 1
        pacing = self._match_pacing(stmt)
        if pacing is not None:
            if i != 0 or self.ir != 0:
                raise TvStructureError("pacing check not at the loop top")
            self.events.append(pacing)
            return i + 1
        # Conditional exits / terminators.
        if not stmt.orelse:
            if len(stmt.body) == 2 \
                    and isinstance(stmt.body[0], ast.Assign) \
                    and isinstance(stmt.body[1], ast.Break):
                target = self._exit_pc(stmt.body[0])
                self.events.append(CondExit(
                    cond=self.lift_bool(stmt.test), pc=target,
                    state=self.state()))
                return i + 1
            raise TvStructureError(
                f"unrecognised conditional `{ast.dump(stmt)[:100]}`")
        if len(stmt.body) == 1 and len(stmt.orelse) == 1 \
                and isinstance(stmt.body[0], ast.Assign) \
                and isinstance(stmt.orelse[0], ast.Assign) \
                and i + 1 < len(stmts) \
                and isinstance(stmts[i + 1], ast.Break):
            taken = self._exit_pc(stmt.body[0])
            fall = self._exit_pc(stmt.orelse[0])
            self.events.append(CondTerm(
                cond=self.lift_bool(stmt.test), taken=taken, fall=fall,
                state=self.state()))
            self.terminated = True
            return i + 2
        raise TvStructureError(
            f"unrecognised conditional `{ast.dump(stmt)[:100]}`")

    @staticmethod
    def _exit_pc(stmt: ast.stmt) -> int:
        assert isinstance(stmt, ast.Assign)
        if len(stmt.targets) != 1 \
                or not _is_cpu_attr(stmt.targets[0], "pc"):
            raise TvStructureError("exit edge does not assign cpu.pc")
        value = _int_const(stmt.value)
        if value is None:
            raise TvStructureError("exit PC is not a constant")
        return value

    def _match_smc(self, stmt: ast.If) -> Optional[Tuple[int, int]]:
        test = stmt.test
        if not (isinstance(test, ast.Compare) and len(test.ops) == 1
                and isinstance(test.ops[0], ast.NotEq)):
            return None
        left = test.left
        if not (isinstance(left, ast.Subscript)
                and _is_name(left.value, "gens")):
            return None
        index = left.slice
        if isinstance(index, ast.Index):  # Python < 3.9 compatibility
            index = index.value  # type: ignore[attr-defined]
        page = _int_const(index)
        generation = _int_const(test.comparators[0])
        if page is None or generation is None:
            return None
        if len(stmt.body) != 1 or not isinstance(stmt.body[0], ast.Break) \
                or stmt.orelse:
            raise TvStructureError("malformed SMC generation check")
        return page, generation

    def _match_pacing(self, stmt: ast.If) -> Optional[Pacing]:
        test = stmt.test
        if not (isinstance(test, ast.BoolOp) and isinstance(test.op, ast.Or)
                and len(test.values) == 2):
            return None

        def limit(node: ast.expr, counter: str,
                  bound: str) -> Optional[int]:
            if not (isinstance(node, ast.Compare) and len(node.ops) == 1
                    and isinstance(node.ops[0], ast.Gt)
                    and _is_name(node.comparators[0], bound)
                    and isinstance(node.left, ast.BinOp)
                    and isinstance(node.left.op, ast.Add)
                    and _is_name(node.left.left, counter)):
                return None
            return _int_const(node.left.right)

        insns = limit(test.values[0], "ir", "li")
        cycles = limit(test.values[1], "cy", "lc")
        if insns is None or cycles is None:
            return None
        if len(stmt.body) != 2 or not isinstance(stmt.body[1], ast.Break) \
                or stmt.orelse:
            raise TvStructureError("malformed pacing check")
        return Pacing(insns=insns, cycles=cycles,
                      exit_pc=self._exit_pc(stmt.body[0]))

    # -- assignments -------------------------------------------------------

    def _assign(self, stmts: List[ast.stmt], i: int,
                stmt: ast.Assign) -> None:
        if len(stmt.targets) != 1:
            raise TvStructureError("multi-target assignment")
        target = stmt.targets[0]
        if isinstance(target, ast.Tuple):
            self._tuple_assign(target, stmt.value)
            return
        if isinstance(target, ast.Name):
            name = target.id
            if name == "f":
                if _is_cpu_attr(stmt.value, "flags"):
                    self.f = self.cpu_flags
                else:
                    self.f = self.lift_expr(stmt.value)
                return
            if name == "saved":
                value = _int_const(stmt.value)
                if value is None:
                    raise TvStructureError("saved PC is not a constant")
                self.saved = value
                return
            if name in ("a", "b", "t", "m"):
                self.locals[name] = self.lift_expr(stmt.value)
                return
            raise TvStructureError(f"assignment to unexpected `{name}`")
        index = _reg_index(target)
        if index is not None:
            if not 0 <= index < 8:
                raise TvStructureError(f"register index {index} out of range")
            self.regs[index] = self.lift_expr(stmt.value)
            return
        if _is_cpu_attr(target, "flags"):
            if not _is_name(stmt.value, "f"):
                raise TvStructureError("cpu.flags committed from non-`f`")
            self.cpu_flags = self.f
            return
        if _is_cpu_attr(target, "instret"):
            if not _is_name(stmt.value, "ir"):
                raise TvStructureError("cpu.instret committed from non-`ir`")
            self.committed_ir = self.ir
            return
        if _is_cpu_attr(target, "cycle_count"):
            if not _is_name(stmt.value, "cy"):
                raise TvStructureError(
                    "cpu.cycle_count committed from non-`cy`")
            self.committed_cy = self.cy
            return
        if _is_cpu_attr(target, "pc"):
            value = _int_const(stmt.value)
            if value is None:
                raise TvStructureError("cpu.pc set to a non-constant")
            self.committed_pc = value
            return
        raise TvStructureError(
            f"unsupported assignment target `{ast.dump(target)[:80]}`")

    def _tuple_assign(self, target: ast.Tuple, value: ast.expr) -> None:
        if not isinstance(value, ast.Tuple) \
                or len(target.elts) != len(value.elts):
            raise TvStructureError("malformed tuple assignment")
        indices: List[int] = []
        for element in target.elts:
            index = _reg_index(element)
            if index is None or not 0 <= index < 8:
                raise TvStructureError("tuple assignment to non-register")
            indices.append(index)
        new = [self.lift_expr(element) for element in value.elts]
        for index, expr in zip(indices, new):
            self.regs[index] = expr

    def _aug_assign(self, stmt: ast.AugAssign) -> None:
        if not isinstance(stmt.op, ast.Add) \
                or not isinstance(stmt.target, ast.Name):
            raise TvStructureError("unsupported augmented assignment")
        amount = _int_const(stmt.value)
        if amount is None:
            raise TvStructureError("counter increment is not a constant")
        name = stmt.target.id
        if name == "ir":
            self.ir += amount
        elif name == "cy":
            self.cy += amount
        elif name == "chg":
            self.chg += amount
        else:
            raise TvStructureError(f"augmented assignment to `{name}`")

    # -- handler dispatch --------------------------------------------------

    def _handler_call(self, call: ast.Call) -> None:
        func = call.func
        if not isinstance(func, ast.Name) or not func.id.startswith("h"):
            raise TvStructureError(
                f"unexpected call `{ast.dump(call)[:80]}`")
        try:
            index = int(func.id[1:])
        except ValueError:
            raise TvStructureError(f"unexpected call to `{func.id}`") \
                from None
        if index != self.handler_index:
            raise TvStructureError(
                f"handler h{index} called out of order "
                f"(expected h{self.handler_index})")
        if index >= len(self.handlers):
            raise TvStructureError(f"handler h{index} has no binding")
        if len(call.args) != 1 or call.keywords \
                or not _is_name(call.args[0], f"o{index}"):
            raise TvStructureError(
                f"handler h{index} not called with o{index}")
        if self.pending_flush is None:
            raise TvStructureError(
                f"no budget flush before handler h{index}")
        self.events.append(Barrier(
            flags=self.cpu_flags, ir=self.committed_ir,
            cy=self.committed_cy, chg=self.pending_flush,
            saved=self.saved, next_pc=self.committed_pc,
            regs=tuple(self.regs)))
        self.pending_flush = None
        self.events.append(HandlerCall(index=index))
        name, operands = self.handlers[index]
        mnemonic = name[4:].upper()
        for written in sema.handler_written_regs(mnemonic, operands):
            self.regs[written] = sema.havoc_reg(index, written)
        if mnemonic in sema.HANDLER_WRITES_FLAGS:
            self.cpu_flags = sema.havoc_flags(index)
        self.handler_index += 1


# -- skeleton ----------------------------------------------------------------


def _parse_factory(source: str,
                   handler_count: int) -> ast.FunctionDef:
    tree = ast.parse(source)
    if len(tree.body) != 1 or not isinstance(tree.body[0], ast.FunctionDef):
        raise TvStructureError("source is not a single factory function")
    factory = tree.body[0]
    if factory.name != "_factory":
        raise TvStructureError(f"factory named `{factory.name}`")
    expected = ["Fault", "GUEST"]
    for index in range(handler_count):
        expected += [f"h{index}", f"o{index}"]
    actual = [arg.arg for arg in factory.args.args]
    if actual != expected:
        raise TvStructureError(
            f"factory parameters {actual} != expected {expected}")
    return factory


def lift_python_block(source: str, handlers: List[Tuple[str, Any]],
                      entry_pc: int) -> LiftedBlock:
    """Lift one generated block; raises :class:`TvStructureError`."""
    factory = _parse_factory(source, len(handlers))
    if len(factory.body) != 2 \
            or not isinstance(factory.body[0], ast.FunctionDef) \
            or not isinstance(factory.body[1], ast.Return) \
            or not _is_name(factory.body[1].value or ast.Name(id=""),
                            "_block"):
        raise TvStructureError("factory body is not `_block` + return")
    block = factory.body[0]
    if block.name != "_block" \
            or [arg.arg for arg in block.args.args] != ["cpu"]:
        raise TvStructureError("inner function is not `_block(cpu)`")

    stmts = list(block.body)
    for line in _PREAMBLE:
        if not stmts:
            raise TvStructureError("preamble truncated")
        _require(stmts.pop(0), line, "preamble")
    binds_irq = bool(stmts) and _matches(stmts[0], "irq = cpu.irq_source")
    if binds_irq:
        stmts.pop(0)
    binds_gens = bool(stmts) \
        and _matches(stmts[0], "gens = cpu.memory.page_gens")
    if binds_gens:
        stmts.pop(0)
    binds_limits = bool(stmts) \
        and _matches(stmts[0], "li = cpu.block_instret_limit")
    if binds_limits:
        stmts.pop(0)
        if not stmts:
            raise TvStructureError("preamble truncated")
        _require(stmts.pop(0), "lc = cpu.block_cycle_limit", "preamble")

    if not stmts or not isinstance(stmts[0], ast.Try):
        raise TvStructureError("missing try block")
    try_stmt = stmts.pop(0)
    if len(try_stmt.body) != 1 \
            or not isinstance(try_stmt.body[0], ast.While) \
            or try_stmt.orelse or try_stmt.finalbody:
        raise TvStructureError("try body is not a single while loop")
    loop = try_stmt.body[0]
    test = loop.test
    if not (isinstance(test, ast.Constant) and test.value is True) \
            or loop.orelse:
        raise TvStructureError("loop is not `while True`")
    if len(try_stmt.handlers) != 1:
        raise TvStructureError("expected exactly one except clause")
    handler = try_stmt.handlers[0]
    if handler.type is None or not _is_name(handler.type, "Fault") \
            or handler.name != "fault" \
            or len(handler.body) != len(_EXCEPT_BODY):
        raise TvStructureError("malformed fault handler")
    for stmt, line in zip(handler.body, _EXCEPT_BODY):
        _require(stmt, line, "fault handler")

    if len(stmts) != len(_EPILOGUE):
        raise TvStructureError(
            f"epilogue has {len(stmts)} statements, expected "
            f"{len(_EPILOGUE)}")
    for stmt, line in zip(stmts, _EPILOGUE):
        _require(stmt, line, "epilogue")

    lifter = _Lifter(handlers, entry_pc)
    lifter.run(list(loop.body))
    return LiftedBlock(events=lifter.events, binds_irq=binds_irq,
                       binds_gens=binds_gens, binds_limits=binds_limits,
                       handler_count=lifter.handler_index)
