"""Lift a decoded HX32 instruction sequence into the symbolic trace.

This is the *reference* side of the translation validator: it walks the
decoded instructions a superblock was compiled from and composes
:mod:`repro.analysis.sema` effects into the same event-trace shape
:mod:`.lift_py` produces from the generated source.  The derivations
(terminator split, fall-through/taken PCs, loop detection, accounting
offsets, barrier placement, IRQ/SMC exit points) follow the translation
contract documented in :mod:`repro.interp.translate`; the *formulas*
come from :mod:`repro.analysis.sema`, which is differentially tested
against the interpreter — so agreement between the two lifted traces
means the generated code agrees with the interpreter.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Tuple

from repro.analysis import sema
from repro.analysis.tv.events import (
    Barrier,
    CondExit,
    CondTerm,
    Event,
    Exit,
    HandlerCall,
    IrqExit,
    LoopEdge,
    Pacing,
    SmcExit,
    State,
)

#: (pc, spec, operands) — the decoded-trace element the engine records.
Insn = Tuple[int, Any, Any]

_MASK = 0xFFFFFFFF


@dataclass
class GuestBlock:
    """Reference trace plus the facts the generated code must reflect."""

    events: List[Event]
    handlers: List[Tuple[str, Any]]
    total_insns: int
    total_cycles: int
    has_mem: bool
    has_store: bool
    loop: bool
    fall_through: int
    total_bytes: int


def reference_events(insns: List[Insn], entry_pc: int, page: int,
                     generation: int) -> GuestBlock:
    """Build the reference event trace for one decoded trace."""
    if not insns:
        raise ValueError("empty instruction trace")

    last_pc, last_spec, last_ops = insns[-1]
    terminator = last_spec.mnemonic \
        if last_spec.mnemonic in sema.TERMINATORS else None
    body = insns[:-1] if terminator else insns
    fall_through = (last_pc + last_spec.length) & _MASK
    taken = (fall_through + last_ops) & _MASK if terminator else None
    loop = terminator is not None and taken == entry_pc

    total_insns = len(insns)
    total_cycles = sum(spec.cycles for _pc, spec, _o in insns)
    total_bytes = sum(spec.length for _pc, spec, _o in insns)
    has_mem = any(spec.mnemonic in sema.MEMORY for _pc, spec, _o in body)
    has_store = any(spec.mnemonic in sema.STORE for _pc, spec, _o in body)

    regs: List[Any] = [sema.reg(i) for i in range(8)]
    f = sema.FLAGS
    ir = 0
    cy = 0
    charged = 0
    handler_index = 0
    handlers: List[Tuple[str, Any]] = []
    events: List[Event] = []

    if loop:
        events.append(Pacing(insns=total_insns, cycles=total_cycles,
                             exit_pc=entry_pc))

    for pc, spec, operands in body:
        mnemonic = spec.mnemonic
        if mnemonic in sema.INLINE:
            effect = sema.inline_effect(mnemonic, operands,
                                        tuple(regs), f)
            if effect.regs:
                updated = list(regs)
                for index, value in effect.regs.items():
                    updated[index] = value
                regs = updated
            if effect.flags is not None:
                f = effect.flags
            ir += 1
            cy += spec.cycles
            continue
        # Handler-executed instruction: the commit barrier observes the
        # state *before* it; the exit checks observe the state after.
        next_pc = (pc + spec.length) & _MASK
        handlers.append(("_op_" + mnemonic.lower(), operands))
        events.append(Barrier(flags=f, ir=ir, cy=cy, chg=cy - charged,
                              saved=pc, next_pc=next_pc,
                              regs=tuple(regs)))
        charged = cy
        events.append(HandlerCall(index=handler_index))
        for written in sema.handler_written_regs(mnemonic, operands):
            regs[written] = sema.havoc_reg(handler_index, written)
        if mnemonic in sema.HANDLER_WRITES_FLAGS:
            f = sema.havoc_flags(handler_index)
        ir += 1
        cy += spec.cycles
        state = State(regs=tuple(regs), flags=f, ir=ir, cy=cy,
                      chg=cy - charged)
        if mnemonic in sema.MEMORY:
            events.append(IrqExit(pc=next_pc, state=state))
        if mnemonic in sema.STORE:
            events.append(SmcExit(page=page, generation=generation,
                                  pc=next_pc, state=state))
        handler_index += 1

    terminated = False
    if terminator:
        ir += 1
        cy += last_spec.cycles
        state = State(regs=tuple(regs), flags=f, ir=ir, cy=cy,
                      chg=cy - charged)
        assert taken is not None
        if terminator == "JMP":
            if not loop:
                events.append(Exit(pc=taken, state=state))
                terminated = True
        elif loop:
            _taken_cond, not_taken = sema.branch_conditions(terminator, f)
            events.append(CondExit(cond=not_taken, pc=fall_through,
                                   state=state))
        else:
            taken_cond, _not_taken = sema.branch_conditions(terminator, f)
            events.append(CondTerm(cond=taken_cond, taken=taken,
                                   fall=fall_through, state=state))
            terminated = True
    else:
        state = State(regs=tuple(regs), flags=f, ir=ir, cy=cy,
                      chg=cy - charged)
        events.append(Exit(pc=fall_through, state=state))
        terminated = True

    if not terminated:
        events.append(LoopEdge(state=State(regs=tuple(regs), flags=f,
                                           ir=ir, cy=cy,
                                           chg=cy - charged)))

    return GuestBlock(events=events, handlers=handlers,
                      total_insns=total_insns, total_cycles=total_cycles,
                      has_mem=has_mem, has_store=has_store, loop=loop,
                      fall_through=fall_through, total_bytes=total_bytes)
