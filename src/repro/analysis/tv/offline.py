"""Offline translation validation of whole guest images.

Finds every statically-visible hot-loop candidate in a flat HX32 image
(targets of backward JMP/Jcc/CALL transfers — the same signal the
live engine's ``note_backward`` counter uses), compiles each one with
a real :class:`repro.interp.translate.SuperblockEngine` on a scratch
CPU, and runs :func:`repro.analysis.tv.validator.validate_block` over
everything that compiled.  This is what the ``repro-tv`` CLI, the CI
``tv`` job and the analyzer's AN011 check drive.

Dynamically-discovered entries (indirect branches, profiler samples)
can be added via ``extra_entries``; candidates the engine *refuses*
(trace too short, unmapped entry) are reported separately — a refusal
is not a validation failure, it just means no block was installed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Iterable, List

from repro.analysis import sema
from repro.analysis.tv.validator import TvResult, validate_block
from repro.asm.disasm import decode_range
from repro.hw import Cpu, IoBus, PhysicalMemory, firmware, isa

#: Matches the analyzer's canonical 16 MiB test machine.
DEFAULT_MEMORY_SIZE = 16 << 20

#: Statically-resolvable control transfers (FMT_REL) whose backward
#: targets the live engine would warm towards compilation.
_REL_CONTROL = sema.CONDITIONAL_BRANCHES | frozenset({"JMP", "CALL"})


def backward_targets(image: bytes, origin: int) -> List[int]:
    """Distinct backward-transfer targets, in image order."""
    seen = set()
    targets: List[int] = []
    end = origin + len(image)
    for insn in decode_range(bytes(image), origin):
        if insn.mnemonic not in _REL_CONTROL:
            continue
        rel = isa.signed32(int.from_bytes(insn.raw[1:5], "little"))
        target = isa.mask32(insn.address + insn.length + rel)
        if target < insn.address and origin <= target < end \
                and target not in seen:
            seen.add(target)
            targets.append(target)
    return targets


@dataclass
class OfflineReport:
    """Validation results for every compiled candidate of one image."""

    origin: int
    candidates: List[int]
    #: Candidates the engine declined to compile (no block to check).
    refused: List[int]
    results: List[TvResult] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(result.ok for result in self.results)

    @property
    def failed(self) -> List[TvResult]:
        return [result for result in self.results if not result.ok]

    def format_text(self) -> str:
        lines = [result.summary() for result in self.results]
        for result in self.failed:
            for message in result.failures:
                lines.append(f"    {message}")
        lines.append(
            f"{len(self.results)} block(s) validated, "
            f"{len(self.failed)} failed, {len(self.refused)} candidate(s) "
            f"refused by the engine")
        return "\n".join(lines)


def validate_image(image: bytes, origin: int, *,
                   memory_size: int = DEFAULT_MEMORY_SIZE,
                   extra_entries: Iterable[int] = ()) -> OfflineReport:
    """Compile and validate every superblock candidate of an image."""
    memory = PhysicalMemory(memory_size)
    cpu = Cpu(memory, IoBus(), translate=True)
    firmware.install_flat_firmware(cpu)
    memory.write(origin, bytes(image))

    engine = cpu._sb_engine
    assert engine is not None
    descriptor = cpu.segments[0].descriptor

    candidates = backward_targets(image, origin)
    for entry in extra_entries:
        if entry not in candidates:
            candidates.append(entry)

    refused: List[int] = []
    report = OfflineReport(origin=origin, candidates=candidates,
                           refused=refused)
    for target in candidates:
        linear = (descriptor.base + target) & 0xFFFFFFFF
        if linear not in engine.blocks:
            engine._compile(target, linear, descriptor)
        if linear not in engine.blocks:
            refused.append(target)
            continue
        report.results.append(
            validate_block(engine.block_meta[linear],
                           block=engine.blocks[linear],
                           page_gens=memory.page_gens))
    return report


def validate_program(program, **kwargs) -> OfflineReport:
    """Validate an assembled :class:`repro.asm.assembler.Program`."""
    return validate_image(program.image, program.origin, **kwargs)


# ---------------------------------------------------------------------------
# Seeded random programs — the validator's false-positive fuzzer.

_FUZZ_ORIGIN = 0x4000
_FUZZ_SCRATCH = 0x9000
_FUZZ_REGS = (1, 2, 3, 4, 5)
_FUZZ_ALU_RI = ("ADDI", "SUBI", "ANDI", "ORI", "XORI")
_FUZZ_ALU_RR = ("ADD", "SUB", "AND", "OR", "XOR", "MOV")
_FUZZ_JCC = ("JZ", "JNZ", "JC", "JNC", "JS", "JNS")


def _fuzz_body(rng: random.Random, index: int) -> List[str]:
    """One random loop-body fragment (same mix the JIT tests use)."""
    kind = rng.randrange(8)
    reg = rng.choice(_FUZZ_REGS)
    other = rng.choice(_FUZZ_REGS)
    if kind == 0:
        return [f"    {rng.choice(_FUZZ_ALU_RI)} R{reg}, "
                f"{rng.randrange(1, 0xFFFF)}"]
    if kind == 1:
        return [f"    {rng.choice(_FUZZ_ALU_RR)} R{reg}, R{other}"]
    if kind == 2:
        op = rng.choice(("SHLI", "SHRI"))
        return [f"    {op} R{reg}, {rng.randrange(1, 12)}"]
    if kind == 3:
        return [f"    LD R{reg}, [R6+{4 * rng.randrange(0, 8)}]"]
    if kind == 4:
        return [f"    ST [R6+{4 * rng.randrange(0, 8)}], R{reg}"]
    if kind == 5:
        op = rng.choice(("CMP", "TEST"))
        return [f"    {op} R{reg}, R{other}"]
    if kind == 6:
        jcc = rng.choice(_FUZZ_JCC)
        return [f"    {jcc} fuzz_skip_{index}",
                f"    {rng.choice(_FUZZ_ALU_RI)} R{reg}, "
                f"{rng.randrange(1, 255)}",
                f"fuzz_skip_{index}:"]
    return [f"    {rng.choice(('NOT', 'NEG'))} R{reg}"]


def random_source(seed: int) -> str:
    """A deterministic random counted-loop program for seed ``seed``."""
    rng = random.Random(seed)
    lines = [
        f"    MOVI R0, {rng.randrange(40, 200)}",
        f"    MOVI R6, {_FUZZ_SCRATCH:#x}",
    ]
    for reg in _FUZZ_REGS:
        lines.append(f"    MOVI R{reg}, {rng.randrange(0, 1 << 16)}")
    lines.append("loop:")
    for index in range(rng.randrange(3, 13)):
        lines.extend(_fuzz_body(rng, index))
    lines.extend(["    SUBI R0, 1", "    JNZ loop", "    HLT"])
    return "\n".join(lines) + "\n"


def validate_random(count: int, *, seed_base: int = 0) -> List[OfflineReport]:
    """Compile and validate ``count`` seeded random programs."""
    from repro.asm import assemble

    reports = []
    for seed in range(seed_base, seed_base + count):
        program = assemble(random_source(seed), origin=_FUZZ_ORIGIN)
        reports.append(validate_program(program))
    return reports
