"""Compare the two lifted traces and audit the structural invariants.

:func:`validate_block` is the translation validator's entry point: it
takes the :class:`repro.interp.translate.BlockMeta` the engine records
for every compiled superblock, lifts the decoded instructions
(:mod:`.lift_guest`) and the generated source (:mod:`.lift_py`) into
symbolic event traces, and decides equivalence event by event.

Expression equivalence is two-tier (see :mod:`repro.analysis.sema`):
matching canonical forms are a proof ("syntactic"); otherwise the
deterministic concrete battery searches for a counterexample and the
comparison is accepted as "concrete" only when none exists.  Correct
translator output compares syntactically — the reference semantics are
built in the same algebraic shape the translator emits — so a
"concrete" result is unusual enough to be worth surfacing in
:class:`TvResult.proofs`.

Structural invariants audited besides the traces:

* every instruction byte lies in the single guarded physical page and
  ``phys_entry`` belongs to the guarded page (guard sufficiency for
  the baked-in decode);
* the handler binding table matches the decoded instructions
  one-for-one (names and operand identity);
* the preamble binds ``irq``/``gens``/``li``/``lc`` exactly when the
  trace contains memory ops / stores / a loop edge;
* when the installed block tuple is provided, its cached totals and
  guard fields match the metadata (and, with ``page_gens``, the
  generation guard is still fresh).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.analysis import sema
from repro.analysis.tv.events import (
    Barrier,
    CondExit,
    CondTerm,
    Exit,
    HandlerCall,
    IrqExit,
    LoopEdge,
    Pacing,
    SmcExit,
    State,
)
from repro.analysis.tv.lift_guest import reference_events
from repro.analysis.tv.lift_py import TvStructureError, lift_python_block
from repro.hw.paging import PAGE_SHIFT

_MAX_FAILURES = 25


@dataclass
class TvResult:
    """Outcome of validating one superblock."""

    ok: bool
    entry_lin: int
    entry_pc: int
    insns: int
    events: int
    failures: List[str] = field(default_factory=list)
    #: Equivalence decisions by kind: "syntactic" (canonical-form
    #: proof) and "concrete" (battery agreement only).
    proofs: Dict[str, int] = field(default_factory=dict)

    def summary(self) -> str:
        verdict = "OK" if self.ok else "FAIL"
        return (f"{verdict} block@{self.entry_lin:#x} "
                f"({self.insns} insns, {self.events} events, "
                f"{self.proofs.get('syntactic', 0)} syntactic / "
                f"{self.proofs.get('concrete', 0)} concrete)")


def _leaf_name(leaf: Tuple[Any, ...]) -> str:
    if leaf[0] == "init-reg":
        return f"r{leaf[1]}"
    if leaf[0] == "init-flags":
        return "flags"
    if leaf[0] == "hreg":
        return f"h{leaf[1]}.r{leaf[2]}"
    if leaf[0] == "hflags":
        return f"h{leaf[1]}.flags"
    return repr(leaf)


def _witness_text(witness: Optional[Dict[Any, int]]) -> str:
    if not witness:
        return ""
    parts = [f"{_leaf_name(leaf)}={value:#x}"
             for leaf, value in sorted(witness.items(),
                                       key=lambda kv: repr(kv[0]))]
    text = ", ".join(parts[:8])
    if len(parts) > 8:
        text += ", ..."
    return f" [counterexample: {text}]"


class _Comparator:
    """Accumulates failures and proof counters over one block."""

    def __init__(self) -> None:
        self.norm = sema.Normalizer()
        self.failures: List[str] = []
        self.proofs: Dict[str, int] = {"syntactic": 0, "concrete": 0}

    def fail(self, message: str) -> None:
        if len(self.failures) < _MAX_FAILURES:
            self.failures.append(message)

    def ints(self, where: str, got: Any, want: Any) -> None:
        if got != want:
            self.fail(f"{where}: generated code has {got!r}, "
                      f"reference requires {want!r}")

    def exprs(self, where: str, got: Any, want: Any,
              boolean: bool = False) -> None:
        if len(self.failures) >= _MAX_FAILURES:
            return
        equal, how, witness = self.norm.equal(got, want, boolean=boolean)
        if equal:
            self.proofs[how] += 1
        else:
            self.fail(f"{where}: expressions differ"
                      f"{_witness_text(witness)}")

    def states(self, where: str, got: State, want: State) -> None:
        self.ints(f"{where}.instret", got.ir, want.ir)
        self.ints(f"{where}.cycles", got.cy, want.cy)
        self.ints(f"{where}.pending-charge", got.chg, want.chg)
        self.exprs(f"{where}.flags", got.flags, want.flags)
        for index in range(8):
            self.exprs(f"{where}.r{index}", got.regs[index],
                       want.regs[index])

    def event(self, index: int, got: Any, want: Any) -> None:
        kind = type(want).__name__
        where = f"event {index} ({kind})"
        if type(got) is not type(want):
            self.fail(f"{where}: generated code emits "
                      f"{type(got).__name__} instead")
            return
        if isinstance(want, Pacing):
            self.ints(f"{where}.insns", got.insns, want.insns)
            self.ints(f"{where}.cycles", got.cycles, want.cycles)
            self.ints(f"{where}.exit_pc", got.exit_pc, want.exit_pc)
        elif isinstance(want, Barrier):
            self.ints(f"{where}.instret", got.ir, want.ir)
            self.ints(f"{where}.cycles", got.cy, want.cy)
            self.ints(f"{where}.charge", got.chg, want.chg)
            self.ints(f"{where}.saved", got.saved, want.saved)
            self.ints(f"{where}.next_pc", got.next_pc, want.next_pc)
            self.exprs(f"{where}.flags", got.flags, want.flags)
            for index_ in range(8):
                self.exprs(f"{where}.r{index_}", got.regs[index_],
                           want.regs[index_])
        elif isinstance(want, HandlerCall):
            self.ints(f"{where}.index", got.index, want.index)
        elif isinstance(want, IrqExit):
            self.ints(f"{where}.pc", got.pc, want.pc)
            self.states(where, got.state, want.state)
        elif isinstance(want, SmcExit):
            self.ints(f"{where}.page", got.page, want.page)
            self.ints(f"{where}.generation", got.generation,
                      want.generation)
            self.ints(f"{where}.pc", got.pc, want.pc)
            self.states(where, got.state, want.state)
        elif isinstance(want, CondExit):
            self.ints(f"{where}.pc", got.pc, want.pc)
            self.exprs(f"{where}.cond", got.cond, want.cond,
                       boolean=True)
            self.states(where, got.state, want.state)
        elif isinstance(want, CondTerm):
            self.ints(f"{where}.taken", got.taken, want.taken)
            self.ints(f"{where}.fall", got.fall, want.fall)
            self.exprs(f"{where}.cond", got.cond, want.cond,
                       boolean=True)
            self.states(where, got.state, want.state)
        elif isinstance(want, Exit):
            self.ints(f"{where}.pc", got.pc, want.pc)
            self.states(where, got.state, want.state)
        elif isinstance(want, LoopEdge):
            self.states(where, got.state, want.state)
        else:  # pragma: no cover - event table is closed
            self.fail(f"{where}: unknown event kind")


def validate_block(meta: Any, block: Optional[tuple] = None,
                   page_gens: Optional[Any] = None) -> TvResult:
    """Validate one compiled superblock against its decoded trace.

    ``meta`` is a :class:`repro.interp.translate.BlockMeta`.  Pass the
    installed block tuple to audit its cached totals and guard fields,
    and the live ``memory.page_gens`` array to additionally check
    guard freshness.
    """
    comparator = _Comparator()
    result = TvResult(ok=False, entry_lin=meta.entry_lin,
                      entry_pc=meta.entry_pc, insns=len(meta.insns),
                      events=0, failures=comparator.failures,
                      proofs=comparator.proofs)

    try:
        guest = reference_events(meta.insns, meta.entry_pc, meta.page,
                                 meta.generation)
    except (sema.SemaError, ValueError) as exc:
        comparator.fail(f"reference lift failed: {exc}")
        return result

    # -- guard sufficiency: the baked-in decode must be covered by the
    #    single (page, generation) guard.
    page_size = 1 << PAGE_SHIFT
    offset = meta.entry_lin & (page_size - 1)
    if offset + guest.total_bytes > page_size:
        comparator.fail(
            f"trace spans past the guarded page: entry offset {offset}"
            f" + {guest.total_bytes} bytes > {page_size}")
    if meta.phys_entry >> PAGE_SHIFT != meta.page:
        comparator.fail(
            f"guarded page {meta.page:#x} does not back phys entry "
            f"{meta.phys_entry:#x}")

    # -- handler binding table vs the decoded instructions.
    if len(meta.handlers) != len(guest.handlers):
        comparator.fail(
            f"handler table has {len(meta.handlers)} entries, decoded "
            f"trace needs {len(guest.handlers)}")
    else:
        for index, ((name, operands), (want_name, want_operands)) \
                in enumerate(zip(meta.handlers, guest.handlers)):
            if name != want_name:
                comparator.fail(
                    f"handler {index} bound to {name}, expected "
                    f"{want_name}")
            if operands != want_operands:
                comparator.fail(
                    f"handler {index} operands {operands!r} != decoded "
                    f"{want_operands!r}")

    # -- block tuple audit (cached totals + static guards).
    if block is not None:
        comparator.ints("block cached insn total", block[1],
                        guest.total_insns)
        comparator.ints("block cached cycle total", block[2],
                        guest.total_cycles)
        if not (block[3] is meta.descriptor or block[3] == meta.descriptor):
            comparator.fail("block descriptor guard != translation-time "
                            "descriptor")
        comparator.ints("block paging guard", block[4], meta.paging)
        comparator.ints("block page guard", block[5], meta.page)
        comparator.ints("block generation guard", block[6],
                        meta.generation)
    if page_gens is not None \
            and page_gens[meta.page] != meta.generation:
        comparator.fail(
            f"generation guard is stale: page {meta.page:#x} is at "
            f"{page_gens[meta.page]}, block guards {meta.generation}")

    # -- lift the generated source.
    try:
        lifted = lift_python_block(meta.source, list(meta.handlers),
                                   meta.entry_pc)
    except TvStructureError as exc:
        comparator.fail(f"structure: {exc}")
        return result

    result.events = len(guest.events)

    if lifted.binds_irq != guest.has_mem:
        comparator.fail(
            f"irq binding is {lifted.binds_irq}, trace "
            f"{'has' if guest.has_mem else 'has no'} memory ops")
    if lifted.binds_gens != guest.has_store:
        comparator.fail(
            f"page-generation binding is {lifted.binds_gens}, trace "
            f"{'has' if guest.has_store else 'has no'} stores")
    if lifted.binds_limits != guest.loop:
        comparator.fail(
            f"pacing-limit binding is {lifted.binds_limits}, block "
            f"{'is' if guest.loop else 'is not'} a loop")

    # -- event-trace equivalence.
    if len(lifted.events) != len(guest.events):
        comparator.fail(
            f"generated code produces {len(lifted.events)} events, "
            f"reference requires {len(guest.events)}")
    for index, (got, want) in enumerate(zip(lifted.events,
                                            guest.events)):
        if len(comparator.failures) >= _MAX_FAILURES:
            break
        comparator.event(index, got, want)

    result.ok = not comparator.failures
    return result
