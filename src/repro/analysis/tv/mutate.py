"""Mutation-kill harness for the translation validator.

A validator that accepts everything is worse than none.  This harness
compiles one fixture superblock that exercises every structural
feature (inline ALU + flags, loads, stores, IRQ/SMC exits, loop
pacing, a conditional loop edge), then applies 15 seeded miscompile
mutations — each a realistic translator bug: a dropped commit, a wrong
flag formula, off-by-one accounting, a weakened guard — and asserts
the validator kills every single one.  CI requires 15/15.

Run it via ``tools/tv_mutate.py`` or ``python -m
repro.analysis.tv.mutate``.
"""

from __future__ import annotations

import re
import sys
from dataclasses import dataclass, replace
from typing import Callable, List, Optional, Tuple

from repro.analysis.tv.validator import TvResult, validate_block
from repro.asm import assemble
from repro.hw import Cpu, IoBus, PhysicalMemory, firmware

#: Fixture: flags change before the first barrier, a load (IRQ exit),
#: a store (SMC exit), flag-setting ALU between barriers, and a
#: conditional backward branch (loop pacing + conditional loop edge).
FIXTURE_SOURCE = """
    MOVI R0, 64
    MOVI R3, 0x8000
loop:
    ADDI R1, 3
    LD   R2, [R3+0]
    XORI R2, 0x55
    ST   [R3+0], R2
    SUBI R0, 1
    JNZ  loop
    HLT
"""

_BODY = " " * 16


def _drop_line(line: str) -> Callable[[str], str]:
    def apply(source: str) -> str:
        needle = f"\n{_BODY}{line}"
        assert needle in source, f"fixture lacks {line!r}"
        return source.replace(needle, "", 1)
    return apply


def _swap(old: str, new: str) -> Callable[[str], str]:
    def apply(source: str) -> str:
        assert old in source, f"fixture lacks {old!r}"
        return source.replace(old, new, 1)
    return apply


def _regex(pattern: str, replacement: str) -> Callable[[str], str]:
    def apply(source: str) -> str:
        out, count = re.subn(pattern, replacement, source, count=1)
        assert count == 1, f"fixture does not match {pattern!r}"
        return out
    return apply


def _bump_barrier_pc(source: str) -> str:
    match = re.search(
        r"(saved = \d+\n" + _BODY + r"cpu\.pc = )(\d+)", source)
    assert match, "fixture has no barrier PC commit"
    wrong = int(match.group(2)) + 1
    return (source[:match.start()] + match.group(1) + str(wrong)
            + source[match.end():])


#: (name, what translator bug it simulates, source transform).
SOURCE_MUTATIONS: List[Tuple[str, str, Callable[[str], str]]] = [
    ("drop-flags-commit",
     "first commit barrier loses `cpu.flags = f`",
     _drop_line("cpu.flags = f")),
    ("drop-instret-commit",
     "first commit barrier loses `cpu.instret = ir`",
     _drop_line("cpu.instret = ir")),
    ("drop-charge-flush",
     "first barrier loses the budget charge flush",
     _regex(r"\n" + _BODY + r"if chg:\n" + _BODY + r"    charge\(chg, "
            r"GUEST\)\n" + _BODY + r"    chg = 0", "")),
    ("weaken-clear-mask",
     "flag clear mask no longer clears every arithmetic flag",
     _swap("(f & -2242)", "(f & -2210)")),
    ("zf-wrong-bit",
     "ZF computed into bit 5 instead of bit 6",
     _swap("(64 if m == 0 else 0)", "(32 if m == 0 else 0)")),
    ("drop-carry-term",
     "ADD flag formula loses the carry-out term",
     _swap(" | (t >> 32)", "")),
    ("of-shift-off-by-one",
     "overflow bit lands one position off",
     _swap(") >> 20)", ") >> 19)")),
    ("instret-off-by-one",
     "per-instruction accounting retires one instruction twice",
     _swap("ir += 1", "ir += 2")),
    ("wrong-cycle-charge",
     "a 2-cycle load is charged 3 cycles",
     _swap("cy += 2", "cy += 3")),
    ("drop-charge-accumulation",
     "budget accounting loses one instruction's charge",
     _drop_line("chg += 1")),
    ("drop-smc-check",
     "store loses its code-page generation re-check",
     _regex(r"\n" + _BODY + r"if gens\[\d+\] != \d+:\n" + _BODY
            + r"    break", "")),
    ("drop-irq-check",
     "memory access loses its pending-interrupt poll",
     _regex(r"\n" + _BODY + r"if irq is not None and "
            r"irq\.has_pending\(\):\n" + _BODY + r"    break", "")),
    ("wrong-barrier-pc",
     "barrier commits the wrong next-PC before a faultable op",
     _bump_barrier_pc),
    ("negate-branch",
     "conditional loop edge tests the negated condition",
     _swap("if f & 64:", "if not f & 64:")),
]


@dataclass
class MutationOutcome:
    name: str
    description: str
    killed: bool
    detail: str


def _compile_fixture():
    """Compile the fixture loop and return (meta, block, page_gens)."""
    memory = PhysicalMemory(1 << 20)
    cpu = Cpu(memory, IoBus(), translate=True)
    firmware.install_flat_firmware(cpu)
    program = assemble(FIXTURE_SOURCE, origin=0x4000)
    program.load_into(memory)
    engine = cpu._sb_engine
    assert engine is not None
    entry = program.symbol("loop")
    descriptor = cpu.segments[0].descriptor
    engine._compile(entry, entry, descriptor)
    assert entry in engine.blocks, "fixture loop failed to compile"
    return engine.block_meta[entry], engine.blocks[entry], \
        memory.page_gens


def run_harness() -> Tuple[Optional[TvResult], List[MutationOutcome]]:
    """(baseline result, one outcome per mutation)."""
    meta, block, page_gens = _compile_fixture()
    baseline = validate_block(meta, block=block, page_gens=page_gens)

    outcomes: List[MutationOutcome] = []
    for name, description, mutate in SOURCE_MUTATIONS:
        mutated = replace(meta, source=mutate(meta.source))
        result = validate_block(mutated, block=block,
                                page_gens=page_gens)
        detail = result.failures[0] if result.failures else "accepted"
        outcomes.append(MutationOutcome(
            name=name, description=description, killed=not result.ok,
            detail=detail))

    # Mutation 15 tampers the installed guard, not the source: the
    # block tuple bakes in a generation the code was not compiled for.
    tampered = block[:6] + (block[6] + 1,)
    result = validate_block(meta, block=tampered, page_gens=page_gens)
    detail = result.failures[0] if result.failures else "accepted"
    outcomes.append(MutationOutcome(
        name="stale-generation-guard",
        description="installed block guards a different page generation",
        killed=not result.ok, detail=detail))
    return baseline, outcomes


def main(argv: Optional[List[str]] = None) -> int:
    baseline, outcomes = run_harness()
    ok = baseline is not None and baseline.ok
    print(f"baseline: {baseline.summary() if baseline else 'missing'}")
    killed = sum(1 for outcome in outcomes if outcome.killed)
    for outcome in outcomes:
        verdict = "KILLED " if outcome.killed else "MISSED "
        print(f"  {verdict} {outcome.name:28s} {outcome.detail}")
    print(f"{killed}/{len(outcomes)} mutations killed")
    return 0 if ok and killed == len(outcomes) else 1


if __name__ == "__main__":
    sys.exit(main())
