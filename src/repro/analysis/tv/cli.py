"""Command-line front end for the translation validator.

    repro-tv --all-builtins
    repro-tv --builtin kernel
    repro-tv image.bin --org 0x200000
    repro-tv --random 200
    repro-tv --mutations

Validates every statically-visible superblock candidate of the given
images (see :mod:`repro.analysis.tv.offline`), or — with
``--mutations`` — runs the seeded miscompile harness and requires
every mutation to be killed.

Exit-code contract: 0 when everything validated (and, for
``--mutations``, every mutation was killed), 1 on any validation
failure or missed mutation, 2 when the run itself failed (bad image,
usage error).
"""

from __future__ import annotations

import sys
from argparse import ArgumentParser
from pathlib import Path
from typing import List, Optional, Sequence, Tuple

from repro.analysis.tv import offline
from repro.errors import ReproError


def _number(text: str) -> int:
    return int(text, 0)


def _gather_images(args) -> List[Tuple[str, bytes, int]]:
    """(label, image, origin) for every requested target."""
    from repro.analysis.cli import BUILTIN_IMAGES, build_builtin
    from repro.hw import firmware

    images: List[Tuple[str, bytes, int]] = []
    names: Sequence[str] = ()
    if args.all_builtins:
        names = BUILTIN_IMAGES
    elif args.builtin:
        names = (args.builtin,)
    for name in names:
        image, origin, _ring = build_builtin(name)
        images.append((name, image, origin))
    if args.image:
        image = Path(args.image).read_bytes()
        origin = args.org if args.org is not None \
            else firmware.GUEST_KERNEL_BASE
        images.append((args.image, image, origin))
    return images


def main(argv: Optional[Sequence[str]] = None) -> int:
    from repro.analysis.cli import BUILTIN_IMAGES

    parser = ArgumentParser(prog="repro-tv", description=__doc__)
    parser.add_argument("image", nargs="?",
                        help="flat HX32 image file to validate")
    parser.add_argument("--builtin", choices=BUILTIN_IMAGES,
                        help="validate a built-in guest image")
    parser.add_argument("--all-builtins", action="store_true",
                        help="validate every built-in guest image")
    parser.add_argument("--org", type=_number, default=None,
                        help="load address of the image "
                             "(default: guest kernel base)")
    parser.add_argument("--random", type=int, default=0, metavar="N",
                        help="also validate N seeded random programs")
    parser.add_argument("--seed-base", type=int, default=0,
                        help="first seed for --random (default 0)")
    parser.add_argument("--mutations", action="store_true",
                        help="run the mutation-kill harness instead")
    args = parser.parse_args(argv)

    if args.mutations:
        from repro.analysis.tv.mutate import main as mutate_main
        return mutate_main()

    if not (args.image or args.builtin or args.all_builtins
            or args.random):
        parser.error("give an IMAGE, --builtin, --all-builtins, "
                     "--random N, or --mutations")

    failures = 0
    blocks = 0
    try:
        for label, image, origin in _gather_images(args):
            report = offline.validate_image(image, origin)
            blocks += len(report.results)
            failures += len(report.failed)
            print(f"== {label} @ {origin:#x}")
            print(report.format_text())
        if args.random:
            reports = offline.validate_random(
                args.random, seed_base=args.seed_base)
            random_blocks = sum(len(r.results) for r in reports)
            random_failed = [r for r in reports if not r.ok]
            blocks += random_blocks
            failures += sum(len(r.failed) for r in random_failed)
            print(f"== {args.random} random program(s) "
                  f"(seeds {args.seed_base}.."
                  f"{args.seed_base + args.random - 1})")
            for report in random_failed:
                print(report.format_text())
            print(f"{random_blocks} block(s) validated, "
                  f"{sum(len(r.failed) for r in reports)} failed")
    except (ReproError, OSError) as exc:
        print(f"repro-tv: {exc}", file=sys.stderr)
        return 2

    print(f"total: {blocks} block(s) validated, {failures} failure(s)")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
