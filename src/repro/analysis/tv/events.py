"""The symbolic event trace both translation-validator lifters produce.

A superblock's observable behaviour is fully described by the ordered
list of events below.  Registers live in ``cpu.regs`` (the generated
code binds the list itself), so the register file is committed
continuously; FLAGS, ``instret``, ``cycle_count``, budget charges and
PC are locals committed at *barriers*.  Nothing can observe CPU state
between barriers (inlined instructions cannot fault and interrupts are
only polled at the emitted check points), so equivalence at every
barrier and exit edge is observational equivalence of the block.

``ir``/``cy``/``chg`` fields are integer *offsets* from block entry —
the generated code adds constants to the entry values, so offsets
decide equality without symbolic arithmetic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Tuple

Expr = Tuple[Any, ...]


@dataclass(frozen=True)
class State:
    """Architectural snapshot at an observation point (symbolic)."""

    regs: Tuple[Expr, ...]
    flags: Expr
    ir: int
    cy: int
    chg: int


@dataclass(frozen=True)
class Pacing:
    """The loop-top pacing check: exit before overshooting either limit."""

    insns: int
    cycles: int
    exit_pc: int


@dataclass(frozen=True)
class Barrier:
    """Per-instruction commit barrier before a faultable operation."""

    flags: Expr
    ir: int
    cy: int
    chg: int
    saved: int
    next_pc: int
    regs: Tuple[Expr, ...]


@dataclass(frozen=True)
class HandlerCall:
    """Dispatch into a bound interpreter handler."""

    index: int


@dataclass(frozen=True)
class IrqExit:
    """Pending-interrupt poll after a memory access; exits the block."""

    pc: int
    state: State


@dataclass(frozen=True)
class SmcExit:
    """Code-page generation re-check after a store; exits the block."""

    page: int
    generation: int
    pc: int
    state: State


@dataclass(frozen=True)
class CondExit:
    """Loop-form conditional: exit to ``pc`` when ``cond`` holds."""

    cond: Expr
    pc: int
    state: State


@dataclass(frozen=True)
class CondTerm:
    """Non-loop conditional terminator: taken/fall-through exit."""

    cond: Expr
    taken: int
    fall: int
    state: State


@dataclass(frozen=True)
class Exit:
    """Unconditional block exit (JMP target or fall-through)."""

    pc: int
    state: State


@dataclass(frozen=True)
class LoopEdge:
    """Control returns to the loop top (the block's back edge)."""

    state: State


Event = Any
