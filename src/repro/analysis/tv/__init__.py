"""Translation validation for the superblock JIT.

Proves each compiled superblock observably equivalent to its decoded
HX32 instruction sequence instead of trusting the translator:

* :mod:`repro.analysis.tv.lift_py` lifts the generated Python source
  (via ``ast``) into a symbolic event trace;
* :mod:`repro.analysis.tv.lift_guest` composes the reference semantics
  from :mod:`repro.analysis.sema` over the decoded instructions into
  the same trace shape;
* :mod:`repro.analysis.tv.validator` compares the two traces and
  audits the structural invariants (commit barriers, guard set,
  IRQ/SMC exit edges, instret/cycle pacing);
* :mod:`repro.analysis.tv.offline` validates every block compiled from
  a guest image (the ``repro-tv`` CLI and the AN011 analyzer check);
* :mod:`repro.analysis.tv.mutate` is the mutation-kill harness.
"""

from repro.analysis.tv.validator import TvResult, validate_block

__all__ = ["TvResult", "validate_block"]
