"""Interprocedural analysis: call graph and function summaries.

Function entries are the targets of ``CALL`` edges (plus resolved
``CALLR`` targets the abstract interpreter fed back into the CFG).
For each function we walk its intra-procedural region — every block
reachable from the entry without crossing a callee edge — and compute
a :class:`FunctionSummary`:

* ``clobbered`` — general registers the function (or anything it
  transitively calls) may write;
* ``ret_deltas`` — the net stack delta in bytes observed at each
  ``RET``, *excluding* the return-address pop itself.  A balanced
  function reports ``{0}``; anything else means the ``RET`` pops a
  word that is not the caller's return address (AN012);
* ``resets_sp`` / ``clobbers_all`` — conservative escape hatches: the
  function re-points SP directly, or contains an instruction whose
  effect we cannot bound (``INT``/``VMCALL``/unresolved ``CALLR``),
  so callers must fall back to havoc-everything.

Summaries are computed as a fixpoint over the call graph (recursion
converges because ``clobbered`` only grows and deltas saturate), then
fed to :func:`repro.analysis.absint.interpret` which uses them for
context-insensitive value-set propagation across calls — registers a
callee provably never touches survive the call in the caller's state.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.analysis import sema
from repro.analysis.cfg import EDGE_CALL, Cfg
from repro.asm.disasm import DecodedInsn
from repro.hw import isa

#: Cap on distinct RET deltas per function before saturating to
#: "unknown" — keeps the fixpoint finite on pathological graphs.
_MAX_DELTAS = 8


@dataclass(frozen=True)
class FunctionSummary:
    """What a call to this function can do to the caller's state."""

    entry: int
    clobbered: FrozenSet[int] = frozenset()
    #: Net stack delta (bytes, excluding the return-address pop) at
    #: each RET path.  Empty = never returns (or not yet computed).
    ret_deltas: FrozenSet[int] = frozenset()
    resets_sp: bool = False
    #: Contains INT/VMCALL/unresolved indirect flow: assume anything.
    clobbers_all: bool = False
    calls: FrozenSet[int] = frozenset()

    @property
    def balanced(self) -> bool:
        return self.ret_deltas <= {0}


@dataclass
class CallGraph:
    """Function entries and who calls whom."""

    entries: List[int] = field(default_factory=list)
    #: function entry -> callee entries (static CALL + resolved CALLR).
    callees: Dict[int, FrozenSet[int]] = field(default_factory=dict)
    #: call-site address -> callee entries.
    sites: Dict[int, FrozenSet[int]] = field(default_factory=dict)
    #: function entry -> its intra-procedural block starts.
    regions: Dict[int, FrozenSet[int]] = field(default_factory=dict)


def _function_entries(cfg: Cfg) -> List[int]:
    entries: Set[int] = set()
    for block in cfg.blocks.values():
        for target, kind in block.succs:
            if kind == EDGE_CALL and target in cfg.blocks:
                entries.add(target)
    return sorted(entries)


def _region_of(cfg: Cfg, entry: int) -> FrozenSet[int]:
    """Blocks reachable from ``entry`` without taking a callee edge.

    ``RET`` blocks have no successors, so the walk naturally stops at
    function exits; fall-through after CALL stays inside the region.
    """
    seen = {entry}
    stack = [entry]
    while stack:
        block = cfg.blocks[stack.pop()]
        for target, kind in block.succs:
            if kind == EDGE_CALL or target not in cfg.blocks:
                continue
            if target not in seen:
                seen.add(target)
                stack.append(target)
    return frozenset(seen)


def build_call_graph(cfg: Cfg) -> CallGraph:
    """Recover the call graph from CALL edges (incl. resolved CALLR)."""
    graph = CallGraph(entries=_function_entries(cfg))
    entry_set = set(graph.entries)
    for start in sorted(cfg.blocks):
        block = cfg.blocks[start]
        callees = frozenset(t for t, kind in block.succs
                            if kind == EDGE_CALL and t in entry_set)
        if callees:
            graph.sites[block.last.address] = callees
    for entry in graph.entries:
        region = _region_of(cfg, entry)
        graph.regions[entry] = region
        called: Set[int] = set()
        for start in region:
            for target, kind in cfg.blocks[start].succs:
                if kind == EDGE_CALL and target in entry_set:
                    called.add(target)
        graph.callees[entry] = frozenset(called)
    return graph


def _insn_operands(insn: DecodedInsn) -> object:
    spec = isa.SPECS[insn.opcode]
    return isa.decode_operands(spec.fmt, insn.raw[1:])


def _summarize_once(cfg: Cfg, graph: CallGraph, entry: int,
                    current: Dict[int, FunctionSummary]
                    ) -> FunctionSummary:
    """One summary evaluation with the current callee approximations."""
    clobbered: Set[int] = set()
    resets_sp = False
    clobbers_all = False
    ret_deltas: Set[int] = set()

    # Depth-first over the region tracking the net stack delta along
    # each path (None once unknown).  Joins that disagree widen to
    # None rather than iterating to a numeric fixpoint.
    depth_at: Dict[int, Optional[int]] = {entry: 0}
    visited: Set[int] = set()
    stack: List[int] = [entry]
    while stack:
        start = stack.pop()
        if start in visited:
            continue
        visited.add(start)
        block = cfg.blocks[start]
        depth: Optional[int] = depth_at.get(start, None)
        for insn in block.insns:
            if insn.is_pseudo:
                clobbers_all = True
                continue
            name = insn.mnemonic
            ops = _insn_operands(insn)
            clobbered.update(sema.regs_written(name, ops))
            if name in sema.HAVOC_MNEMONICS or name == "IRET":
                clobbers_all = True
            if sema.writes_sp(name, ops):
                resets_sp = True
            if name == "RET":
                if depth is not None:
                    ret_deltas.add(depth)
                else:
                    clobbers_all = True
                continue
            if name in ("CALL", "CALLR"):
                callees = graph.sites.get(insn.address, frozenset())
                if not callees:
                    # Unresolved CALLR (or callee outside the CFG).
                    clobbers_all = True
                    depth = None
                    continue
                for callee in callees:
                    summary = current.get(callee)
                    if summary is None:
                        continue
                    clobbered.update(summary.clobbered)
                    if summary.resets_sp:
                        resets_sp = True
                    if summary.clobbers_all:
                        clobbers_all = True
                    if depth is not None:
                        if summary.ret_deltas == frozenset({0}):
                            pass  # balanced callee: depth unchanged
                        elif len(summary.ret_deltas) == 1:
                            depth += next(iter(summary.ret_deltas))
                        elif summary.ret_deltas:
                            depth = None
                continue
            delta = sema.stack_delta(name, ops)
            if depth is not None:
                depth = None if delta is None else depth + delta
        for target, kind in block.succs:
            if kind == EDGE_CALL or target not in graph.regions.get(
                    entry, frozenset()):
                continue
            if target not in depth_at:
                depth_at[target] = depth
            elif depth_at[target] != depth:
                # Paths disagree: widen straight to unknown.
                depth_at[target] = None
                visited.discard(target)
            stack.append(target)

    if len(ret_deltas) > _MAX_DELTAS:
        clobbers_all = True
        ret_deltas = set()
    return FunctionSummary(
        entry=entry,
        clobbered=frozenset(clobbered),
        ret_deltas=frozenset(ret_deltas),
        resets_sp=resets_sp,
        clobbers_all=clobbers_all,
        calls=graph.callees.get(entry, frozenset()))


def compute_summaries(cfg: Cfg, graph: Optional[CallGraph] = None,
                      max_rounds: int = 16
                      ) -> Tuple[CallGraph, Dict[int, FunctionSummary]]:
    """Fixpoint function summaries over the call graph."""
    if graph is None:
        graph = build_call_graph(cfg)
    summaries: Dict[int, FunctionSummary] = {}
    for _ in range(max_rounds):
        changed = False
        for entry in graph.entries:
            new = _summarize_once(cfg, graph, entry, summaries)
            if summaries.get(entry) != new:
                summaries[entry] = new
                changed = True
        if not changed:
            break
    return graph, summaries
