"""The abstract domain the analyzer propagates over the CFG.

Three small lattices, joined pointwise in :class:`AbsState`:

* **value sets** (:class:`ValueSet`) — each register holds either TOP
  (unknown) or a bounded set of concrete 32-bit values.  Sets wider
  than :data:`MAX_VALUES` widen to TOP, which keeps the fixpoint
  finite.  This is the value-set approximation used to resolve store
  targets, IDT gate registrations and fabricated IRET frames.
* **privilege rings** — the set of CPLs execution may hold at a
  program point.  The image starts at the configured entry ring
  (ring 0 for a kernel written to own the machine); the only in-image
  transition is an IRET through a frame whose CS image the value-set
  domain resolved (the classic IRET-to-ring-3 drop).
* **stack depth** — bytes pushed relative to the last stack re-point,
  an integer or None (unknown).  PUSH/POP/CALL/RET move it; writing SP
  directly re-points the stack and resets the depth to zero.

The abstract stack (``shadow``) mirrors the value sets of pushed words
so IRET/POP can recover statically-built frames; it is cleared whenever
the depth becomes unknown.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, FrozenSet, Iterable, Optional, Tuple

from repro.hw.isa import NUM_GPRS, mask32

#: Widening threshold: a value set wider than this becomes TOP.
MAX_VALUES = 16

#: All rings a 2-bit CPL can express.
ALL_RINGS: FrozenSet[int] = frozenset({0, 1, 2, 3})


class ValueSet:
    """A bounded set of concrete 32-bit values, or TOP (= unknown)."""

    __slots__ = ("values",)

    def __init__(self, values: Optional[FrozenSet[int]]) -> None:
        #: ``None`` means TOP; otherwise a frozenset of 32-bit ints.
        if values is not None and len(values) > MAX_VALUES:
            values = None
        self.values = values

    # -- constructors ----------------------------------------------------

    @classmethod
    def top(cls) -> "ValueSet":
        return cls(None)

    @classmethod
    def const(cls, value: int) -> "ValueSet":
        return cls(frozenset({mask32(value)}))

    @classmethod
    def of(cls, values: Iterable[int]) -> "ValueSet":
        return cls(frozenset(mask32(v) for v in values))

    # -- queries ---------------------------------------------------------

    @property
    def is_top(self) -> bool:
        return self.values is None

    def singleton(self) -> Optional[int]:
        """The single concrete value, if there is exactly one."""
        if self.values is not None and len(self.values) == 1:
            return next(iter(self.values))
        return None

    def concrete(self) -> FrozenSet[int]:
        """All concrete values (empty when TOP — caller checks is_top)."""
        return self.values if self.values is not None else frozenset()

    # -- lattice / arithmetic --------------------------------------------

    def join(self, other: "ValueSet") -> "ValueSet":
        if self.values is None or other.values is None:
            return ValueSet.top()
        return ValueSet(self.values | other.values)

    def map(self, fn: Callable[[int], int]) -> "ValueSet":
        if self.values is None:
            return ValueSet.top()
        return ValueSet(frozenset(mask32(fn(v)) for v in self.values))

    def map2(self, other: "ValueSet",
             fn: Callable[[int, int], int]) -> "ValueSet":
        if self.values is None or other.values is None:
            return ValueSet.top()
        if len(self.values) * len(other.values) > MAX_VALUES:
            return ValueSet.top()
        return ValueSet(frozenset(mask32(fn(a, b))
                                  for a in self.values
                                  for b in other.values))

    def add_const(self, disp: int) -> "ValueSet":
        return self.map(lambda v: v + disp)

    # -- dunder ----------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        return isinstance(other, ValueSet) and self.values == other.values

    def __hash__(self) -> int:
        return hash(self.values)

    def __repr__(self) -> str:
        if self.values is None:
            return "VS(TOP)"
        inner = ", ".join(f"{v:#x}" for v in sorted(self.values))
        return f"VS({{{inner}}})"


_TOP = ValueSet.top()


@dataclass
class AbsState:
    """The abstract machine state at one program point."""

    regs: Tuple[ValueSet, ...]          # NUM_GPRS entries (R7 = SP)
    rings: FrozenSet[int]               # possible CPLs
    depth: Optional[int]                # bytes pushed; None = unknown
    shadow: Tuple[ValueSet, ...]        # pushed words, top of stack last

    @classmethod
    def entry(cls, ring: int) -> "AbsState":
        """The state at an image entry point: nothing known but CPL."""
        return cls(regs=tuple(_TOP for _ in range(NUM_GPRS)),
                   rings=frozenset({ring}),
                   depth=0, shadow=())

    def copy(self) -> "AbsState":
        return AbsState(self.regs, self.rings, self.depth, self.shadow)

    def with_reg(self, index: int, value: ValueSet) -> None:
        regs = list(self.regs)
        regs[index] = value
        self.regs = tuple(regs)

    def reset_stack(self) -> None:
        """SP was written directly: re-point the stack."""
        self.depth = 0
        self.shadow = ()

    def forget_stack(self) -> None:
        self.depth = None
        self.shadow = ()

    def join(self, other: "AbsState") -> "AbsState":
        regs = tuple(a.join(b) for a, b in zip(self.regs, other.regs))
        rings = self.rings | other.rings
        if self.depth is None or other.depth is None \
                or self.depth != other.depth:
            depth: Optional[int] = None
            shadow: Tuple[ValueSet, ...] = ()
        else:
            depth = self.depth
            # Align the shadow stacks at the top and join pairwise; a
            # disagreeing prefix is dropped (sound: pops read TOP).
            keep = min(len(self.shadow), len(other.shadow))
            if keep:
                mine = self.shadow[-keep:]
                theirs = other.shadow[-keep:]
                shadow = tuple(a.join(b) for a, b in zip(mine, theirs))
            else:
                shadow = ()
        return AbsState(regs, rings, depth, shadow)

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, AbsState)
                and self.regs == other.regs
                and self.rings == other.rings
                and self.depth == other.depth
                and self.shadow == other.shadow)
