"""The analysis driver: CFG recovery ⇄ abstract interpretation fixpoint.

Indirect control flow and IDT handler registration are only visible to
the abstract interpreter, but the interpreter needs a CFG to run over —
so the driver alternates the two until the entry set and the resolved
dynamic edges stop growing, then runs the check catalogue and packages
the report.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Optional, Set

from repro.analysis.absint import AbsResult, interpret
from repro.analysis.cfg import recover_cfg
from repro.analysis.checks import ALL_CHECKS, Analysis, run_checks
from repro.analysis.interproc import compute_summaries
from repro.analysis.report import Report
from repro.asm.assembler import Program
from repro.hw import firmware
from repro.hw.cpu import IDT_ENTRY_SIZE

#: Default installed-RAM size used to derive the monitor base when the
#: caller does not supply one (16 MiB, the canonical test machine).
DEFAULT_MEMORY_SIZE = 16 << 20


def _discover_idt(absres: AbsResult, origin: int,
                  end: int) -> "tuple[int, Dict[int, FrozenSet[int]]]":
    """Statically recover the guest IDT registrations.

    The LIDT pointer value set names the pseudo-descriptor; its base
    word (offset +4) names the IDT; the store log at ``base + 8*v``
    holds each gate's handler offset.  A gate whose flags word (+6) was
    stored without the present bit is ignored.
    """
    # A scratch pseudo-descriptor reused for both LGDT and LIDT makes
    # the base word multi-valued; consider every candidate base — gates
    # whose "offset" word does not land inside the image are discarded,
    # which filters descriptor bytes read through a wrong candidate.
    bases: Set[int] = set()
    for pointer_vs in absres.lidt_sites.values():
        for pointer in pointer_vs.concrete():
            base_vs = absres.store_log.get((pointer + 4, 4))
            if base_vs is not None:
                bases.update(base_vs.concrete())
    idt_base = -1
    handlers: Dict[int, FrozenSet[int]] = {}
    for base in sorted(bases):
        found_any = False
        for vector in range(firmware.IDT_ENTRIES):
            gate = base + vector * IDT_ENTRY_SIZE
            offset_vs = absres.store_log.get((gate, 4))
            if offset_vs is None:
                continue
            flags_vs = absres.store_log.get((gate + 6, 2))
            if flags_vs is not None and not flags_vs.is_top \
                    and all(not flags & 1
                            for flags in flags_vs.concrete()):
                continue  # every stored flags word says not-present
            targets = frozenset(t for t in offset_vs.concrete()
                                if origin <= t < end)
            if targets:
                found_any = True
                handlers[vector] = handlers.get(
                    vector, frozenset()) | targets
        if found_any:
            idt_base = base
    return idt_base, handlers


def analyze_image(image: bytes, origin: int, *,
                  monitor_base: Optional[int] = None,
                  entry_ring: int = 0,
                  extra_entries: Iterable[int] = (),
                  max_iterations: int = 8,
                  tv_audit: bool = True) -> Report:
    """Analyze a flat HX32 image loaded at ``origin``.

    ``tv_audit`` additionally compiles every statically-visible
    superblock candidate and runs the translation validator over the
    result (check AN011); pass False to skip the scratch-CPU pass.
    """
    if monitor_base is None:
        monitor_base = firmware.monitor_base(DEFAULT_MEMORY_SIZE)
    end = origin + len(image)
    entries: Set[int] = {origin}
    entries.update(a for a in extra_entries if origin <= a < end)
    entry_rings: Dict[int, int] = {a: entry_ring for a in entries}
    dyn_edges: Dict[int, Set[int]] = {}
    handlers: Dict[int, FrozenSet[int]] = {}
    idt_base = -1

    iterations = 0
    cfg = recover_cfg(image, origin, entries, dyn_edges)
    absres = interpret(cfg, entry_rings)
    while iterations < max_iterations:
        iterations += 1
        idt_base, handlers = _discover_idt(absres, origin, end)
        new_entries = set(entries)
        for vector_handlers in handlers.values():
            new_entries.update(vector_handlers)
        new_dyn: Dict[int, Set[int]] = {
            site: set(targets)
            for site, targets in absres.resolved.items() if targets}
        for site, targets in dyn_edges.items():
            new_dyn.setdefault(site, set()).update(targets)
        if new_entries == entries and new_dyn == dyn_edges:
            break
        entries = new_entries
        dyn_edges = new_dyn
        for address in entries:
            # Handlers run at the gate target ring: ring 0 in the
            # guest's own view of the world.
            entry_rings.setdefault(address, 0)
        cfg = recover_cfg(image, origin, entries, dyn_edges)
        absres = interpret(cfg, entry_rings)

    # Interprocedural pass: summarize every discovered function, then
    # re-interpret with the summaries so value sets survive calls to
    # callees that provably do not clobber them.
    call_graph, summaries = compute_summaries(cfg)
    if summaries:
        absres = interpret(cfg, entry_rings, summaries=summaries)

    tv_results = []
    if tv_audit:
        from repro.analysis.tv.offline import validate_image as tv_validate
        tv_results = list(tv_validate(image, origin).results)

    analysis = Analysis(
        image=image, origin=origin, end=end,
        monitor_base=monitor_base, entry_ring=entry_ring,
        cfg=cfg, absres=absres, handlers=handlers,
        idt_base=idt_base, iterations=iterations,
        call_graph=call_graph, summaries=summaries,
        tv_results=tv_results)
    findings = run_checks(analysis)

    report = Report(origin=origin, end=end, entry_ring=entry_ring,
                    monitor_base=monitor_base, findings=findings)
    report.stats = {
        "image_bytes": len(image),
        "linear_insns": len(cfg.linear),
        "walked_insns": len(cfg.insn_at),
        "blocks": cfg.block_count(),
        "edges": cfg.edge_count(),
        "entries": len(entries),
        "handlers": sum(len(h) for h in handlers.values()),
        "handler_vectors": len(handlers),
        "resolved_indirect_sites": len(absres.resolved),
        "interp_rounds": absres.rounds,
        "iterations": iterations,
        "checks_run": len(ALL_CHECKS),
        "functions": len(call_graph.entries),
        "call_sites": len(call_graph.sites),
        "balanced_functions": sum(
            1 for s in summaries.values() if s.balanced),
        "tv_blocks_checked": len(tv_results),
    }
    return report


def analyze_program(program: Program, *,
                    monitor_base: Optional[int] = None,
                    entry_ring: int = 0,
                    extra_entries: Iterable[int] = (),
                    tv_audit: bool = True) -> Report:
    """Analyze an assembled :class:`repro.asm.Program` image."""
    return analyze_image(program.image, program.origin,
                         monitor_base=monitor_base,
                         entry_ring=entry_ring,
                         extra_entries=extra_entries,
                         tv_audit=tv_audit)
