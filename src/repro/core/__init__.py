"""Public API: the debugging environment and the evaluation harness.

Typical use::

    from repro.core import DebugSession
    from repro.guest import build_kernel, KernelConfig

    session = DebugSession(monitor="lvmm")
    session.load_and_boot(build_kernel(KernelConfig()))
    session.attach()
    session.client.set_breakpoint(...)

and for the paper's evaluation::

    from repro.workloads import run_data_transfer
    sample = run_data_transfer("lvmm", rate_bps=100e6)
"""

from repro.core.session import MONITORS, DebugSession

__all__ = ["DebugSession", "MONITORS"]
