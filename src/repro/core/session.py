"""DebugSession: the whole debugging environment of Fig. 2.1 in one object.

Host side: an :class:`~repro.rsp.client.RspClient` (driven by the
command-line debugger or directly by library users).  Target side: a
machine running a guest under a chosen monitor, with the RSP stub inside
the monitor.  The two halves talk over the simulated serial link.

The session provides the co-operative scheduling glue: when the host
waits for a reply, the target gets pumped (monitor services the UART;
if the guest is running, it executes in slices so breakpoints can hit).
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.errors import MonitorError, TripleFault
from repro.hw.machine import Machine, MachineConfig
from repro.hw.uart import HostSerialPort
from repro.rsp.client import RspClient
from repro.vmm.monitor import LightweightVmm
from repro.fullvmm.monitor import FullVmm

#: Monitors that can host a debug session (a stub needs a monitor; the
#: bare-metal stack debugs via repro.baremetal.EmbeddedStub instead,
#: with the stability caveats experiment E4 demonstrates).
MONITORS = {
    "lvmm": LightweightVmm,
    "fullvmm": FullVmm,
}

RUN_SLICE = 2000  # guest instructions executed per host pump


class DebugSession:
    """A host debugger attached to a monitored guest."""

    def __init__(self, machine: Optional[Machine] = None,
                 monitor: str = "lvmm",
                 cost_model=None) -> None:
        self.machine = machine or Machine(MachineConfig())
        if monitor not in MONITORS:
            raise MonitorError(
                f"unknown monitor {monitor!r}; pick from {sorted(MONITORS)}")
        self.monitor = MONITORS[monitor](self.machine, cost_model)
        self.monitor.install()
        self._host_port = HostSerialPort(self.machine.serial_link)
        self.client = RspClient(
            send=self._host_port.send,
            recv=self._host_port.recv,
            pump=self._pump)
        self._booted = False
        from repro.core.snapshot import CheckpointStore
        self.checkpoints = CheckpointStore()

    # ------------------------------------------------------------------

    def load_and_boot(self, *programs) -> None:
        """Load assembled program images and boot the first one's origin."""
        if not programs:
            raise MonitorError("need at least one program image")
        for program in programs:
            program.load_into(self.machine.memory)
        self.monitor.boot_guest(programs[0].origin)
        # Targets attach stopped, like gdbserver: the first 'c' starts it.
        self.monitor.stopped = True
        self._booted = True

    # ------------------------------------------------------------------

    def _pump(self) -> None:
        """One scheduling quantum for the target."""
        self.monitor.service_debugger()
        if not self.monitor.stopped and not self.monitor.guest_dead:
            try:
                self.monitor.run(RUN_SLICE)
            except TripleFault as fault:
                self.monitor._guest_died(str(fault))

    def run_guest(self, max_instructions: int = 1_000_000,
                  until: Optional[Callable[[], bool]] = None) -> int:
        """Run the guest outside debugger control (no host waiting)."""
        if not self._booted:
            raise MonitorError("boot a guest first")
        self.monitor.stopped = False
        return self.monitor.run(max_instructions, until=until)

    # -- convenience wrappers over the RSP client ------------------------------

    def attach(self) -> int:
        """Handshake like GDB: query support, then the halt reason."""
        self.client.exchange(b"qSupported:swbreak+")
        return self.client.query_halt_reason()

    def checkpoint(self, name: str = "default") -> None:
        """Snapshot the stopped guest under ``name``."""
        from repro.core import snapshot as snap
        self.checkpoints.save(
            name, snap.capture(self.machine, self.monitor, label=name))

    def restore(self, name: str = "default") -> None:
        """Rewind the guest to a named checkpoint."""
        from repro.core import snapshot as snap
        snap.restore(self.machine, self.checkpoints.get(name),
                     self.monitor)

    @property
    def guest_alive(self) -> bool:
        return not self.monitor.guest_dead

    @property
    def console_output(self) -> bytes:
        return bytes(self.monitor.console)
