"""Guest checkpoint/restore — a simulator-enabled debugging extension.

A classic pain of OS debugging is that the bug destroys the state you
needed to see.  Because this target is simulated, the debug session can
checkpoint the *whole guest* (CPU, memory, PIC, monitor shadow state,
disk write overlays) while it is stopped, let it run into the weeds,
and wind it back.

Scope: snapshots are taken at **quiescent stop points** — the guest is
stopped and no device operation is in flight.  In-flight DMA or pending
wire events are deliberately not captured (the capture refuses, rather
than recording a half-truth); this matches the stop-the-world
checkpoint discipline of record/replay debuggers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import MonitorError
from repro.hw.seg import SegmentDescriptor


@dataclass
class _PicChipState:
    irr: int
    isr: int
    imr: int
    vector_base: int


@dataclass
class MachineSnapshot:
    """Everything needed to put a stopped guest back exactly here."""

    label: str
    cycle: int
    # CPU
    regs: List[int] = field(default_factory=list)
    pc: int = 0
    flags: int = 0
    crs: List[int] = field(default_factory=list)
    segments: List[Tuple[int, bytes]] = field(default_factory=list)
    gdtr: Tuple[int, int] = (0, 0)
    idtr: Tuple[int, int] = (0, 0)
    tss_base: int = 0
    halted: bool = False
    # Memory + device state
    memory: bytes = b""
    pic: List[_PicChipState] = field(default_factory=list)
    disk_overlays: List[Dict[int, bytes]] = field(default_factory=list)
    # Monitor shadow state (None when captured on bare metal)
    shadow: Optional[dict] = None

    @property
    def size_bytes(self) -> int:
        return len(self.memory)


def _quiesce_check(machine) -> None:
    if machine.hba._in_flight:
        raise MonitorError(
            "cannot snapshot: SCSI requests in flight — let the guest "
            "reach a quiescent stop first")
    next_event = machine.queue.peek_time()
    if next_event is not None and machine.nic is not None \
            and machine.nic._tx_busy_until > machine.queue.now:
        raise MonitorError(
            "cannot snapshot: NIC transmission in flight")


def capture(machine, monitor=None, label: str = "") -> MachineSnapshot:
    """Snapshot a stopped guest."""
    _quiesce_check(machine)
    cpu = machine.cpu
    snapshot = MachineSnapshot(
        label=label or f"cycle-{cpu.cycle_count}",
        cycle=cpu.cycle_count,
        regs=list(cpu.regs),
        pc=cpu.pc,
        flags=cpu.flags,
        crs=list(cpu.crs),
        segments=[(cache.selector, cache.descriptor.pack())
                  for cache in cpu.segments],
        gdtr=(cpu.gdt.base, cpu.gdt.limit),
        idtr=(cpu.idtr_base, cpu.idtr_limit),
        tss_base=cpu.tss_base,
        halted=cpu.halted,
        memory=machine.memory.read(0, machine.memory.size),
        pic=[_PicChipState(chip.irr, chip.isr, chip.imr,
                           chip.vector_base)
             for chip in (machine.pic.master, machine.pic.slave)],
        disk_overlays=[dict(disk._overlay) for disk in machine.disks],
    )
    if monitor is not None:
        shadow = monitor.shadow
        snapshot.shadow = {
            "vif": shadow.vif,
            "vif_before_reflect": shadow.vif_before_reflect,
            "idtr": (shadow.idtr.base, shadow.idtr.limit),
            "gdtr": (shadow.gdtr.base, shadow.gdtr.limit),
            "tss_base": shadow.tss_base,
            "cr0": shadow.cr0,
            "cr3": shadow.cr3,
            "halted": shadow.halted,
            "vpic": [(chip.irr, chip.isr, chip.imr, chip.vector_base)
                     for chip in (shadow.virtual_pic.master,
                                  shadow.virtual_pic.slave)],
            "guest_dead": monitor.guest_dead,
            "guest_dead_reason": monitor.guest_dead_reason,
        }
    return snapshot


def restore(machine, snapshot: MachineSnapshot, monitor=None) -> None:
    """Rewind a machine to a snapshot taken on it (or a twin of it)."""
    if len(snapshot.memory) != machine.memory.size:
        raise MonitorError(
            f"snapshot is for a {len(snapshot.memory):#x}-byte machine, "
            f"this one has {machine.memory.size:#x}")
    cpu = machine.cpu
    machine.memory.write(0, snapshot.memory)
    cpu.regs[:] = snapshot.regs
    cpu.pc = snapshot.pc
    cpu.flags = snapshot.flags
    cpu.crs[:] = snapshot.crs
    for index, (selector, raw) in enumerate(snapshot.segments):
        cpu.force_segment(index, selector,
                          SegmentDescriptor.unpack(raw))
    cpu.gdt.load(*snapshot.gdtr)
    cpu.idtr_base, cpu.idtr_limit = snapshot.idtr
    cpu.tss_base = snapshot.tss_base
    cpu.halted = snapshot.halted
    cpu.mmu.set_cr3(cpu.crs[3])  # also flushes the TLB

    for chip, state in zip((machine.pic.master, machine.pic.slave),
                           snapshot.pic):
        chip.irr, chip.isr = state.irr, state.isr
        chip.imr, chip.vector_base = state.imr, state.vector_base

    for disk, overlay in zip(machine.disks, snapshot.disk_overlays):
        disk._overlay = dict(overlay)

    if monitor is not None and snapshot.shadow is not None:
        shadow = monitor.shadow
        data = snapshot.shadow
        shadow.vif = data["vif"]
        shadow.vif_before_reflect = data["vif_before_reflect"]
        shadow.idtr.base, shadow.idtr.limit = data["idtr"]
        shadow.gdtr.base, shadow.gdtr.limit = data["gdtr"]
        shadow.tss_base = data["tss_base"]
        shadow.cr0 = data["cr0"]
        shadow.cr3 = data["cr3"]
        shadow.halted = data["halted"]
        for chip, state in zip((shadow.virtual_pic.master,
                                shadow.virtual_pic.slave),
                               data["vpic"]):
            chip.irr, chip.isr, chip.imr, chip.vector_base = state
        monitor.guest_dead = data["guest_dead"]
        monitor.guest_dead_reason = data["guest_dead_reason"]
        # The guest is back from the dead at a stop point.
        monitor.stopped = True


class CheckpointStore:
    """Named snapshots for a debug session."""

    def __init__(self) -> None:
        self._snapshots: Dict[str, MachineSnapshot] = {}

    def save(self, name: str, snapshot: MachineSnapshot) -> None:
        self._snapshots[name] = snapshot

    def get(self, name: str) -> MachineSnapshot:
        try:
            return self._snapshots[name]
        except KeyError:
            raise MonitorError(f"no checkpoint named {name!r}") from None

    def names(self) -> List[str]:
        return sorted(self._snapshots)

    def __len__(self) -> int:
        return len(self._snapshots)
