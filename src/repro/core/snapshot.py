"""Guest checkpoint/restore — a simulator-enabled debugging extension.

A classic pain of OS debugging is that the bug destroys the state you
needed to see.  Because this target is simulated, the debug session can
checkpoint the *whole guest* (CPU, memory, PIC, monitor shadow state,
disk write overlays) while it is stopped, let it run into the weeds,
and wind it back.

Scope: snapshots are taken at **quiescent stop points** — the guest is
stopped and no device operation is in flight.  In-flight DMA or pending
wire events are deliberately not captured (the capture refuses, rather
than recording a half-truth); this matches the stop-the-world
checkpoint discipline of record/replay debuggers.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import MonitorError
from repro.hw.seg import SegmentDescriptor


@dataclass
class _PicChipState:
    irr: int
    isr: int
    imr: int
    vector_base: int


@dataclass
class MachineSnapshot:
    """Everything needed to put a stopped guest back exactly here."""

    label: str
    cycle: int
    # CPU
    regs: List[int] = field(default_factory=list)
    pc: int = 0
    flags: int = 0
    crs: List[int] = field(default_factory=list)
    segments: List[Tuple[int, bytes]] = field(default_factory=list)
    gdtr: Tuple[int, int] = (0, 0)
    idtr: Tuple[int, int] = (0, 0)
    tss_base: int = 0
    halted: bool = False
    # Memory + device state
    memory: bytes = b""
    pic: List[_PicChipState] = field(default_factory=list)
    disk_overlays: List[Dict[int, bytes]] = field(default_factory=list)
    # Timer/queue devices (None on snapshots from before these existed).
    # Armed timers are stored as remaining delays relative to the queue
    # clock: restore never rewinds simulated time, so ``restore`` re-arms
    # them that far into the new future.
    pit: Optional[dict] = None
    rtc: Optional[dict] = None
    uart: Optional[dict] = None
    serial: Optional[dict] = None
    nic: Optional[dict] = None
    # Monitor shadow state (None when captured on bare metal)
    shadow: Optional[dict] = None

    @property
    def size_bytes(self) -> int:
        return len(self.memory)


def _quiesce_check(machine) -> None:
    if machine.hba._in_flight:
        raise MonitorError(
            "cannot snapshot: SCSI requests in flight — let the guest "
            "reach a quiescent stop first")
    next_event = machine.queue.peek_time()
    if next_event is not None and machine.nic is not None \
            and machine.nic._tx_busy_until > machine.queue.now:
        raise MonitorError(
            "cannot snapshot: NIC transmission in flight")


def capture(machine, monitor=None, label: str = "") -> MachineSnapshot:
    """Snapshot a stopped guest."""
    _quiesce_check(machine)
    cpu = machine.cpu
    snapshot = MachineSnapshot(
        label=label or f"cycle-{cpu.cycle_count}",
        cycle=cpu.cycle_count,
        regs=list(cpu.regs),
        pc=cpu.pc,
        flags=cpu.flags,
        crs=list(cpu.crs),
        segments=[(cache.selector, cache.descriptor.pack())
                  for cache in cpu.segments],
        gdtr=(cpu.gdt.base, cpu.gdt.limit),
        idtr=(cpu.idtr_base, cpu.idtr_limit),
        tss_base=cpu.tss_base,
        halted=cpu.halted,
        memory=machine.memory.read(0, machine.memory.size),
        pic=[_PicChipState(chip.irr, chip.isr, chip.imr,
                           chip.vector_base)
             for chip in (machine.pic.master, machine.pic.slave)],
        disk_overlays=[dict(disk._overlay) for disk in machine.disks],
        pit=machine.pit.state(),
        rtc=machine.rtc.state(),
        uart=machine.uart.state(),
        serial=machine.serial_link.state(),
        nic=machine.nic.state() if machine.nic is not None else None,
    )
    if monitor is not None:
        shadow = monitor.shadow
        snapshot.shadow = {
            "vif": shadow.vif,
            "vif_before_reflect": shadow.vif_before_reflect,
            "idtr": (shadow.idtr.base, shadow.idtr.limit),
            "gdtr": (shadow.gdtr.base, shadow.gdtr.limit),
            "tss_base": shadow.tss_base,
            "cr0": shadow.cr0,
            "cr3": shadow.cr3,
            "halted": shadow.halted,
            "vpic": [(chip.irr, chip.isr, chip.imr, chip.vector_base)
                     for chip in (shadow.virtual_pic.master,
                                  shadow.virtual_pic.slave)],
            "guest_dead": monitor.guest_dead,
            "guest_dead_reason": monitor.guest_dead_reason,
        }
    return snapshot


def restore(machine, snapshot: MachineSnapshot, monitor=None) -> None:
    """Rewind a machine to a snapshot taken on it (or a twin of it)."""
    if len(snapshot.memory) != machine.memory.size:
        raise MonitorError(
            f"snapshot is for a {len(snapshot.memory):#x}-byte machine, "
            f"this one has {machine.memory.size:#x}")
    cpu = machine.cpu
    machine.memory.write(0, snapshot.memory)
    cpu.regs[:] = snapshot.regs
    cpu.pc = snapshot.pc
    cpu.flags = snapshot.flags
    cpu.crs[:] = snapshot.crs
    for index, (selector, raw) in enumerate(snapshot.segments):
        cpu.force_segment(index, selector,
                          SegmentDescriptor.unpack(raw))
    cpu.gdt.load(*snapshot.gdtr)
    cpu.idtr_base, cpu.idtr_limit = snapshot.idtr
    cpu.tss_base = snapshot.tss_base
    cpu.halted = snapshot.halted
    cpu.mmu.set_cr3(cpu.crs[3])  # also flushes the TLB

    # Devices first (the UART's load_state recomputes its IRQ line),
    # then the PIC chips so the snapshot's latched request bits win.
    if snapshot.serial is not None:
        machine.serial_link.load_state(snapshot.serial)
    if snapshot.uart is not None:
        machine.uart.load_state(snapshot.uart)
    if snapshot.pit is not None:
        machine.pit.load_state(snapshot.pit)
    if snapshot.rtc is not None:
        machine.rtc.load_state(snapshot.rtc)
    if snapshot.nic is not None and machine.nic is not None:
        machine.nic.load_state(snapshot.nic)

    for chip, state in zip((machine.pic.master, machine.pic.slave),
                           snapshot.pic):
        chip.irr, chip.isr = state.irr, state.isr
        chip.imr, chip.vector_base = state.imr, state.vector_base

    for disk, overlay in zip(machine.disks, snapshot.disk_overlays):
        disk._overlay = dict(overlay)

    if monitor is not None and snapshot.shadow is not None:
        shadow = monitor.shadow
        data = snapshot.shadow
        shadow.vif = data["vif"]
        shadow.vif_before_reflect = data["vif_before_reflect"]
        shadow.idtr.base, shadow.idtr.limit = data["idtr"]
        shadow.gdtr.base, shadow.gdtr.limit = data["gdtr"]
        shadow.tss_base = data["tss_base"]
        shadow.cr0 = data["cr0"]
        shadow.cr3 = data["cr3"]
        shadow.halted = data["halted"]
        for chip, state in zip((shadow.virtual_pic.master,
                                shadow.virtual_pic.slave),
                               data["vpic"]):
            chip.irr, chip.isr, chip.imr, chip.vector_base = state
        monitor.guest_dead = data["guest_dead"]
        monitor.guest_dead_reason = data["guest_dead_reason"]
        # The guest is back from the dead at a stop point.
        monitor.stopped = True


class CheckpointStore:
    """Named snapshots for a debug session, bounded by an LRU cap.

    Each snapshot holds a full memory image, so an unbounded store is a
    session-length memory leak.  Eviction policy: when ``save`` pushes
    the store over ``max_snapshots`` entries or ``max_bytes`` held
    bytes, the least-recently-used snapshots are dropped (``get`` and
    ``save`` both refresh recency; the snapshot just saved is never the
    victim, so one checkpoint always survives even if it alone exceeds
    ``max_bytes``).  Pass ``max_snapshots=None``/``max_bytes=None`` to
    lift either cap.
    """

    def __init__(self, max_snapshots: Optional[int] = 32,
                 max_bytes: Optional[int] = None) -> None:
        if max_snapshots is not None and max_snapshots < 1:
            raise MonitorError("max_snapshots must be >= 1 (or None)")
        self.max_snapshots = max_snapshots
        self.max_bytes = max_bytes
        self.evictions = 0
        self._snapshots: "OrderedDict[str, MachineSnapshot]" = OrderedDict()

    def save(self, name: str, snapshot: MachineSnapshot) -> None:
        self._snapshots.pop(name, None)
        self._snapshots[name] = snapshot
        self._evict()

    def get(self, name: str) -> MachineSnapshot:
        try:
            snapshot = self._snapshots[name]
        except KeyError:
            raise MonitorError(f"no checkpoint named {name!r}") from None
        self._snapshots.move_to_end(name)
        return snapshot

    def names(self) -> List[str]:
        return sorted(self._snapshots)

    def __len__(self) -> int:
        return len(self._snapshots)

    @property
    def held_bytes(self) -> int:
        """Memory-image bytes currently held (the dominant cost)."""
        return sum(snapshot.size_bytes
                   for snapshot in self._snapshots.values())

    def _evict(self) -> None:
        while len(self._snapshots) > 1 and (
                (self.max_snapshots is not None
                 and len(self._snapshots) > self.max_snapshots)
                or (self.max_bytes is not None
                    and self.held_bytes > self.max_bytes)):
            self._snapshots.popitem(last=False)
            self.evictions += 1

    def stats(self) -> dict:
        """Occupancy counters in the ``repro.perf`` accounting shape."""
        return {
            "snapshots": len(self._snapshots),
            "held_bytes": self.held_bytes,
            "max_snapshots": self.max_snapshots,
            "max_bytes": self.max_bytes,
            "evictions": self.evictions,
        }
