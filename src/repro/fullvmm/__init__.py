"""The full (hosted) VMM baseline — the reproduction's VMware WS4."""

from repro.fullvmm.monitor import FullVmm, FullVmmIntercept

__all__ = ["FullVmm", "FullVmmIntercept"]
