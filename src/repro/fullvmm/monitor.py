"""The full virtual machine monitor — the VMware Workstation 4 baseline.

Architecturally this reuses the LVMM's trap-and-emulate machinery (ring
compression, shadow tables, virtual PIC) but drops the defining
shortcut: **nothing passes through**.  Every device-register access —
SCSI HBA ports, NIC MMIO, everything — is intercepted and serviced on a
hosted-I/O path, and all DMA data is copied through bounce buffers, the
cost structure Sugerman et al. (USENIX ATC'01, the paper's reference
[2]) describe for VMware's hosted architecture:

* each intercepted access costs a **host round trip** (guest trap ->
  world switch -> host-OS context -> device emulation -> back), tens of
  microseconds on period hardware;
* packet and block data is copied between guest memory and the
  emulation layer (per-byte cost), once in each direction;
* interrupts make the double hop host -> VMM -> guest.

Functionally the guest still works — accesses are *forwarded* to the
same device models — so the same guest image produces the same output
on both monitors, only slower.  That is exactly the property Fig. 3.1
measures.
"""

from __future__ import annotations

import struct
from typing import Optional

from repro.hw.machine import Machine
from repro.hw.nic import MMIO_SPAN, REG_TDT, DESCRIPTOR_SIZE
from repro.hw.scsi import (
    CMD_START,
    PORT_BASE_SCSI,
    PORT_SPAN,
    REG_COMMAND,
    REG_MAILBOX,
)
from repro.sim.budget import CAT_COPY, CAT_EMULATION, CAT_WORLD_SWITCH
from repro.perf.costmodel import CostModel
from repro.vmm.intercept import LVMM_INTERCEPTED_PORTS, LvmmIntercept
from repro.vmm.monitor import LightweightVmm


class FullVmmIntercept(LvmmIntercept):
    """Intercepts *everything* and charges the hosted-I/O cost."""

    def __init__(self, shadow, bus, budget, cost_model, machine,
                 include_world_switch: bool = False,
                 on_virtual_eoi=None) -> None:
        super().__init__(shadow, bus, budget, cost_model,
                         include_world_switch=include_world_switch,
                         on_virtual_eoi=on_virtual_eoi)
        self._machine = machine
        self._last_mailbox = 0
        self.hosted_accesses = 0
        self.bytes_copied = 0

    # -- policy: everything traps --------------------------------------------

    def intercepts_port(self, port: int) -> bool:
        return True

    def intercepts_mmio(self, addr: int) -> bool:
        base = self._machine.nic_mmio_base
        return base <= addr < base + MMIO_SPAN

    # -- hosted path ------------------------------------------------------------

    def _charge_hosted(self) -> None:
        self.hosted_accesses += 1
        self._budget.charge(self._cost.host_switch_cycles, CAT_EMULATION)

    def _charge_copy(self, length: int) -> None:
        """Bounce-buffer copy: guest -> emulation layer -> backend."""
        self.bytes_copied += length
        self._budget.charge(
            int(length * self._cost.emulation_copy_byte_cycles), CAT_COPY)

    def emulate_port_read(self, port: int, size: int) -> int:
        if port in LVMM_INTERCEPTED_PORTS:
            return super().emulate_port_read(port, size)
        self._charge_hosted()
        return self._bus.raw_port_read(port, size)

    def emulate_port_write(self, port: int, value: int, size: int) -> None:
        if port in LVMM_INTERCEPTED_PORTS:
            super().emulate_port_write(port, value, size)
            return
        self._charge_hosted()
        if PORT_BASE_SCSI <= port < PORT_BASE_SCSI + PORT_SPAN:
            self._track_scsi(port - PORT_BASE_SCSI, value)
        self._bus.raw_port_write(port, value, size)

    def emulate_mmio_read(self, addr: int, size: int) -> int:
        self._charge_hosted()
        return self._bus.raw_mmio_read(addr, size)

    def emulate_mmio_write(self, addr: int, value: int, size: int) -> None:
        self._charge_hosted()
        offset = addr - self._machine.nic_mmio_base
        if offset == REG_TDT:
            self._track_nic_tx(value)
        self._bus.raw_mmio_write(addr, value, size)

    # -- DMA copy tracking ------------------------------------------------------

    def _track_scsi(self, register: int, value: int) -> None:
        if register == REG_MAILBOX:
            self._last_mailbox = value
            return
        if register == REG_COMMAND and value == CMD_START:
            # The emulated HBA copies the data buffer both ways.
            raw = self._machine.memory.read(self._last_mailbox + 24, 4)
            length = struct.unpack("<I", raw)[0]
            self._charge_copy(2 * length)

    def _track_nic_tx(self, new_tail: int) -> None:
        nic = self._machine.nic
        if nic is None or nic.tdlen == 0:
            return
        index = nic.tdh
        while index != new_tail:
            raw = self._machine.memory.read(
                nic.tdba + index * DESCRIPTOR_SIZE + 4, 4)
            length = struct.unpack("<I", raw)[0]
            # Guest frame -> VMM bounce buffer -> host NIC queue.
            self._charge_copy(2 * length)
            index = (index + 1) % nic.tdlen


class FullVmm(LightweightVmm):
    """The trap-everything monitor."""

    name = "fullvmm"

    def __init__(self, machine: Machine,
                 cost_model: Optional[CostModel] = None) -> None:
        super().__init__(machine, cost_model)
        # Replace the partial intercept with the total one.
        self.intercept = FullVmmIntercept(
            self.shadow, machine.bus, machine.budget, self.cost, machine,
            include_world_switch=False,
            on_virtual_eoi=self._after_virtual_eoi)

    def install(self) -> None:
        super().install()
        self.machine.bus.intercept = self.intercept
        # No passthrough: the I/O bitmap grants the guest nothing, so
        # every IN/OUT traps and lands in the intercept above.
        self.machine.cpu.io_allowed_ports = set()

    def _on_interrupt(self, cpu, vector: int) -> bool:
        # Interrupts take the double host hop before reflection.
        extra = (self.cost.fullvmm_interrupt_cost()
                 - self.cost.lvmm_interrupt_cost())
        if extra > 0:
            self.machine.budget.charge(extra, CAT_EMULATION)
        return super()._on_interrupt(cpu, vector)
