"""Command-line assembler / disassembler.

    repro-asm build  kernel.s -o kernel.bin [--org 0x200000] [--symbols]
    repro-asm dump   kernel.bin [--org 0x200000] [--count N]
    repro-asm listing kernel.s [--org 0x200000]

``build`` writes the flat image; ``dump`` disassembles an image;
``listing`` shows address/bytes/source for an assembly file.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Optional, Sequence

from repro.asm.assembler import assemble
from repro.asm.disasm import iter_listing
from repro.errors import ReproError


def _cmd_build(args) -> int:
    source = Path(args.source).read_text()
    program = assemble(source, origin=args.org)
    output = Path(args.output) if args.output \
        else Path(args.source).with_suffix(".bin")
    output.write_bytes(program.image)
    print(f"{output}: {len(program.image)} bytes at "
          f"{program.origin:#x}..{program.end:#x}")
    if args.symbols:
        for name in sorted(program.symbols):
            print(f"{program.symbols[name]:08x}  {name}")
    return 0


def _cmd_dump(args) -> int:
    image = Path(args.image).read_bytes()
    count = 0
    for line in iter_listing(image, origin=args.org):
        print(line)
        count += 1
        if args.count and count >= args.count:
            break
    return 0


def _cmd_listing(args) -> int:
    source = Path(args.source).read_text()
    program = assemble(source, origin=args.org)
    lines = source.splitlines()
    for address, line_number, text in program.listing:
        source_text = lines[line_number - 1].strip() \
            if line_number <= len(lines) else text
        print(f"{address:08x}  {source_text}")
    return 0


def _org(text: str) -> int:
    return int(text, 0)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(prog="repro-asm",
                                     description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    build = sub.add_parser("build", help="assemble a source file")
    build.add_argument("source")
    build.add_argument("-o", "--output")
    build.add_argument("--org", type=_org, default=0)
    build.add_argument("--symbols", action="store_true")
    build.set_defaults(func=_cmd_build)

    dump = sub.add_parser("dump", help="disassemble a flat image")
    dump.add_argument("image")
    dump.add_argument("--org", type=_org, default=0)
    dump.add_argument("--count", type=int, default=0)
    dump.set_defaults(func=_cmd_dump)

    listing = sub.add_parser("listing", help="address-annotated source")
    listing.add_argument("source")
    listing.add_argument("--org", type=_org, default=0)
    listing.set_defaults(func=_cmd_listing)

    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except (ReproError, OSError) as exc:
        print(f"repro-asm: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
