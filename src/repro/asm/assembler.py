"""Two-pass assembler for the HX32 instruction set.

Grammar (one statement per line, ``;`` starts a comment)::

    .org  ADDRESS            ; set location counter (forward only)
    .equ  NAME, EXPR         ; define a constant
    .word EXPR [, EXPR ...]  ; emit 32-bit little-endian words
    .byte EXPR [, EXPR ...]  ; emit bytes
    .ascii "text"            ; emit string bytes
    .asciz "text"            ; emit string bytes + NUL
    .align N                 ; pad with zeros to an N-byte boundary
    .space N                 ; emit N zero bytes
    label:                   ; define a label at the location counter
    MNEMONIC operands        ; one instruction

Operand syntax by format::

    MOVI  R0, expr           ; register, immediate
    MOV   R0, R1             ; register, register
    LD    R0, [R1 + expr]    ; load:  R0 <- mem[R1+expr]
    ST    [R1 + expr], R0    ; store: mem[R1+expr] <- R0
    LEA   R0, [R1 + expr]
    JMP   label              ; PC-relative, resolved by the assembler
    INT   expr               ; 8-bit immediate
    INB   R0, R1             ; R0 <- port[R1]
    OUTB  R0, R1             ; port[R1] <- R0
    MOVCR CR3, R0            ; control register <- register
    MOVRC R0, CR3            ; register <- control register
    MOVSEG DS, R0            ; segment selector <- register
    MOVSGR R0, DS            ; register <- segment selector

Expressions support decimal, ``0x`` hex, ``'c'`` characters, labels,
``.`` (current address) and ``+``/``-`` chains.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import AssemblerError
from repro.hw import isa

_LABEL_RE = re.compile(r"^[A-Za-z_.$][A-Za-z0-9_.$]*$")
_STRING_RE = re.compile(r'^"((?:[^"\\]|\\.)*)"$')


@dataclass
class Program:
    """The output of assembly: a flat image plus its symbol table."""

    origin: int
    image: bytes
    symbols: Dict[str, int] = field(default_factory=dict)
    #: (address, source line number, source text) per emitted statement.
    listing: List[Tuple[int, int, str]] = field(default_factory=list)

    @property
    def end(self) -> int:
        return self.origin + len(self.image)

    def load_into(self, memory, offset: int = 0) -> None:
        """Copy the image into physical memory at its origin (+offset)."""
        memory.write(self.origin + offset, self.image)

    def symbol(self, name: str) -> int:
        try:
            return self.symbols[name]
        except KeyError:
            raise AssemblerError(f"unknown symbol {name!r}") from None


@dataclass
class _Statement:
    line_number: int
    text: str
    address: int
    mnemonic: Optional[str] = None
    operands: str = ""
    directive: Optional[str] = None
    size: int = 0


def _unescape(text: str) -> str:
    return (text.replace("\\n", "\n").replace("\\t", "\t")
            .replace("\\0", "\0").replace('\\"', '"').replace("\\\\", "\\"))


class Assembler:
    """Two-pass assembler: pass 1 sizes statements and collects labels,
    pass 2 evaluates expressions and emits bytes."""

    def __init__(self) -> None:
        self.symbols: Dict[str, int] = {}

    # -- public API ------------------------------------------------------

    def assemble(self, source: str, origin: int = 0) -> Program:
        statements, origin = self._pass_one(source, origin)
        return self._pass_two(statements, origin)

    # -- pass 1 -----------------------------------------------------------

    def _pass_one(self, source: str,
                  origin: int) -> Tuple[List[_Statement], int]:
        self.symbols = {}
        statements: List[_Statement] = []
        location = origin
        origin_set = False

        for line_number, raw_line in enumerate(source.splitlines(), start=1):
            line = self._strip_comment(raw_line).strip()
            if not line:
                continue
            # Peel off any label definitions.
            while True:
                match = re.match(r"^([A-Za-z_.$][A-Za-z0-9_.$]*)\s*:\s*", line)
                if not match:
                    break
                label = match.group(1)
                if label in self.symbols:
                    raise AssemblerError(
                        f"line {line_number}: duplicate label {label!r}")
                self.symbols[label] = location
                line = line[match.end():].strip()
            if not line:
                continue

            statement = _Statement(line_number, line, location)
            if line.startswith("."):
                parts = line.split(None, 1)
                statement.directive = parts[0].lower()
                statement.operands = parts[1] if len(parts) > 1 else ""
                size, location, origin, origin_set = self._size_directive(
                    statement, location, origin, origin_set,
                    any_code=bool(statements))
                statement.size = size
            else:
                parts = line.split(None, 1)
                mnemonic = parts[0].upper()
                spec = isa.BY_MNEMONIC.get(mnemonic)
                if spec is None:
                    raise AssemblerError(
                        f"line {line_number}: unknown mnemonic {mnemonic!r}")
                statement.mnemonic = mnemonic
                statement.operands = parts[1] if len(parts) > 1 else ""
                statement.size = spec.length
                location += spec.length
            statements.append(statement)
        return statements, origin

    def _size_directive(self, statement: _Statement, location: int,
                        origin: int, origin_set: bool,
                        any_code: bool) -> Tuple[int, int, int, bool]:
        name = statement.directive
        operands = statement.operands
        line = statement.line_number
        if name == ".org":
            target = self._eval(operands, line, location)
            if any_code and target < location:
                raise AssemblerError(
                    f"line {line}: .org cannot move backwards "
                    f"({target:#x} < {location:#x})")
            if not any_code and not origin_set:
                return 0, target, target, True
            return target - location, target, origin, origin_set
        if name == ".equ":
            parts = operands.split(",", 1)
            if len(parts) != 2:
                raise AssemblerError(f"line {line}: .equ NAME, EXPR")
            symbol_name = parts[0].strip()
            if not _LABEL_RE.match(symbol_name):
                raise AssemblerError(
                    f"line {line}: bad .equ name {symbol_name!r}")
            if symbol_name in self.symbols:
                raise AssemblerError(
                    f"line {line}: duplicate symbol {symbol_name!r}")
            self.symbols[symbol_name] = self._eval(parts[1], line, location)
            return 0, location, origin, origin_set
        if name == ".word":
            count = len(self._split_operands(operands))
            return 4 * count, location + 4 * count, origin, origin_set
        if name == ".byte":
            count = len(self._split_operands(operands))
            return count, location + count, origin, origin_set
        if name in (".ascii", ".asciz"):
            text = self._parse_string(operands, line)
            size = len(text) + (1 if name == ".asciz" else 0)
            return size, location + size, origin, origin_set
        if name == ".align":
            boundary = self._eval(operands, line, location)
            if boundary <= 0 or boundary & (boundary - 1):
                raise AssemblerError(
                    f"line {line}: .align needs a power of two")
            padding = (-location) % boundary
            return padding, location + padding, origin, origin_set
        if name == ".space":
            size = self._eval(operands, line, location)
            if size < 0:
                raise AssemblerError(f"line {line}: negative .space")
            return size, location + size, origin, origin_set
        raise AssemblerError(f"line {line}: unknown directive {name!r}")

    # -- pass 2 -----------------------------------------------------------

    def _pass_two(self, statements: List[_Statement], origin: int) -> Program:
        chunks: List[bytes] = []
        listing: List[Tuple[int, int, str]] = []
        for statement in statements:
            if statement.directive is not None:
                emitted = self._emit_directive(statement)
            else:
                emitted = self._emit_instruction(statement)
            if len(emitted) != statement.size:
                raise AssemblerError(
                    f"line {statement.line_number}: internal size mismatch "
                    f"({len(emitted)} != {statement.size})")
            if emitted:
                listing.append((statement.address, statement.line_number,
                                statement.text))
            chunks.append(emitted)
        return Program(origin=origin, image=b"".join(chunks),
                       symbols=dict(self.symbols), listing=listing)

    def _emit_directive(self, statement: _Statement) -> bytes:
        name = statement.directive
        line = statement.line_number
        operands = statement.operands
        if name in (".org", ".align", ".space"):
            return b"\x00" * statement.size
        if name == ".equ":
            return b""
        if name == ".word":
            values = [self._eval(op, line, statement.address)
                      for op in self._split_operands(operands)]
            return b"".join(isa.mask32(v).to_bytes(4, "little")
                            for v in values)
        if name == ".byte":
            values = [self._eval(op, line, statement.address)
                      for op in self._split_operands(operands)]
            return bytes(v & 0xFF for v in values)
        if name == ".ascii":
            return self._parse_string(operands, line).encode("latin-1")
        if name == ".asciz":
            return self._parse_string(operands, line).encode("latin-1") + b"\0"
        raise AssemblerError(f"line {line}: unknown directive {name!r}")

    def _emit_instruction(self, statement: _Statement) -> bytes:
        spec = isa.BY_MNEMONIC[statement.mnemonic]
        line = statement.line_number
        operands = statement.operands.strip()
        address = statement.address
        fmt = spec.fmt

        if fmt == isa.FMT_NONE:
            self._expect_no_operands(operands, line)
            return bytes([spec.opcode])
        if fmt == isa.FMT_R:
            reg = self._parse_reg(operands, line)
            return bytes([spec.opcode, reg])
        if fmt == isa.FMT_RR:
            first, second = self._two_operands(operands, line)
            ra = self._parse_reg(first, line)
            rb = self._parse_reg(second, line)
            return bytes([spec.opcode, (ra << 4) | rb])
        if fmt == isa.FMT_RI:
            first, second = self._two_operands(operands, line)
            reg = self._parse_reg(first, line)
            value = self._eval(second, line, address)
            return bytes([spec.opcode, reg]) + \
                isa.mask32(value).to_bytes(4, "little")
        if fmt == isa.FMT_RRI:
            return self._emit_rri(spec, operands, line, address)
        if fmt == isa.FMT_I32:
            value = self._eval(operands, line, address)
            return bytes([spec.opcode]) + isa.mask32(value).to_bytes(4, "little")
        if fmt == isa.FMT_I8:
            value = self._eval(operands, line, address)
            if not 0 <= value <= 0xFF:
                raise AssemblerError(
                    f"line {line}: 8-bit immediate out of range: {value}")
            return bytes([spec.opcode, value])
        if fmt == isa.FMT_REL:
            target = self._eval(operands, line, address)
            rel = target - (address + spec.length)
            return bytes([spec.opcode]) + \
                isa.mask32(rel).to_bytes(4, "little")
        if fmt == isa.FMT_CR:
            return self._emit_cr(spec, operands, line)
        if fmt == isa.FMT_SEG:
            return self._emit_seg(spec, operands, line)
        raise AssemblerError(f"line {line}: unhandled format {fmt!r}")

    def _emit_rri(self, spec: isa.InsnSpec, operands: str, line: int,
                  address: int) -> bytes:
        first, second = self._two_operands(operands, line)
        if spec.mnemonic.startswith("ST"):
            mem_operand, reg_operand = first, second
        else:
            reg_operand, mem_operand = first, second
        ra = self._parse_reg(reg_operand, line)
        rb, displacement = self._parse_mem(mem_operand, line, address)
        return bytes([spec.opcode, (ra << 4) | rb]) + \
            isa.mask32(displacement).to_bytes(4, "little")

    def _emit_cr(self, spec: isa.InsnSpec, operands: str, line: int) -> bytes:
        first, second = self._two_operands(operands, line)
        if spec.mnemonic == "MOVCR":
            cr_operand, reg_operand = first, second
        else:
            reg_operand, cr_operand = first, second
        crn = self._parse_cr(cr_operand, line)
        reg = self._parse_reg(reg_operand, line)
        return bytes([spec.opcode, (crn << 4) | reg])

    def _emit_seg(self, spec: isa.InsnSpec, operands: str, line: int) -> bytes:
        first, second = self._two_operands(operands, line)
        if spec.mnemonic == "MOVSEG":
            seg_operand, reg_operand = first, second
        else:
            reg_operand, seg_operand = first, second
        segn = self._parse_seg(seg_operand, line)
        reg = self._parse_reg(reg_operand, line)
        return bytes([spec.opcode, (segn << 4) | reg])

    # -- operand parsing ------------------------------------------------------

    @staticmethod
    def _strip_comment(line: str) -> str:
        in_string = False
        for index, char in enumerate(line):
            if char == '"' and (index == 0 or line[index - 1] != "\\"):
                in_string = not in_string
            elif char == ";" and not in_string:
                return line[:index]
        return line

    @staticmethod
    def _split_operands(text: str) -> List[str]:
        parts = [p.strip() for p in text.split(",")]
        if parts == [""]:
            raise AssemblerError("expected operands")
        return parts

    @staticmethod
    def _expect_no_operands(operands: str, line: int) -> None:
        if operands:
            raise AssemblerError(
                f"line {line}: unexpected operands {operands!r}")

    @staticmethod
    def _two_operands(operands: str, line: int) -> Tuple[str, str]:
        depth = 0
        for index, char in enumerate(operands):
            if char == "[":
                depth += 1
            elif char == "]":
                depth -= 1
            elif char == "," and depth == 0:
                return operands[:index].strip(), operands[index + 1:].strip()
        raise AssemblerError(f"line {line}: expected two operands in "
                             f"{operands!r}")

    @staticmethod
    def _parse_reg(text: str, line: int) -> int:
        reg = isa.reg_number(text.strip())
        if reg is None:
            raise AssemblerError(f"line {line}: bad register {text!r}")
        return reg

    @staticmethod
    def _parse_cr(text: str, line: int) -> int:
        name = text.strip().upper()
        if name in isa.CR_NAMES:
            return isa.CR_NAMES.index(name)
        raise AssemblerError(f"line {line}: bad control register {text!r}")

    @staticmethod
    def _parse_seg(text: str, line: int) -> int:
        name = text.strip().upper()
        if name in isa.SEG_NAMES:
            return isa.SEG_NAMES.index(name)
        raise AssemblerError(f"line {line}: bad segment register {text!r}")

    def _parse_mem(self, text: str, line: int,
                   address: int) -> Tuple[int, int]:
        text = text.strip()
        if not (text.startswith("[") and text.endswith("]")):
            raise AssemblerError(
                f"line {line}: expected memory operand, got {text!r}")
        inner = text[1:-1].strip()
        match = re.match(r"^(R\d+|SP|FP)\s*(?:([+-])\s*(.+))?$", inner,
                         re.IGNORECASE)
        if not match:
            raise AssemblerError(
                f"line {line}: bad memory operand {text!r} "
                "(expected [Rn], [Rn+expr] or [Rn-expr])")
        reg = self._parse_reg(match.group(1), line)
        displacement = 0
        if match.group(2):
            displacement = self._eval(match.group(3), line, address)
            if match.group(2) == "-":
                displacement = -displacement
        return reg, displacement

    def _parse_string(self, operands: str, line: int) -> str:
        match = _STRING_RE.match(operands.strip())
        if not match:
            raise AssemblerError(f"line {line}: expected quoted string")
        return _unescape(match.group(1))

    # -- expression evaluation ------------------------------------------------

    def _eval(self, text: str, line: int, address: int) -> int:
        tokens = re.findall(
            r"0x[0-9A-Fa-f]+|\d+|'(?:\\.|[^'])'|[A-Za-z_.$][A-Za-z0-9_.$]*"
            r"|[+\-]", text.replace(" ", ""))
        if not tokens or "".join(tokens) != text.replace(" ", ""):
            raise AssemblerError(f"line {line}: cannot parse expression "
                                 f"{text!r}")
        total = 0
        sign = 1
        expect_value = True
        for token in tokens:
            if token in "+-":
                if expect_value:
                    if token == "-":
                        sign = -sign
                    continue
                sign = 1 if token == "+" else -1
                expect_value = True
                continue
            if not expect_value:
                raise AssemblerError(
                    f"line {line}: unexpected token {token!r} in {text!r}")
            total += sign * self._atom(token, line, address)
            sign = 1
            expect_value = False
        if expect_value:
            raise AssemblerError(f"line {line}: dangling operator in {text!r}")
        return total

    def _atom(self, token: str, line: int, address: int) -> int:
        if token.startswith("0x") or token.startswith("0X"):
            return int(token, 16)
        if token.isdigit():
            return int(token, 10)
        if token.startswith("'"):
            char = _unescape(token[1:-1])
            if len(char) != 1:
                raise AssemblerError(f"line {line}: bad char literal {token}")
            return ord(char)
        if token == ".":
            return address
        if token in self.symbols:
            return self.symbols[token]
        raise AssemblerError(f"line {line}: undefined symbol {token!r}")


def assemble(source: str, origin: int = 0) -> Program:
    """Convenience wrapper: assemble ``source`` at ``origin``."""
    return Assembler().assemble(source, origin)
