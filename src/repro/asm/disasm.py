"""Disassembler for HX32 machine code.

Produces text the assembler accepts back, so
``assemble(disassemble(assemble(src))).image == assemble(src).image``
— a property the test suite checks with hypothesis.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional

from repro.errors import DisassemblerError
from repro.hw import isa


#: Mnemonic of the pseudo-instruction emitted by :func:`decode_range`
#: for a byte that does not decode (invalid opcode or truncated tail).
PSEUDO_BYTE = ".byte"


@dataclass(frozen=True)
class DecodedInsn:
    address: int
    opcode: int
    mnemonic: str
    length: int
    text: str
    raw: bytes

    @property
    def is_pseudo(self) -> bool:
        """True for the ``.byte`` recovery pseudo-instruction."""
        return self.mnemonic == PSEUDO_BYTE


def _reg(number: int) -> str:
    return f"R{number & 0x7}"


def decode_one(code: bytes, offset: int, address: int) -> DecodedInsn:
    """Decode a single instruction at ``code[offset:]``."""
    if offset >= len(code):
        raise DisassemblerError(f"decode past end of buffer at {offset}")
    opcode = code[offset]
    spec = isa.SPECS.get(opcode)
    if spec is None:
        raise DisassemblerError(
            f"invalid opcode 0x{opcode:02x} at address {address:#x}")
    if offset + spec.length > len(code):
        raise DisassemblerError(
            f"truncated {spec.mnemonic} at address {address:#x}")
    raw = bytes(code[offset:offset + spec.length])
    body = raw[1:]
    text = _render(spec, body, address)
    return DecodedInsn(address=address, opcode=opcode,
                       mnemonic=spec.mnemonic, length=spec.length,
                       text=text, raw=raw)


def _render(spec: isa.InsnSpec, body: bytes, address: int) -> str:
    name = spec.mnemonic
    fmt = spec.fmt
    if fmt == isa.FMT_NONE:
        return name
    if fmt == isa.FMT_R:
        return f"{name} {_reg(body[0])}"
    if fmt == isa.FMT_RR:
        ra = (body[0] >> 4) & 0x7
        rb = body[0] & 0x7
        return f"{name} {_reg(ra)}, {_reg(rb)}"
    if fmt == isa.FMT_RI:
        value = int.from_bytes(body[1:5], "little")
        return f"{name} {_reg(body[0])}, {value:#x}"
    if fmt == isa.FMT_RRI:
        ra = (body[0] >> 4) & 0x7
        rb = body[0] & 0x7
        disp = isa.signed32(int.from_bytes(body[1:5], "little"))
        sign = "+" if disp >= 0 else "-"
        mem = f"[{_reg(rb)}{sign}{abs(disp):#x}]"
        if name.startswith("ST"):
            return f"{name} {mem}, {_reg(ra)}"
        return f"{name} {_reg(ra)}, {mem}"
    if fmt == isa.FMT_I32:
        value = int.from_bytes(body[0:4], "little")
        return f"{name} {value:#x}"
    if fmt == isa.FMT_I8:
        return f"{name} {body[0]:#x}"
    if fmt == isa.FMT_REL:
        rel = isa.signed32(int.from_bytes(body[0:4], "little"))
        target = isa.mask32(address + spec.length + rel)
        return f"{name} {target:#x}"
    if fmt == isa.FMT_CR:
        crn = (body[0] >> 4) & 0x3
        reg = body[0] & 0x7
        if name == "MOVCR":
            return f"{name} {isa.CR_NAMES[crn]}, {_reg(reg)}"
        return f"{name} {_reg(reg)}, {isa.CR_NAMES[crn]}"
    if fmt == isa.FMT_SEG:
        segn = (body[0] >> 4) & 0x3
        reg = body[0] & 0x7
        if segn >= len(isa.SEG_NAMES):
            raise DisassemblerError(f"bad segment number {segn}")
        if name == "MOVSEG":
            return f"{name} {isa.SEG_NAMES[segn]}, {_reg(reg)}"
        return f"{name} {_reg(reg)}, {isa.SEG_NAMES[segn]}"
    raise DisassemblerError(f"unhandled format {fmt!r}")


def _pseudo_byte(code: bytes, offset: int, address: int) -> DecodedInsn:
    raw = bytes(code[offset:offset + 1])
    return DecodedInsn(address=address, opcode=raw[0], mnemonic=PSEUDO_BYTE,
                       length=1, text=f"{PSEUDO_BYTE} {raw[0]:#04x}", raw=raw)


def decode_range(code: bytes, origin: int = 0, start: int = 0,
                 end: Optional[int] = None) -> Iterator[DecodedInsn]:
    """Linear-sweep decode of ``code[start:end]``.

    Unlike :func:`decode_one` this never raises on bad bytes: an invalid
    opcode, or an instruction truncated by the window, is emitted as a
    one-byte ``.byte`` pseudo-instruction and the sweep resumes at the
    next byte.  The yielded instructions tile the window exactly, which
    is what both the static analyzer and the round-trip property tests
    rely on.
    """
    if end is None:
        end = len(code)
    end = min(end, len(code))
    offset = start
    while offset < end:
        address = origin + offset
        try:
            insn = decode_one(code, offset, address)
        except DisassemblerError:
            insn = _pseudo_byte(code, offset, address)
        if offset + insn.length > end:
            # The instruction straddles the window's end: recover
            # byte-by-byte instead of decoding past it.
            insn = _pseudo_byte(code, offset, address)
        yield insn
        offset += insn.length


def disassemble(code: bytes, origin: int = 0,
                count: Optional[int] = None,
                strict: bool = True) -> List[DecodedInsn]:
    """Decode instructions until the buffer ends (or ``count`` decoded).

    With ``strict=False``, decoding stops quietly at the first invalid
    or truncated instruction — the right behaviour when decoding an
    arbitrary memory window whose tail cuts an instruction in half.
    """
    out: List[DecodedInsn] = []
    for insn in decode_range(code, origin):
        if count is not None and len(out) >= count:
            break
        if insn.is_pseudo:
            if strict:
                # Re-raise the original decoder diagnostic.
                decode_one(code, insn.address - origin, insn.address)
                raise DisassemblerError(
                    f"undecodable byte {insn.raw[0]:#04x} "
                    f"at address {insn.address:#x}")
            break
        out.append(insn)
    return out


def iter_listing(code: bytes, origin: int = 0) -> Iterator[str]:
    """Yield ``address:  bytes   text`` lines for a code buffer."""
    for insn in disassemble(code, origin):
        raw = insn.raw.hex()
        yield f"{insn.address:08x}:  {raw:<12}  {insn.text}"
