"""Disassembler for HX32 machine code.

Produces text the assembler accepts back, so
``assemble(disassemble(assemble(src))).image == assemble(src).image``
— a property the test suite checks with hypothesis.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional

from repro.errors import DisassemblerError
from repro.hw import isa


@dataclass(frozen=True)
class DecodedInsn:
    address: int
    opcode: int
    mnemonic: str
    length: int
    text: str
    raw: bytes


def _reg(number: int) -> str:
    return f"R{number & 0x7}"


def decode_one(code: bytes, offset: int, address: int) -> DecodedInsn:
    """Decode a single instruction at ``code[offset:]``."""
    if offset >= len(code):
        raise DisassemblerError(f"decode past end of buffer at {offset}")
    opcode = code[offset]
    spec = isa.SPECS.get(opcode)
    if spec is None:
        raise DisassemblerError(
            f"invalid opcode 0x{opcode:02x} at address {address:#x}")
    if offset + spec.length > len(code):
        raise DisassemblerError(
            f"truncated {spec.mnemonic} at address {address:#x}")
    raw = bytes(code[offset:offset + spec.length])
    body = raw[1:]
    text = _render(spec, body, address)
    return DecodedInsn(address=address, opcode=opcode,
                       mnemonic=spec.mnemonic, length=spec.length,
                       text=text, raw=raw)


def _render(spec: isa.InsnSpec, body: bytes, address: int) -> str:
    name = spec.mnemonic
    fmt = spec.fmt
    if fmt == isa.FMT_NONE:
        return name
    if fmt == isa.FMT_R:
        return f"{name} {_reg(body[0])}"
    if fmt == isa.FMT_RR:
        ra = (body[0] >> 4) & 0x7
        rb = body[0] & 0x7
        return f"{name} {_reg(ra)}, {_reg(rb)}"
    if fmt == isa.FMT_RI:
        value = int.from_bytes(body[1:5], "little")
        return f"{name} {_reg(body[0])}, {value:#x}"
    if fmt == isa.FMT_RRI:
        ra = (body[0] >> 4) & 0x7
        rb = body[0] & 0x7
        disp = isa.signed32(int.from_bytes(body[1:5], "little"))
        sign = "+" if disp >= 0 else "-"
        mem = f"[{_reg(rb)}{sign}{abs(disp):#x}]"
        if name.startswith("ST"):
            return f"{name} {mem}, {_reg(ra)}"
        return f"{name} {_reg(ra)}, {mem}"
    if fmt == isa.FMT_I32:
        value = int.from_bytes(body[0:4], "little")
        return f"{name} {value:#x}"
    if fmt == isa.FMT_I8:
        return f"{name} {body[0]:#x}"
    if fmt == isa.FMT_REL:
        rel = isa.signed32(int.from_bytes(body[0:4], "little"))
        target = isa.mask32(address + spec.length + rel)
        return f"{name} {target:#x}"
    if fmt == isa.FMT_CR:
        crn = (body[0] >> 4) & 0x3
        reg = body[0] & 0x7
        if name == "MOVCR":
            return f"{name} {isa.CR_NAMES[crn]}, {_reg(reg)}"
        return f"{name} {_reg(reg)}, {isa.CR_NAMES[crn]}"
    if fmt == isa.FMT_SEG:
        segn = (body[0] >> 4) & 0x3
        reg = body[0] & 0x7
        if segn >= len(isa.SEG_NAMES):
            raise DisassemblerError(f"bad segment number {segn}")
        if name == "MOVSEG":
            return f"{name} {isa.SEG_NAMES[segn]}, {_reg(reg)}"
        return f"{name} {_reg(reg)}, {isa.SEG_NAMES[segn]}"
    raise DisassemblerError(f"unhandled format {fmt!r}")


def disassemble(code: bytes, origin: int = 0,
                count: Optional[int] = None,
                strict: bool = True) -> List[DecodedInsn]:
    """Decode instructions until the buffer ends (or ``count`` decoded).

    With ``strict=False``, decoding stops quietly at the first invalid
    or truncated instruction — the right behaviour when decoding an
    arbitrary memory window whose tail cuts an instruction in half.
    """
    out: List[DecodedInsn] = []
    offset = 0
    while offset < len(code):
        if count is not None and len(out) >= count:
            break
        try:
            insn = decode_one(code, offset, origin + offset)
        except DisassemblerError:
            if strict:
                raise
            break
        out.append(insn)
        offset += insn.length
    return out


def iter_listing(code: bytes, origin: int = 0) -> Iterator[str]:
    """Yield ``address:  bytes   text`` lines for a code buffer."""
    for insn in disassemble(code, origin):
        raw = insn.raw.hex()
        yield f"{insn.address:08x}:  {raw:<12}  {insn.text}"
