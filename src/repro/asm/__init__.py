"""Assembler and disassembler for the HX32 ISA."""

from repro.asm.assembler import Assembler, Program, assemble
from repro.asm.disasm import (
    PSEUDO_BYTE,
    DecodedInsn,
    decode_one,
    decode_range,
    disassemble,
    iter_listing,
)

__all__ = [
    "Assembler",
    "Program",
    "assemble",
    "PSEUDO_BYTE",
    "DecodedInsn",
    "decode_one",
    "decode_range",
    "disassemble",
    "iter_listing",
]
