"""Assembler and disassembler for the HX32 ISA."""

from repro.asm.assembler import Assembler, Program, assemble
from repro.asm.disasm import DecodedInsn, decode_one, disassemble, iter_listing

__all__ = [
    "Assembler",
    "Program",
    "assemble",
    "DecodedInsn",
    "decode_one",
    "disassemble",
    "iter_listing",
]
