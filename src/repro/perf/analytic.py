"""Closed-form CPU-load model — an independent cross-check on the DES.

The discrete-event simulation in :mod:`repro.perf.load` counts every
event as it happens.  This module predicts the same demanded load from
event *rates*: given a transfer rate, how many frames, interrupts, disk
requests, PIC accesses and traps per second the workload generates, and
what each costs on each stack.  The test suite asserts the two agree
within a few percent — a strong guard against either model silently
drifting from the other.

Event-count derivation (per second, at payload rate ``R`` bytes/s):

* segments/s      ``R / segment_size``
* frames/s        segments/s x ceil((segment+8) / 1480)
* NIC interrupts  frames/s / coalesce
* disk requests   ``R / read_chunk`` (2 MB reads)
* ticks           ``timer_hz``

Per-event cost tallies mirror the driver code paths in
:mod:`repro.guest.drivers` one for one (each ``privileged_op``, EOI
write, register access and ISR is itemised below).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from repro.perf.costmodel import DEFAULT_COST_MODEL, CostModel

SEGMENT_SIZE = 1024 * 1024
READ_CHUNK = 2 * 1024 * 1024
FRAGMENT_PAYLOAD = (1500 - 20) & ~7   # 1480
UDP_HEADER = 8

#: A cheap trapped flag operation (stacks.privileged_op emulation part).
PRIV_EMU = 150
#: Bare-metal CLI/STI cost.
PRIV_BARE = 3


@dataclass(frozen=True)
class EventRates:
    """Workload event frequencies at one transfer rate."""

    segments_per_sec: float
    frames_per_sec: float
    nic_interrupts_per_sec: float
    disk_requests_per_sec: float
    ticks_per_sec: float

    @classmethod
    def at_rate(cls, rate_bps: float,
                cost: CostModel = DEFAULT_COST_MODEL,
                segment_size: int = SEGMENT_SIZE,
                read_chunk: int = READ_CHUNK) -> "EventRates":
        bytes_per_sec = rate_bps / 8.0
        segments = bytes_per_sec / segment_size
        frames_per_segment = math.ceil(
            (segment_size + UDP_HEADER) / FRAGMENT_PAYLOAD)
        frames = segments * frames_per_segment
        return cls(
            segments_per_sec=segments,
            frames_per_sec=frames,
            nic_interrupts_per_sec=frames / cost.nic_coalesce,
            disk_requests_per_sec=bytes_per_sec / read_chunk,
            ticks_per_sec=cost.timer_hz,
        )


def _guest_common(rates: EventRates, rate_bps: float,
                  cost: CostModel) -> float:
    """Guest work identical on every stack (cycles/s)."""
    bytes_per_sec = rate_bps / 8.0
    return (
        bytes_per_sec * cost.guest_byte_cycles
        + rates.frames_per_sec * cost.guest_frame_cycles
        + rates.segments_per_sec * cost.guest_segment_cycles
        + rates.disk_requests_per_sec * cost.guest_disk_request_cycles
        + rates.ticks_per_sec * cost.guest_tick_cycles
        # guest ISR body per dispatched interrupt:
        + (rates.nic_interrupts_per_sec + rates.disk_requests_per_sec
           + rates.ticks_per_sec) * cost.guest_interrupt_cycles
    )


def _itemise_accesses(rates: EventRates) -> dict:
    """Bus accesses per second, split by destination, mirroring the
    driver code paths exactly."""
    return {
        # PIC accesses: tick EOI (1) + NIC ISR EOIs (2) + SCSI ISR EOIs (2)
        "pic": (rates.ticks_per_sec
                + 2 * rates.nic_interrupts_per_sec
                + 2 * rates.disk_requests_per_sec),
        # SCSI ports: 2 per request issue + INTSTAT read + ack per ISR
        "scsi": 4 * rates.disk_requests_per_sec,
        # NIC MMIO: 1 TDT doorbell per segment + 1 ICR read per interrupt
        "nic": rates.segments_per_sec + rates.nic_interrupts_per_sec,
    }


def _privileged_ops(rates: EventRates) -> float:
    """CLI/STI-class ops per second (driver critical sections):
    2 per segment send, 2 per NIC ISR, 2 per SCSI ISR."""
    return (2 * rates.segments_per_sec
            + 2 * rates.nic_interrupts_per_sec
            + 2 * rates.disk_requests_per_sec)


def predict_demanded_load(stack: str, rate_bps: float,
                          cost: Optional[CostModel] = None) -> float:
    """Closed-form demanded CPU load for one stack at one rate."""
    cost = cost or DEFAULT_COST_MODEL
    rates = EventRates.at_rate(rate_bps, cost)
    accesses = _itemise_accesses(rates)
    interrupts = (rates.nic_interrupts_per_sec
                  + rates.disk_requests_per_sec + rates.ticks_per_sec)
    cycles = _guest_common(rates, rate_bps, cost)

    if stack == "bare":
        cycles += interrupts * cost.interrupt_deliver_cycles
        cycles += _privileged_ops(rates) * PRIV_BARE
        cycles += sum(accesses.values()) * cost.device_access_cycles
    elif stack in ("lvmm", "fullvmm"):
        cycles += interrupts * (cost.world_switch_cycles
                                + cost.pic_emulation_cycles
                                + cost.interrupt_reflect_cycles)
        cycles += _privileged_ops(rates) * (cost.world_switch_cycles
                                            + PRIV_EMU)
        # Intercepted PIC accesses trap + run the 8259 model.
        cycles += accesses["pic"] * (cost.world_switch_cycles
                                     + cost.pic_emulation_cycles)
        if stack == "lvmm":
            # SCSI/NIC pass through at hardware latency.
            cycles += (accesses["scsi"] + accesses["nic"]) \
                * cost.device_access_cycles
        else:
            # Hosted path for every device access + interrupt double hop
            # + bounce-buffer copies of all DMA data (both directions).
            cycles += (accesses["scsi"] + accesses["nic"]) \
                * cost.host_switch_cycles
            cycles += interrupts * (
                cost.interrupt_host_trips * cost.host_switch_cycles
                + cost.pic_emulation_cycles
                + cost.interrupt_reflect_cycles
                - cost.lvmm_interrupt_cost())
            bytes_per_sec = rate_bps / 8.0
            # 2x for the disk DMA and 2x for the NIC frames (the frame
            # stream includes per-frame headers, approximated as payload).
            cycles += 4 * bytes_per_sec * cost.emulation_copy_byte_cycles
    else:
        raise ValueError(f"unknown stack {stack!r}")
    return cycles / cost.cpu_hz


def predict_max_rate(stack: str,
                     cost: Optional[CostModel] = None) -> float:
    """Closed-form maximum sustainable rate (demanded load = 1)."""
    cost = cost or DEFAULT_COST_MODEL
    r1, r2 = 40e6, 120e6
    d1 = predict_demanded_load(stack, r1, cost)
    d2 = predict_demanded_load(stack, r2, cost)
    slope = (d2 - d1) / (r2 - r1)
    intercept = d1 - slope * r1
    return (1.0 - intercept) / slope
