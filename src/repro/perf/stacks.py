"""Execution stacks for the performance experiments.

The performance layer runs the paper's streaming workload as a
discrete-event simulation: the guest OS model drives the *real* device
models through the bus, and the stack object charges the virtualisation
costs exactly where they occur —

* **BarePerfStack** — nothing interposed; only hardware costs.
* **LvmmPerfStack** — PIC/PIT/UART accesses trap into the monitor's
  emulation (`LvmmIntercept` with trap cost); interrupts are fielded by
  the monitor and reflected; CLI/STI-class operations trap.  SCSI and
  NIC accesses pass through untouched.
* **FullVmmPerfStack** — every device access takes the hosted-I/O round
  trip and DMA data is copied through bounce buffers
  (`FullVmmIntercept`); interrupts make the host double-hop.

This mirrors the functional monitors one-to-one (same intercept classes,
same cost model) without interpreting guest machine code, which is what
makes minute-long simulated transfer runs tractable.
"""

from __future__ import annotations

from typing import Callable, Dict

from repro.fullvmm.monitor import FullVmmIntercept
from repro.hw.machine import Machine
from repro.obs.taps import TapPoint
from repro.perf.costmodel import DEFAULT_COST_MODEL, CostModel
from repro.sim.budget import (
    CAT_DRIVER,
    CAT_EMULATION,
    CAT_GUEST,
    CAT_INTERRUPT,
    CAT_WORLD_SWITCH,
)
from repro.vmm.intercept import LvmmIntercept
from repro.vmm.shadow import ShadowState


class PerfStack:
    """Bare metal: the 'real hardware' row of Fig. 3.1."""

    name = "bare"

    def __init__(self, machine: Machine,
                 cost: CostModel = DEFAULT_COST_MODEL) -> None:
        self.machine = machine
        self.cost = cost
        self.budget = machine.budget

    def install(self) -> None:
        """Attach interception (none for bare metal) + access charging."""
        self.machine.bus.access_charger = self._charge_access

    def _charge_access(self, intercepted: bool) -> None:
        """Hardware access latency for passthrough accesses; intercepted
        ones are monitor memory operations and charge via the intercept."""
        if not intercepted:
            self.budget.charge(self.cost.device_access_cycles, CAT_DRIVER)

    # -- cost hooks the guest model calls --------------------------------------

    def privileged_op(self) -> None:
        """One CLI/STI-class interrupt-management operation."""
        self.budget.charge(3, CAT_GUEST)

    def on_interrupt_fielded(self, line: int) -> None:
        """Between PIC acknowledge and the guest ISR."""
        self.budget.charge(self.cost.interrupt_deliver_cycles,
                           CAT_INTERRUPT)

    def guest_cycles(self, cycles: int) -> None:
        self.budget.charge(cycles, CAT_GUEST)

    def touch_bytes(self, count: int) -> None:
        """Guest data-path work per byte (checksum pass etc.)."""
        self.budget.charge(int(count * self.cost.guest_byte_cycles),
                           CAT_GUEST)


class LvmmPerfStack(PerfStack):
    """The lightweight VMM row."""

    name = "lvmm"

    def __init__(self, machine: Machine,
                 cost: CostModel = DEFAULT_COST_MODEL) -> None:
        super().__init__(machine, cost)
        self.shadow = ShadowState()
        self.intercept = LvmmIntercept(
            self.shadow, machine.bus, machine.budget, cost,
            include_world_switch=True)

    def install(self) -> None:
        super().install()
        self.machine.bus.intercept = self.intercept
        from repro.hw.pic import standard_setup
        standard_setup(self.shadow.virtual_pic)

    def privileged_op(self) -> None:
        # CLI/STI/similar traps: world switch + tiny flag emulation.
        self.budget.charge(self.cost.world_switch_cycles, CAT_WORLD_SWITCH)
        self.budget.charge(150, CAT_EMULATION)

    def on_interrupt_fielded(self, line: int) -> None:
        # Monitor fields the interrupt, emulates the PIC, reflects.
        self.budget.charge(self.cost.world_switch_cycles, CAT_WORLD_SWITCH)
        self.budget.charge(
            self.cost.pic_emulation_cycles
            + self.cost.interrupt_reflect_cycles, CAT_INTERRUPT)
        # Mirror into the virtual PIC so guest mask/EOI state is honest.
        pic = self.shadow.virtual_pic
        pic.raise_irq(line)
        if pic.pending_vector() is not None:
            pic.acknowledge()
        # The monitor completes the real handshake itself.
        self._real_eoi(line)

    def _real_eoi(self, line: int) -> None:
        bus = self.machine.bus
        if line >= 8:
            bus.raw_port_write(0xA0, 0x20, 1)
        bus.raw_port_write(0x20, 0x20, 1)


class FullVmmPerfStack(LvmmPerfStack):
    """The VMware Workstation 4 row."""

    name = "fullvmm"

    def __init__(self, machine: Machine,
                 cost: CostModel = DEFAULT_COST_MODEL) -> None:
        super().__init__(machine, cost)
        self.intercept = FullVmmIntercept(
            self.shadow, machine.bus, machine.budget, cost, machine,
            include_world_switch=True)

    def on_interrupt_fielded(self, line: int) -> None:
        # Double host hop on the way in, then the usual reflection.
        extra = (self.cost.fullvmm_interrupt_cost()
                 - self.cost.lvmm_interrupt_cost())
        if extra > 0:
            self.budget.charge(extra, CAT_EMULATION)
        super().on_interrupt_fielded(line)


STACKS: Dict[str, Callable[..., PerfStack]] = {
    "bare": PerfStack,
    "lvmm": LvmmPerfStack,
    "fullvmm": FullVmmPerfStack,
}


def make_stack(name: str, machine: Machine,
               cost: CostModel = DEFAULT_COST_MODEL) -> PerfStack:
    try:
        factory = STACKS[name]
    except KeyError:
        raise ValueError(
            f"unknown stack {name!r}; pick from {sorted(STACKS)}") from None
    stack = factory(machine, cost)
    stack.install()
    return stack


class InterruptDispatcher:
    """Perf-layer interrupt plumbing: PIC -> stack costs -> guest ISRs."""

    def __init__(self, machine: Machine, stack: PerfStack) -> None:
        self.machine = machine
        self.stack = stack
        self._handlers: Dict[int, Callable[[], None]] = {}
        self.dispatched = 0
        #: Multicast observation point notified as ``taps(line,
        #: vector)`` for every interrupt delivered to a guest ISR.  The
        #: tracer subscribes here; observers must only observe.
        self.deliver_taps = TapPoint()

    def register(self, line: int, handler: Callable[[], None]) -> None:
        self._handlers[line] = handler

    def dispatch_pending(self) -> None:
        pic = self.machine.pic
        while pic.has_pending():
            vector = pic.acknowledge()
            line = vector - 32 if vector < 40 else vector - 40 + 8
            if self.deliver_taps:
                self.deliver_taps(line, vector)
            self.stack.on_interrupt_fielded(line)
            self.stack.guest_cycles(self.stack.cost.guest_interrupt_cycles)
            handler = self._handlers.get(line)
            if handler is not None:
                handler()
            self.dispatched += 1
