"""Export experiment data for plotting and archival.

The benchmarks print human tables; downstream users plotting Fig. 3.1
want machine-readable series.  ``export_figure``/``export_ratios``
write CSV and JSON; no plotting dependency is required or assumed.

``interp_stats``/``export_interp_stats`` are the single collection
point for the interpreter fast-path counters (decoded-instruction
cache + TLB), used by the trap-census and throughput benchmarks.

The ``*_stats`` collectors now live in :mod:`repro.obs.metrics`
(``collect_interp`` & friends), which also publishes every numeric
leaf into the global metrics registry, and the ``export_*`` stats
writers in :func:`repro.obs.exporters.export_stats_json`.  Everything
below except the figure exporters is a pure warn-and-forward shim —
no repo-internal module imports these names any more (a test enforces
that), and out-of-repo callers get a :class:`DeprecationWarning`
pointing at the replacement.
"""

from __future__ import annotations

import csv
import json
import warnings
from pathlib import Path
from typing import Dict, Optional

from repro.perf.sweep import FigureSeries, HeadlineRatios, LEGEND


def _deprecated(old: str, new: str) -> None:
    warnings.warn(
        f"repro.perf.export.{old} is deprecated; use "
        f"repro.obs.{new} instead",
        DeprecationWarning, stacklevel=3)


def figure_rows(series: Dict[str, FigureSeries]) -> list:
    """Flatten a sweep into one row per (stack, rate)."""
    rows = []
    for name, figure in series.items():
        for sample in figure.samples:
            rows.append({
                "stack": name,
                "legend": LEGEND.get(name, name),
                "rate_mbps": sample.target_mbps,
                "achieved_mbps": round(sample.achieved_mbps, 3),
                "cpu_load_pct": round(sample.load * 100, 3),
                "demanded_load": round(sample.demanded_load, 5),
                "sustainable": sample.sustainable,
                "segments": sample.segments_sent,
                "interrupts": sample.interrupts,
            })
    return rows


def export_figure_csv(series: Dict[str, FigureSeries],
                      path) -> Path:
    """Write the Fig. 3.1 sweep as CSV; returns the path written."""
    path = Path(path)
    rows = figure_rows(series)
    if not rows:
        raise ValueError("empty sweep: nothing to export")
    with open(path, "w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=list(rows[0]))
        writer.writeheader()
        writer.writerows(rows)
    return path


def export_figure_json(series: Dict[str, FigureSeries], path,
                       ratios: Optional[HeadlineRatios] = None) -> Path:
    """Write the sweep (and optional ratios) as a JSON document."""
    path = Path(path)
    document = {
        "experiment": "fig-3.1",
        "paper": ("Takeuchi, 'OS Debugging Method Using a Lightweight "
                  "Virtual Machine Monitor', DATE 2005"),
        "series": figure_rows(series),
    }
    if ratios is not None:
        document["headline_ratios"] = {
            "bare_max_mbps": round(ratios.bare_max_bps / 1e6, 2),
            "lvmm_max_mbps": round(ratios.lvmm_max_bps / 1e6, 2),
            "fullvmm_max_mbps": round(ratios.fullvmm_max_bps / 1e6, 2),
            "lvmm_vs_fullvmm": round(ratios.lvmm_vs_fullvmm, 3),
            "lvmm_vs_bare": round(ratios.lvmm_vs_bare, 4),
            "paper_lvmm_vs_fullvmm": 5.4,
            "paper_lvmm_vs_bare": 0.26,
        }
    with open(path, "w") as handle:
        json.dump(document, handle, indent=2)
    return path


def load_figure_csv(path) -> list:
    """Read back an exported CSV (round-trip helper for tests)."""
    with open(path, newline="") as handle:
        return list(csv.DictReader(handle))


def interp_stats(cpu) -> dict:
    """One dict with every interpreter fast-path counter.

    Combines the decoded-instruction cache (``Cpu.decode_cache_stats``)
    and the TLB (``Tlb.stats``) so benchmarks and the monitor's
    ``stats`` command report them from a single source.

    .. deprecated:: thin adapter over
       :func:`repro.obs.metrics.collect_interp`, which also publishes
       the counters as ``interp.*`` gauges in the global registry.
    """
    from repro.obs.metrics import collect_interp
    _deprecated("interp_stats", "metrics.collect_interp")
    return collect_interp(cpu)


def export_interp_stats(cpu, path, extra: Optional[dict] = None) -> Path:
    """Write the interpreter fast-path counters as a JSON document.

    .. deprecated:: thin adapter over
       :func:`repro.obs.exporters.export_stats_json` fed by
       :func:`repro.obs.metrics.collect_interp`.
    """
    from repro.obs.exporters import export_stats_json
    from repro.obs.metrics import collect_interp
    _deprecated("export_interp_stats", "exporters.export_stats_json")
    return export_stats_json(path, "interp-fast-path",
                             collect_interp(cpu), extra=extra)


def fault_stats(plan, client=None, monitor=None,
                devices: Optional[dict] = None) -> dict:
    """One dict with every fault-injection and recovery counter.

    Mirrors ``interp_stats``/``analysis_stats``: the single collection
    point the chaos campaign and tests read.  ``plan`` is a
    :class:`repro.faults.FaultPlan`; ``client`` an optional
    :class:`repro.rsp.client.RspClient` (retry/backoff recoveries);
    ``monitor`` an optional LightweightVmm (trigger + watchdog
    counters); ``devices`` an optional ``{name: device}`` mapping whose
    fault counters (``faults_injected``, ``frames_dropped``,
    ``bytes_dropped``, ``bytes_corrupted``) are collected when present.

    .. deprecated:: thin adapter over
       :func:`repro.obs.metrics.collect_fault` (``fault.*`` gauges).
    """
    from repro.obs.metrics import collect_fault
    _deprecated("fault_stats", "metrics.collect_fault")
    return collect_fault(plan, client=client, monitor=monitor,
                         devices=devices)


def export_fault_stats(plan, path, client=None, monitor=None,
                       devices: Optional[dict] = None,
                       extra: Optional[dict] = None) -> Path:
    """Write the fault-injection counters as a JSON document.

    .. deprecated:: thin adapter over
       :func:`repro.obs.exporters.export_stats_json` fed by
       :func:`repro.obs.metrics.collect_fault`.
    """
    from repro.obs.exporters import export_stats_json
    from repro.obs.metrics import collect_fault
    _deprecated("export_fault_stats", "exporters.export_stats_json")
    return export_stats_json(
        path, "fault-injection",
        collect_fault(plan, client=client, monitor=monitor,
                      devices=devices),
        extra=extra)


def replay_stats(recorder=None, result=None, minimize=None,
                 store=None) -> dict:
    """One dict with the record/replay counters.

    Mirrors ``interp_stats``/``fault_stats``: the single collection
    point for flight-recorder overhead (``recorder`` is a
    :class:`repro.replay.FlightRecorder`), replay verification
    (``result`` is a :class:`repro.replay.ReplayResult`), minimization
    effectiveness (``minimize`` is a
    :class:`repro.replay.MinimizeResult`) and checkpoint memory
    accounting (``store`` is a
    :class:`repro.core.snapshot.CheckpointStore` — snapshot count,
    held bytes, evictions).

    .. deprecated:: thin adapter over
       :func:`repro.obs.metrics.collect_replay` (``replay.*`` gauges).
    """
    from repro.obs.metrics import collect_replay
    _deprecated("replay_stats", "metrics.collect_replay")
    return collect_replay(recorder=recorder, result=result,
                          minimize=minimize, store=store)


def export_replay_stats(path, recorder=None, result=None,
                        minimize=None, store=None,
                        extra: Optional[dict] = None) -> Path:
    """Write the record/replay counters as a JSON document.

    .. deprecated:: thin adapter over
       :func:`repro.obs.exporters.export_stats_json` fed by
       :func:`repro.obs.metrics.collect_replay`.
    """
    from repro.obs.exporters import export_stats_json
    from repro.obs.metrics import collect_replay
    _deprecated("export_replay_stats", "exporters.export_stats_json")
    return export_stats_json(
        path, "record-replay",
        collect_replay(recorder=recorder, result=result,
                       minimize=minimize, store=store),
        extra=extra)


def analysis_stats(report) -> dict:
    """One dict with the static analyzer's coverage/finding counters.

    ``report`` is a :class:`repro.analysis.Report`; the result combines
    its CFG/interpreter coverage stats with finding counts so benchmark
    and CI tooling collect analyzer health from a single source.

    .. deprecated:: thin adapter over
       :func:`repro.obs.metrics.collect_analysis`
       (``analysis.*`` gauges).
    """
    from repro.obs.metrics import collect_analysis
    _deprecated("analysis_stats", "metrics.collect_analysis")
    return collect_analysis(report)


def export_analysis_json(report, path,
                         extra: Optional[dict] = None) -> Path:
    """Write a static-analysis report (stats + findings) as JSON.

    .. deprecated:: thin adapter over
       :func:`repro.obs.exporters.export_stats_json` fed by
       :func:`repro.obs.metrics.collect_analysis`.
    """
    from repro.obs.exporters import export_stats_json
    from repro.obs.metrics import collect_analysis
    _deprecated("export_analysis_json", "exporters.export_stats_json")
    merged = {"report": report.to_dict()}
    if extra:
        merged.update(extra)
    return export_stats_json(path, "static-analysis",
                             collect_analysis(report), extra=merged)
