"""Rate sweeps: regenerate Fig. 3.1 and the headline ratios (E1-E3)."""

from __future__ import annotations

import argparse
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.perf.costmodel import DEFAULT_COST_MODEL, CostModel
from repro.perf.load import LoadSample, measure_load

#: Fig. 3.1's x-axis: 0-700 Mbps.
DEFAULT_RATES_MBPS: Tuple[float, ...] = tuple(range(50, 701, 50))
ALL_STACKS = ("bare", "lvmm", "fullvmm")

#: Display names matching the paper's legend.
LEGEND = {
    "bare": "Real hardware",
    "lvmm": "LW virtual machine monitor",
    "fullvmm": "VMware Workstation 4 (full VMM model)",
}


@dataclass
class FigureSeries:
    """One curve of Fig. 3.1."""

    stack: str
    samples: List[LoadSample] = field(default_factory=list)

    def points(self) -> List[Tuple[float, float]]:
        """(transfer rate Mbps, CPU load %) pairs, as plotted."""
        return [(s.target_mbps, s.load * 100) for s in self.samples]

    def max_sustainable_mbps(self) -> Optional[float]:
        """Largest swept rate still under 100% load."""
        sustainable = [s.target_mbps for s in self.samples if s.sustainable]
        return max(sustainable) if sustainable else None


SEGMENT_BITS = 8 * 1024 * 1024  # one 1024 KB segment on the wire


def window_for_rate(rate_bps: float, sim_seconds: float,
                    min_segments: int = 12) -> float:
    """A window long enough to smooth segment-pacing quantisation."""
    if rate_bps <= 0:
        return sim_seconds
    return max(sim_seconds, min_segments * SEGMENT_BITS / rate_bps)


def sweep_figure_3_1(rates_mbps: Sequence[float] = DEFAULT_RATES_MBPS,
                     stacks: Sequence[str] = ALL_STACKS,
                     sim_seconds: float = 0.3,
                     cost: Optional[CostModel] = None
                     ) -> Dict[str, FigureSeries]:
    """Measure CPU load vs transfer rate for every stack (Fig. 3.1)."""
    cost = cost or DEFAULT_COST_MODEL
    out: Dict[str, FigureSeries] = {}
    for stack in stacks:
        series = FigureSeries(stack)
        for mbps in rates_mbps:
            window = window_for_rate(mbps * 1e6, sim_seconds)
            series.samples.append(
                measure_load(stack, mbps * 1e6, window, cost))
        out[stack] = series
    return out


def max_rate(stack: str, cost: Optional[CostModel] = None,
             sim_seconds: float = 0.3,
             probe_mbps: Tuple[float, float] = (80.0, 160.0)) -> float:
    """Maximum sustainable transfer rate (bps): where demanded CPU load
    crosses 100%.

    Demanded load is affine in the target rate (a fixed timer floor
    plus rate-proportional work), so two probe points pin the line and
    its crossing.  For slow stacks pass smaller probes so both points
    stay meaningfully below saturation non-linearities (segment-pacing
    quantisation).
    """
    cost = cost or DEFAULT_COST_MODEL
    r1, r2 = (p * 1e6 for p in probe_mbps)
    s1 = measure_load(stack, r1, window_for_rate(r1, sim_seconds, 24), cost)
    s2 = measure_load(stack, r2, window_for_rate(r2, sim_seconds, 24), cost)
    slope = (s2.demanded_load - s1.demanded_load) / (r2 - r1)
    intercept = s1.demanded_load - slope * r1
    if slope <= 0:
        raise ValueError(f"load did not grow with rate on {stack!r}")
    return (1.0 - intercept) / slope


@dataclass(frozen=True)
class HeadlineRatios:
    """The paper's two headline numbers (E2, E3)."""

    bare_max_bps: float
    lvmm_max_bps: float
    fullvmm_max_bps: float

    @property
    def lvmm_vs_fullvmm(self) -> float:
        """Paper: 5.4x."""
        return self.lvmm_max_bps / self.fullvmm_max_bps

    @property
    def lvmm_vs_bare(self) -> float:
        """Paper: ~0.26."""
        return self.lvmm_max_bps / self.bare_max_bps


def headline_ratios(cost: Optional[CostModel] = None,
                    sim_seconds: float = 0.3) -> HeadlineRatios:
    """Compute E2/E3 from first principles (three max-rate fits)."""
    cost = cost or DEFAULT_COST_MODEL
    return HeadlineRatios(
        bare_max_bps=max_rate("bare", cost, sim_seconds),
        lvmm_max_bps=max_rate("lvmm", cost, sim_seconds),
        fullvmm_max_bps=max_rate("fullvmm", cost, sim_seconds,
                                 probe_mbps=(10.0, 25.0)),
    )


def render_figure(series: Dict[str, FigureSeries]) -> str:
    """Text rendering of Fig. 3.1 (rate vs load table + ASCII curves)."""
    lines = ["Figure 3.1 — Measured CPU load (%)",
             f"{'rate Mbps':>10} " + " ".join(
                 f"{LEGEND[name][:20]:>22}" for name in series)]
    rates = [s.target_mbps for s in next(iter(series.values())).samples]
    for index, rate in enumerate(rates):
        row = [f"{rate:>10.0f}"]
        for figure in series.values():
            sample = figure.samples[index]
            marker = "" if sample.sustainable else " (sat)"
            row.append(f"{sample.load * 100:>16.1f}{marker:>6}")
        lines.append(" ".join(row))
    return "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Regenerate Fig. 3.1 and the headline ratios")
    parser.add_argument("--sim-seconds", type=float, default=0.3)
    parser.add_argument("--stacks", nargs="+", default=list(ALL_STACKS))
    parser.add_argument("--rates", nargs="+", type=float,
                        default=list(DEFAULT_RATES_MBPS))
    parser.add_argument("--csv", metavar="PATH",
                        help="also write the series as CSV")
    parser.add_argument("--json", metavar="PATH",
                        help="also write series + ratios as JSON")
    args = parser.parse_args(argv)

    series = sweep_figure_3_1(args.rates, args.stacks, args.sim_seconds)
    print(render_figure(series))

    ratios = headline_ratios(sim_seconds=args.sim_seconds)
    if args.csv:
        from repro.perf.export import export_figure_csv
        print(f"wrote {export_figure_csv(series, args.csv)}")
    if args.json:
        from repro.perf.export import export_figure_json
        print(f"wrote {export_figure_json(series, args.json, ratios)}")
    print()
    print(f"max sustainable rate: real hw {ratios.bare_max_bps/1e6:.0f} "
          f"Mbps | LVMM {ratios.lvmm_max_bps/1e6:.0f} Mbps | "
          f"full VMM {ratios.fullvmm_max_bps/1e6:.1f} Mbps")
    print(f"LVMM vs full VMM: {ratios.lvmm_vs_fullvmm:.2f}x "
          f"(paper: 5.4x)")
    print(f"LVMM vs real hardware: {ratios.lvmm_vs_bare * 100:.0f}% "
          f"(paper: 26%)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
