"""CPU load vs *aggregate TCP streaming rate* — Fig. 3.1's companion.

:mod:`repro.perf.analytic` predicts demanded load from event rates it
derives arithmetically.  This module goes one step closer to a
measurement: it *runs* the deterministic multi-client TCP workload
(:mod:`repro.workloads.streaming`) once per rate point, extracts the
event counts that actually occurred — frames on each wire, TCP
segments, post-coalescing NIC interrupts, handshakes — and charges
each event with the per-stack costs of :mod:`repro.perf.costmodel`,
mirroring the stack branches of ``analytic.predict_demanded_load``
one for one:

* ``bare``     — passthrough: hardware interrupt delivery, direct
  device register access, 3-cycle CLI/STI;
* ``lvmm``     — every interrupt and privileged op world-switches into
  the monitor; PIC accesses are intercepted; the NIC passes through;
* ``fullvmm``  — every NIC access takes the hosted round trip, each
  interrupt makes extra host trips, and every payload byte is copied
  through a bounce buffer twice in each direction.

The same simulated event stream is priced three ways, so the curve
ordering (bare < lvmm < fullvmm) isolates pure virtualisation overhead
on an *identical* workload.  Run ``python -m repro.perf.netmodel
--json BENCH_net.json`` to regenerate the committed artifact.
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.hw.nic import LINE_RATE_BPS
from repro.perf.analytic import PRIV_BARE, PRIV_EMU
from repro.perf.costmodel import DEFAULT_COST_MODEL, CostModel
from repro.workloads.streaming import SubscriberSpec, run_tcp_streaming

ALL_STACKS = ("bare", "lvmm", "fullvmm")

#: Display names matching Fig. 3.1's legend, TCP edition.
LEGEND = {
    "bare": "Passthrough (real hardware)",
    "lvmm": "LW virtual machine monitor",
    "fullvmm": "VMware Workstation 4 (full VMM model)",
}

#: Default x-axis (aggregate rate across all subscribers, Mbps).
DEFAULT_NET_RATES_MBPS: Tuple[float, ...] = (25, 50, 100, 200, 300, 400)
DEFAULT_SUBSCRIBERS = 32
DEFAULT_SIM_SECONDS = 0.05


@dataclass(frozen=True)
class NetEventCounts:
    """Measured workload events, normalised to per-second rates."""

    bytes_tx: float
    bytes_rx: float
    frames_tx: float
    frames_rx: float
    tcp_segments: float
    nic_interrupts: float
    handshakes: float
    ticks: float

    def as_dict(self) -> Dict[str, float]:
        return {name: round(getattr(self, name), 3)
                for name in self.__dataclass_fields__}


@dataclass(frozen=True)
class NetSample:
    """Demanded CPU load of one stack at one aggregate rate."""

    stack: str
    target_mbps: float
    achieved_mbps: float
    load: float

    @property
    def sustainable(self) -> bool:
        return self.load < 1.0

    def as_dict(self) -> Dict[str, float]:
        return {
            "target_mbps": self.target_mbps,
            "achieved_mbps": round(self.achieved_mbps, 3),
            "load": round(self.load, 6),
            "sustainable": self.sustainable,
        }


def uniform_specs(rate_bps: float, subscribers: int,
                  sim_seconds: float) -> List[SubscriberSpec]:
    """Equal-rate subscribers that keep streaming the whole window."""
    per_sub = rate_bps / subscribers
    # Twice the window's worth of payload so no stream finishes early
    # and the event counts reflect steady-state streaming.
    bytes_total = max(int(per_sub / 8.0 * sim_seconds * 2), 8192)
    return [SubscriberSpec(rate_bps=per_sub, bytes_total=bytes_total,
                           connect_at_s=index * 1e-4)
            for index in range(subscribers)]


def measure_net_events(rate_bps: float,
                       subscribers: int = DEFAULT_SUBSCRIBERS,
                       sim_seconds: float = DEFAULT_SIM_SECONDS,
                       cost: Optional[CostModel] = None
                       ) -> Tuple[NetEventCounts, float]:
    """Run the TCP workload once; return (events/sec, achieved bps).

    The run is stack-independent — only the *pricing* differs per
    stack — so one simulation serves all three curves at this rate.
    """
    cost = cost or DEFAULT_COST_MODEL
    specs = uniform_specs(rate_bps, subscribers, sim_seconds)
    result = run_tcp_streaming(specs, sim_seconds=sim_seconds,
                               grace_seconds=0.0, cost=cost,
                               capacity_bps=LINE_RATE_BPS)
    window = result.sim_seconds or sim_seconds
    stats = result.server_stats
    frames_tx = stats["frames_sent"] / window
    frames_rx = stats["frames_received"] / window
    events = NetEventCounts(
        bytes_tx=stats["bytes_sent"] / window,
        bytes_rx=stats["bytes_received"] / window,
        frames_tx=frames_tx,
        frames_rx=frames_rx,
        tcp_segments=(stats["segments_sent"]
                      + stats["segments_received"]) / window,
        nic_interrupts=(frames_tx + frames_rx) / cost.nic_coalesce,
        handshakes=len(specs) / window,
        ticks=cost.timer_hz,
    )
    achieved_bps = stats["bytes_sent"] * 8 / window
    return events, achieved_bps


def demanded_net_load(stack: str, events: NetEventCounts,
                      cost: Optional[CostModel] = None) -> float:
    """Price one stack's cycles/s for the measured event stream.

    Branch structure mirrors ``analytic.predict_demanded_load``; the
    access itemisation mirrors the NIC driver: one doorbell write per
    transmitted frame, one ICR read per interrupt, tick EOI plus two
    EOIs per NIC ISR on the PIC.
    """
    cost = cost or DEFAULT_COST_MODEL
    interrupts = events.nic_interrupts + events.ticks
    pic_accesses = events.ticks + 2 * events.nic_interrupts
    nic_accesses = events.frames_tx + events.nic_interrupts
    privileged = 2 * events.frames_tx + 2 * events.nic_interrupts

    # Guest-side protocol work, identical on every stack.
    cycles = (
        (events.bytes_tx + events.bytes_rx) * cost.guest_byte_cycles
        + (events.frames_tx + events.frames_rx) * cost.guest_frame_cycles
        + events.tcp_segments * cost.tcp_segment_cycles
        + events.handshakes * cost.tcp_handshake_cycles
        + events.ticks * cost.guest_tick_cycles
        + interrupts * cost.guest_interrupt_cycles
    )

    if stack == "bare":
        cycles += interrupts * cost.interrupt_deliver_cycles
        cycles += privileged * PRIV_BARE
        cycles += (pic_accesses + nic_accesses) * cost.device_access_cycles
    elif stack in ("lvmm", "fullvmm"):
        cycles += interrupts * (cost.world_switch_cycles
                                + cost.pic_emulation_cycles
                                + cost.interrupt_reflect_cycles)
        cycles += privileged * (cost.world_switch_cycles + PRIV_EMU)
        cycles += pic_accesses * (cost.world_switch_cycles
                                  + cost.pic_emulation_cycles)
        if stack == "lvmm":
            cycles += nic_accesses * cost.device_access_cycles
        else:
            cycles += nic_accesses * cost.host_switch_cycles
            cycles += interrupts * (
                cost.interrupt_host_trips * cost.host_switch_cycles
                + cost.pic_emulation_cycles
                + cost.interrupt_reflect_cycles
                - cost.lvmm_interrupt_cost())
            # Bounce-buffer copies: each payload byte crosses the
            # guest->VMM->host boundary twice in each direction.
            cycles += 2 * (events.bytes_tx + events.bytes_rx) \
                * cost.emulation_copy_byte_cycles
    else:
        raise ValueError(f"unknown stack {stack!r}")
    return cycles / cost.cpu_hz


def sweep_net(rates_mbps: Sequence[float] = DEFAULT_NET_RATES_MBPS,
              stacks: Sequence[str] = ALL_STACKS,
              subscribers: int = DEFAULT_SUBSCRIBERS,
              sim_seconds: float = DEFAULT_SIM_SECONDS,
              cost: Optional[CostModel] = None
              ) -> Dict[str, List[NetSample]]:
    """The three TCP curves: one simulation per rate, priced per stack."""
    cost = cost or DEFAULT_COST_MODEL
    curves: Dict[str, List[NetSample]] = {stack: [] for stack in stacks}
    for mbps in rates_mbps:
        events, achieved_bps = measure_net_events(
            mbps * 1e6, subscribers=subscribers,
            sim_seconds=sim_seconds, cost=cost)
        for stack in stacks:
            curves[stack].append(NetSample(
                stack=stack,
                target_mbps=mbps,
                achieved_mbps=achieved_bps / 1e6,
                load=demanded_net_load(stack, events, cost)))
    return curves


def render_net_figure(curves: Dict[str, List[NetSample]]) -> str:
    """The ASCII table: one row per rate, one load column per stack."""
    stacks = list(curves)
    lines = ["CPU load vs aggregate TCP streaming rate",
             "rate(Mbps)  " + "  ".join(f"{stack:>9s}" for stack in stacks)]
    rows = len(next(iter(curves.values())))
    for index in range(rows):
        cells = []
        for stack in stacks:
            sample = curves[stack][index]
            mark = " " if sample.sustainable else "*"
            cells.append(f"{sample.load * 100:8.1f}%{mark}")
        target = curves[stacks[0]][index].target_mbps
        lines.append(f"{target:10.0f}  " + " ".join(cells))
    lines.append("(* = demanded load over 100%: not sustainable)")
    return "\n".join(lines)


def net_document(curves: Dict[str, List[NetSample]],
                 subscribers: int, sim_seconds: float) -> dict:
    """The ``BENCH_net.json`` shape."""
    first = next(iter(curves.values()))
    return {
        "experiment": "net-tcp-load",
        "legend": {stack: LEGEND[stack] for stack in curves},
        "subscribers": subscribers,
        "sim_seconds": sim_seconds,
        "rates_mbps": [sample.target_mbps for sample in first],
        "curves": {stack: [sample.as_dict() for sample in samples]
                   for stack, samples in curves.items()},
    }


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-netperf",
        description="CPU load vs aggregate TCP rate on the three stacks.")
    parser.add_argument("--rates", default=None,
                        help="comma-separated aggregate rates in Mbps")
    parser.add_argument("--subscribers", type=int,
                        default=DEFAULT_SUBSCRIBERS)
    parser.add_argument("--sim-seconds", type=float,
                        default=DEFAULT_SIM_SECONDS)
    parser.add_argument("--json", metavar="PATH",
                        help="write the curves as JSON (BENCH_net.json)")
    args = parser.parse_args(argv)
    rates = DEFAULT_NET_RATES_MBPS if args.rates is None else tuple(
        float(token) for token in args.rates.split(","))
    curves = sweep_net(rates_mbps=rates, subscribers=args.subscribers,
                       sim_seconds=args.sim_seconds)
    print(render_net_figure(curves))
    if args.json:
        document = net_document(curves, args.subscribers,
                                args.sim_seconds)
        with open(args.json, "w") as handle:
            json.dump(document, handle, indent=2)
            handle.write("\n")
        print(f"curves written to {args.json}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
