"""Calibrated cycle costs for the three execution stacks.

The paper measures CPU load on a 1.26 GHz Pentium III.  We reproduce the
*shape* of Fig. 3.1 by charging cycles for every architectural event.
The constants below are the model's calibration; each is traceable to a
public measurement of the era:

* ``world_switch`` — one guest→monitor→guest round trip for a trapped
  privileged operation, including instruction decode and shadow-state
  update in the monitor (~9.4 us at 1.26 GHz; trap-and-emulate monitors
  of the era spent several microseconds per exit before the heavy
  tuning later monitors received — this is THE calibration knob, and
  ablation A1 sweeps it).
* ``host_switch`` — a hosted-VMM I/O round trip: guest trap, world
  switch to the host OS context, device emulation there, and back
  (~71 us; [Sugerman'01] measures tens of microseconds per
  virtual-NIC register access plus host-OS queueing/scheduling on
  period hardware — the end-to-end hosted path runs well past that).
* ``pic/pit emulation`` — executing the 8259/8254 device model inside
  the monitor on an intercepted access.
* ``guest_byte_cycles`` — the guest's own per-byte work on the data
  path (the UDP checksum pass; the send path is zero-copy).  ~12
  cycles/B makes a 1.26 GHz PIII saturate at ~700 Mbps, the right edge
  of the paper's Fig. 3.1 — consistent with the era's "1 GHz per
  Gbps plus change" rule of thumb.

With these defaults the rate sweep lands on the paper's anchors:
bare-metal maximum ~700 Mbps, LVMM 26% of bare metal (paper: 26%),
LVMM/full-VMM ratio 5.4 (paper: 5.4).  ``tools/calibrate.py`` rederives
them from the anchors.

``CostModel.validate()`` rejects nonsensical configurations.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict

from repro.errors import CalibrationError


@dataclass(frozen=True)
class CostModel:
    """All cycle constants for the performance experiments."""

    cpu_hz: float = 1.26e9

    # -- guest work (identical on every stack) ---------------------------------
    #: per-byte data-path work: the UDP checksum pass (zero-copy send).
    guest_byte_cycles: float = 11.95
    #: per-frame protocol work: headers, descriptor, bookkeeping.
    guest_frame_cycles: int = 1600
    #: per-disk-request driver work: CDB build, mailbox, completion.
    guest_disk_request_cycles: int = 3200
    #: per-segment application work: split bookkeeping, pacing.
    guest_segment_cycles: int = 22000
    #: handling one interrupt inside the guest (ISR body + scheduler).
    guest_interrupt_cycles: int = 1100
    #: periodic OS tick work (scheduler accounting).
    guest_tick_cycles: int = 900

    # -- bare-metal hardware costs ------------------------------------------------
    #: CPU-side cost of delivering one hardware interrupt (pipeline
    #: flush, vectoring, register save).
    interrupt_deliver_cycles: int = 1000
    #: one uncontended device register access (I/O port or MMIO read).
    device_access_cycles: int = 250

    # -- lightweight VMM ------------------------------------------------------------
    #: one trap into the monitor and back (privileged-op emulation).
    world_switch_cycles: int = 11860
    #: 8259 model execution per intercepted PIC access.
    pic_emulation_cycles: int = 600
    #: 8254 model execution per intercepted PIT access.
    pit_emulation_cycles: int = 600
    #: reflecting an interrupt into the guest (build frame, vector via
    #: the guest's virtual IDT).  The *number* of trapped CLI/STI/EOI
    #: operations per interrupt and per frame is not a parameter: the
    #: guest drivers in repro.guest.drivers execute them explicitly.
    interrupt_reflect_cycles: int = 1400

    # -- full (hosted) VMM -----------------------------------------------------------
    #: one guest I/O access serviced via the hosted path (trap, switch
    #: to host OS, emulate, return) — [Sugerman'01]'s tens of us.
    host_switch_cycles: int = 89970
    #: virtual-NIC register accesses the guest driver makes per frame.
    vnic_accesses_per_frame: int = 6
    #: virtual-HBA register accesses per disk request.
    vhba_accesses_per_request: int = 6
    #: per-byte bounce-buffer copying (guest -> VMM -> host and back).
    emulation_copy_byte_cycles: float = 6.0
    #: extra host round trips to deliver one interrupt to the guest.
    interrupt_host_trips: int = 2

    # -- TCP data path (the PR 9 streaming workload) -----------------------------
    #: per-TCP-segment protocol work (header build/parse, seq/ack and
    #: window bookkeeping, retransmit-timer maintenance) on top of the
    #: per-byte checksum pass.
    tcp_segment_cycles: int = 1800
    #: one three-way handshake: control-block setup, ISS selection,
    #: timer arming on both SYN legs.
    tcp_handshake_cycles: int = 24000

    # -- debugging traffic -------------------------------------------------------
    #: servicing one debugger request inside the monitor (drain the
    #: UART, parse the RSP packet, gather state, frame the reply).
    stub_service_cycles: int = 2500

    # -- workload shape ------------------------------------------------------------
    #: OS timer tick rate (HiTactix's streaming rate controller).
    timer_hz: float = 1000.0
    #: NIC interrupt coalescing (frames per completion interrupt).
    nic_coalesce: int = 1

    def validate(self) -> None:
        numeric: Dict[str, float] = {
            name: getattr(self, name)
            for name in self.__dataclass_fields__
        }
        for name, value in numeric.items():
            if value < 0:
                raise CalibrationError(f"{name} must be >= 0, got {value}")
        if self.cpu_hz <= 0:
            raise CalibrationError("cpu_hz must be positive")
        if self.nic_coalesce < 1:
            raise CalibrationError("nic_coalesce must be >= 1")
        if self.world_switch_cycles > self.host_switch_cycles:
            raise CalibrationError(
                "a lightweight world switch cannot cost more than a hosted "
                "I/O round trip")

    def with_overrides(self, **kwargs) -> "CostModel":
        model = replace(self, **kwargs)
        model.validate()
        return model

    # -- derived per-event costs used by the monitors ---------------------------------

    def lvmm_trap_cost(self, emulation_cycles: int = 0) -> int:
        """Cycles for one trapped+emulated privileged operation."""
        return self.world_switch_cycles + emulation_cycles

    def lvmm_interrupt_cost(self) -> int:
        """Monitor-side cost of fielding and reflecting one interrupt."""
        return (self.world_switch_cycles + self.pic_emulation_cycles
                + self.interrupt_reflect_cycles)

    def fullvmm_io_cost(self) -> int:
        """One guest device-register access on the hosted path."""
        return self.host_switch_cycles

    def fullvmm_interrupt_cost(self) -> int:
        return (self.interrupt_host_trips * self.host_switch_cycles
                + self.pic_emulation_cycles + self.interrupt_reflect_cycles)


DEFAULT_COST_MODEL = CostModel()
DEFAULT_COST_MODEL.validate()
