"""Performance modelling: cost model, load sampling, rate sweeps."""

from repro.perf.costmodel import DEFAULT_COST_MODEL, CostModel

__all__ = ["CostModel", "DEFAULT_COST_MODEL"]
