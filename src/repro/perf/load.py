"""CPU-load measurement: run the streaming workload on one stack at one
target rate for a window of simulated time and account every cycle."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.guest.os import HiTactix
from repro.hw.machine import Machine, MachineConfig
from repro.perf.costmodel import DEFAULT_COST_MODEL, CostModel
from repro.perf.stacks import InterruptDispatcher, make_stack
from repro.sim.events import cycles_for_seconds


@dataclass
class LoadSample:
    """One measured point of Fig. 3.1."""

    stack: str
    target_rate_bps: float
    achieved_rate_bps: float
    demanded_load: float     # unclamped: >1 means unsustainable
    breakdown: Dict[str, int] = field(default_factory=dict)
    segments_sent: int = 0
    interrupts: int = 0

    @property
    def load(self) -> float:
        """Clamped CPU load, as the paper's y-axis reports it."""
        return min(1.0, self.demanded_load)

    @property
    def sustainable(self) -> bool:
        return self.demanded_load <= 1.0

    @property
    def target_mbps(self) -> float:
        return self.target_rate_bps / 1e6

    @property
    def achieved_mbps(self) -> float:
        return self.achieved_rate_bps / 1e6


def measure_load(stack_name: str, rate_bps: float,
                 sim_seconds: float = 0.4,
                 cost: Optional[CostModel] = None,
                 machine_config: Optional[MachineConfig] = None,
                 guest_kwargs: Optional[dict] = None,
                 debug_poll_hz: float = 0.0) -> LoadSample:
    """Run the paper's data-transfer workload and sample the CPU load.

    ``rate_bps`` is the *transfer rate* of Fig. 3.1's x-axis (payload
    bits per second over UDP).  The run uses real device-model timing
    (disk service, NIC line rate) with the chosen stack's interception
    costs; the returned demanded load may exceed 1.0 — the knee where
    it crosses 1.0 is a stack's maximum sustainable rate.

    ``debug_poll_hz`` models an attached host debugger polling the
    monitor's stub (register/state reads) that many times per second
    while the workload runs — the paper's "monitoring the OS status
    even while the OS is executing high-throughput I/O operations".
    Each poll costs a UART interrupt into the monitor plus the stub's
    service time; on bare metal there is no monitor, so the embedded
    stub steals the same service time from the guest directly.
    """
    cost = cost or DEFAULT_COST_MODEL
    machine = Machine(machine_config or MachineConfig(cpu_hz=cost.cpu_hz))
    wire_bytes = [0]
    if machine.nic is None:
        raise ValueError("the data-transfer workload needs a NIC")
    machine.nic.wire = lambda frame: wire_bytes.__setitem__(
        0, wire_bytes[0] + len(frame))
    machine.program_pic_defaults()

    stack = make_stack(stack_name, machine, cost)
    dispatcher = InterruptDispatcher(machine, stack)
    guest = HiTactix(machine, stack, rate_bps, cost,
                     **(guest_kwargs or {}))
    guest.register_handlers(dispatcher)
    guest.start()
    dispatcher.dispatch_pending()

    if debug_poll_hz > 0:
        from repro.sim.budget import CAT_EMULATION, CAT_GUEST
        interval = max(1, int(cost.cpu_hz / debug_poll_hz))

        def poll() -> None:
            if stack_name == "bare":
                # Embedded stub: the guest itself services the request.
                machine.budget.charge(
                    cost.interrupt_deliver_cycles
                    + cost.stub_service_cycles, CAT_GUEST)
            else:
                # Monitor stub: a UART interrupt into the monitor.
                machine.budget.charge(
                    cost.world_switch_cycles + cost.stub_service_cycles,
                    CAT_EMULATION)
            machine.queue.schedule_in(interval, poll, name="debug-poll")

        machine.queue.schedule_in(interval, poll, name="debug-poll")

    deadline = cycles_for_seconds(sim_seconds, cost.cpu_hz)
    queue = machine.queue
    while True:
        next_time = queue.peek_time()
        if next_time is None or next_time > deadline:
            break
        queue.step()
        dispatcher.dispatch_pending()
    if deadline > queue.now:
        queue.now = deadline

    demanded = machine.budget.demanded_load(deadline)
    achieved = wire_bytes[0] * 8 / sim_seconds
    return LoadSample(
        stack=stack_name,
        target_rate_bps=rate_bps,
        achieved_rate_bps=achieved,
        demanded_load=demanded,
        breakdown=machine.budget.by_category(),
        segments_sent=guest.segments_sent,
        interrupts=dispatcher.dispatched,
    )
