"""The structured trace bus.

A bounded ring buffer of typed trace events.  Timestamps are the
machine's own clocks — simulated **cycles** and retired
**instructions** — never wall-clock, so two runs of a deterministic
scenario produce byte-identical traces (the golden-file property every
other subsystem in this tree already relies on).

Two event shapes:

* **instants** (:meth:`TraceBus.instant`) — a point event: an IRQ was
  raised, a journal frame was appended, a fault fired;
* **spans** (:meth:`TraceBus.begin` / :meth:`TraceBus.end`, or the
  :meth:`TraceBus.span` context manager) — a nested duration: a trap
  emulation, a monitor run slice, an RSP packet being serviced.  Spans
  nest on an explicit stack; an unbalanced ``end`` is counted and
  dropped rather than corrupting the nesting, and spans still open
  when the ring is exported are closed virtually by the exporter.

Events carry a *category* (``trap``, ``irq``, ``device``, ``rsp``,
``fault``, ``watchdog``, ``replay``, ``monitor``, ``profile``) used by
the exporters to group Perfetto tracks.

The bus itself has no knowledge of the machine; the
:class:`repro.obs.tracer.Tracer` is the glue that feeds it.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, Iterator, List, Optional

#: Event phases (mirroring the Chrome trace_event vocabulary).
PH_INSTANT = "i"
PH_BEGIN = "B"
PH_END = "E"
PH_COMPLETE = "X"

#: Categories the instrumentation layer emits.
CAT_TRAP = "trap"
CAT_IRQ = "irq"
CAT_DEVICE = "device"
CAT_RSP = "rsp"
CAT_FAULT = "fault"
CAT_WATCHDOG = "watchdog"
CAT_REPLAY = "replay"
CAT_MONITOR = "monitor"
CAT_PROFILE = "profile"
CAT_NET = "net"
CAT_FLEET = "fleet"
CAT_SLO = "slo"


@dataclass(frozen=True)
class TraceRecord:
    """One trace-bus event.

    ``dur`` is only meaningful for ``PH_COMPLETE`` events (a span whose
    duration was known at emission time, e.g. a cost-model charge).
    """

    seq: int
    phase: str
    category: str
    name: str
    cycle: int
    instret: int
    pc: int = 0
    ring: int = 0
    dur: int = 0
    args: Dict = field(default_factory=dict)

    def format(self) -> str:
        extra = f" dur={self.dur}" if self.phase == PH_COMPLETE else ""
        args = " ".join(f"{k}={v}" for k, v in sorted(self.args.items()))
        return (f"[{self.seq:6d}] cyc={self.cycle:<12d} "
                f"i={self.instret:<10d} {self.phase} "
                f"{self.category}:{self.name}{extra}"
                f"{' ' + args if args else ''}")


class SpanHandle:
    """Context manager closing one span (see :meth:`TraceBus.span`)."""

    __slots__ = ("_bus", "_name")

    def __init__(self, bus: "TraceBus", name: str) -> None:
        self._bus = bus
        self._name = name

    def __enter__(self) -> "SpanHandle":
        return self

    def __exit__(self, *_exc) -> None:
        self._bus.end(self._name)


class TraceBus:
    """Bounded ring of :class:`TraceRecord` with span nesting."""

    def __init__(self, capacity: int = 65536) -> None:
        if capacity < 1:
            raise ValueError(f"trace bus capacity must be >= 1, "
                             f"got {capacity}")
        self.capacity = capacity
        self._events: Deque[TraceRecord] = deque(maxlen=capacity)
        self._sequence = 0
        #: Recording gate: instant()/begin()/end() are no-ops when False.
        self.enabled = False
        #: (name, category, begin-sequence) of currently open spans.
        self._span_stack: List[tuple] = []
        #: ``end`` calls that matched no open span (observability of the
        #: instrumentation itself — a nonzero count means a hook fired
        #: out of order somewhere).
        self.unbalanced_ends = 0
        #: Registry the ``obs.bus.dropped`` counter is created in when
        #: the ring first wraps (see :meth:`bind_metrics`).
        self._registry = None
        self._dropped_counter = None

    def bind_metrics(self, registry) -> None:
        """Surface ring wraparound as the ``obs.bus.dropped`` counter.

        The counter is created lazily on the first actual drop, so a
        bus that never wraps leaves the registry untouched (golden
        metrics snapshots stay byte-identical).
        """
        self._registry = registry

    # -- emission ------------------------------------------------------------

    def _emit(self, phase: str, category: str, name: str, cycle: int,
              instret: int, pc: int, ring: int, dur: int,
              args: Optional[Dict]) -> TraceRecord:
        record = TraceRecord(self._sequence, phase, category, name,
                             cycle, instret, pc, ring, dur, args or {})
        if len(self._events) == self.capacity \
                and self._registry is not None:
            # The append below evicts the oldest record: make the loss
            # observable (counter created on first wrap only).
            if self._dropped_counter is None:
                self._dropped_counter = self._registry.counter(
                    "obs.bus.dropped",
                    help="trace events evicted by ring wraparound")
            self._dropped_counter.inc()
        self._events.append(record)
        self._sequence += 1
        return record

    def instant(self, category: str, name: str, cycle: int,
                instret: int = 0, pc: int = 0, ring: int = 0,
                args: Optional[Dict] = None) -> None:
        """A point event."""
        if not self.enabled:
            return
        self._emit(PH_INSTANT, category, name, cycle, instret, pc,
                   ring, 0, args)

    def complete(self, category: str, name: str, cycle: int, dur: int,
                 instret: int = 0, pc: int = 0, ring: int = 0,
                 args: Optional[Dict] = None) -> None:
        """A span whose duration is already known (cost-model charges)."""
        if not self.enabled:
            return
        self._emit(PH_COMPLETE, category, name, cycle, instret, pc,
                   ring, dur, args)

    def begin(self, category: str, name: str, cycle: int,
              instret: int = 0, pc: int = 0, ring: int = 0,
              args: Optional[Dict] = None) -> None:
        """Open a nested span (close with :meth:`end`)."""
        if not self.enabled:
            return
        record = self._emit(PH_BEGIN, category, name, cycle, instret,
                            pc, ring, 0, args)
        self._span_stack.append((name, category, record.seq))

    def end(self, name: str, cycle: Optional[int] = None,
            instret: int = 0, args: Optional[Dict] = None) -> None:
        """Close the innermost open span named ``name``.

        Spans opened inside it that were never closed are closed
        implicitly (their ``E`` events are emitted in stack order), the
        way Chrome's trace machinery unwinds abandoned nesting.  An
        ``end`` that matches no open span is counted in
        :attr:`unbalanced_ends` and otherwise ignored.
        """
        if not self.enabled:
            return
        names = [entry[0] for entry in self._span_stack]
        if name not in names:
            self.unbalanced_ends += 1
            return
        index = len(names) - 1 - names[::-1].index(name)
        cycle = self._last_cycle() if cycle is None else cycle
        while len(self._span_stack) > index:
            open_name, open_category, _seq = self._span_stack.pop()
            self._emit(PH_END, open_category, open_name, cycle,
                       instret, 0, 0, 0,
                       args if open_name == name else
                       {"implicit-close": 1})

    def span(self, category: str, name: str, cycle: int,
             instret: int = 0, pc: int = 0, ring: int = 0,
             args: Optional[Dict] = None) -> SpanHandle:
        """``with bus.span(...):`` convenience around begin/end."""
        self.begin(category, name, cycle, instret, pc, ring, args)
        return SpanHandle(self, name)

    def _last_cycle(self) -> int:
        return self._events[-1].cycle if self._events else 0

    # -- inspection ----------------------------------------------------------

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self._events)

    @property
    def total_recorded(self) -> int:
        return self._sequence

    @property
    def dropped(self) -> int:
        """Events pushed out of the ring by wraparound."""
        return self._sequence - len(self._events)

    @property
    def open_spans(self) -> List[str]:
        return [entry[0] for entry in self._span_stack]

    def open_span_entries(self) -> List[tuple]:
        """(name, category) of open spans, outermost first."""
        return [(entry[0], entry[1]) for entry in self._span_stack]

    def events(self) -> List[TraceRecord]:
        """The retained window, oldest first."""
        return list(self._events)

    def tail(self, count: int = 32) -> List[TraceRecord]:
        events = list(self._events)
        return events[-count:]

    def by_category(self, category: str) -> List[TraceRecord]:
        return [e for e in self._events if e.category == category]

    def counts_by_category(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for event in self._events:
            counts[event.category] = counts.get(event.category, 0) + 1
        return dict(sorted(counts.items()))

    def clear(self) -> None:
        self._events.clear()
        self._span_stack.clear()

    def stats(self) -> Dict:
        """Bus health counters (``repro.perf`` shape)."""
        return {
            "capacity": self.capacity,
            "retained": len(self._events),
            "recorded": self._sequence,
            "dropped": self.dropped,
            "open_spans": len(self._span_stack),
            "unbalanced_ends": self.unbalanced_ends,
        }
