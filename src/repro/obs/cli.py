"""``repro-trace`` — record, inspect and export structured traces.

Four single-process subcommands, plus a ``fleet`` group:

* ``record`` — run a built-in scenario with a :class:`Tracer` (and,
  under a monitor, a :class:`GuestProfiler`) attached and write the
  Chrome trace_event JSON document.  Open the file in Perfetto
  (https://ui.perfetto.dev) or ``about:tracing``.
* ``report`` — summarize a recorded trace file: event counts per
  category, bus health, embedded metrics.
* ``export`` — re-export the embedded profile / metrics sections of a
  recorded trace as collapsed-stack text or metrics JSON.
* ``top`` — print the symbolized guest PC profile of a recorded trace
  (or record the ``guest`` scenario on the fly).

The ``fleet`` group drives the distributed pipeline
(:mod:`repro.obs.distributed`): ``fleet record`` runs a traced
multi-process fleet and writes the merged multi-process trace;
``fleet report`` summarizes it (per-process events, aggregated fleet
metrics, merged-histogram percentiles); ``fleet export`` re-exports
the embedded fleet metrics; ``fleet top`` ranks the slowest exec
slices fleet-wide, each with its trace id for drill-down.

Scenarios:

* ``streaming`` — the perf-layer streaming window from the chaos
  campaign (HiTactix on the lvmm stack) with a seeded disk-fault plan
  and a post-window RSP probe, so the trace carries trap, irq, device,
  rsp and fault events.  Deterministic: a pure function of
  ``(seed, sim_seconds, rate)`` — the golden-trace test relies on two
  runs producing byte-identical files.
* ``guest`` — a real guest kernel (``repro.guest.asmkernel``) booted
  under the LightweightVmm with the sampling profiler attached; the
  trace carries monitor trap spans, run slices, RSP packets and the
  symbolized guest PC profile.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.obs.bus import TraceBus
from repro.obs.exporters import chrome_trace, validate_chrome_trace
from repro.obs.metrics import MetricsRegistry
from repro.obs.profiler import GuestProfiler
from repro.obs.tracer import Tracer

DEFAULT_SEED = 1234
DEFAULT_SIM_SECONDS = 0.02
DEFAULT_RATE_BPS = 20e6
DEFAULT_STRIDE = 512
DEFAULT_GUEST_INSTRUCTIONS = 60_000


# ----------------------------------------------------------------------
# Scenarios
# ----------------------------------------------------------------------

def record_streaming(seed: int = DEFAULT_SEED,
                     sim_seconds: float = DEFAULT_SIM_SECONDS,
                     rate_bps: float = DEFAULT_RATE_BPS,
                     capacity: int = 65536) -> dict:
    """One traced streaming window; returns the trace document."""
    from repro.faults.campaign import StubConsole
    from repro.faults.injectors import DiskInjector
    from repro.faults.plan import FaultPlan, FaultRule
    from repro.guest.os import HiTactix
    from repro.hw.machine import Machine, MachineConfig
    from repro.perf.costmodel import DEFAULT_COST_MODEL
    from repro.perf.stacks import InterruptDispatcher, make_stack
    from repro.sim.events import cycles_for_seconds

    cost = DEFAULT_COST_MODEL
    machine = Machine(MachineConfig(cpu_hz=cost.cpu_hz))
    machine.program_pic_defaults()
    stack = make_stack("lvmm", machine, cost)
    dispatcher = InterruptDispatcher(machine, stack)
    guest = HiTactix(machine, stack, rate_bps, cost)
    plan = FaultPlan(seed, rules=[
        FaultRule("disk*", "medium-error", probability=0.05, max_fires=4),
    ])
    DiskInjector(plan, machine.hba)

    registry = MetricsRegistry()
    tracer = Tracer(TraceBus(capacity=capacity), registry)
    tracer.attach(machine=machine, plan=plan, dispatcher=dispatcher,
                  stack=stack)

    guest.register_handlers(dispatcher)
    guest.start()
    dispatcher.dispatch_pending()
    deadline = cycles_for_seconds(sim_seconds, cost.cpu_hz)
    queue = machine.queue
    while True:
        next_time = queue.peek_time()
        if next_time is None or next_time > deadline:
            break
        queue.step()
        dispatcher.dispatch_pending()
    if deadline > queue.now:
        queue.now = deadline
    plan.disarm()

    # Post-window debugger probe: RSP packets land in the trace.
    console = StubConsole(machine, plan)
    tracer.add_stub(console.stub)
    console.client.read_registers()
    console.client.read_memory(0x40_0000, 16)

    tracer.detach()
    document = chrome_trace(tracer.bus, registry=registry,
                            label=f"streaming seed={seed}")
    document["otherData"]["scenario"] = "streaming"
    document["otherData"]["seed"] = seed
    document["otherData"]["sim_seconds"] = sim_seconds
    document["otherData"]["segments_sent"] = guest.segments_sent
    return document


def record_guest(seed: int = DEFAULT_SEED,
                 stride: int = DEFAULT_STRIDE,
                 instructions: int = DEFAULT_GUEST_INSTRUCTIONS,
                 capacity: int = 65536) -> dict:
    """A profiled guest-kernel run under the lvmm; returns the document.

    ``seed`` only labels the output — the guest run is deterministic.
    """
    from repro.core.session import DebugSession
    from repro.debugger.symbols import SymbolTable
    from repro.guest.asmkernel import (
        KernelConfig,
        build_kernel,
        build_user_task,
    )

    sess = DebugSession(monitor="lvmm")
    kernel = build_kernel(KernelConfig(with_user_task=True,
                                       user_iterations=600,
                                       ticks_to_run=50))
    user = build_user_task(iterations=600)
    registry = MetricsRegistry()
    tracer = Tracer(TraceBus(capacity=capacity), registry)
    tracer.attach(monitor=sess.monitor)
    sess.monitor.obs_tracer = tracer
    sess.load_and_boot(kernel, user)
    profiler = sess.monitor.attach_profiler(GuestProfiler(stride=stride))
    sess.attach()
    sess.run_guest(instructions)
    sess.monitor.detach_profiler()
    tracer.detach()

    symbols = SymbolTable()
    symbols.add_program(kernel)
    symbols.add_program(user)
    document = chrome_trace(tracer.bus, profiler=profiler,
                            symbols=symbols, registry=registry,
                            label=f"guest seed={seed}")
    document["otherData"]["scenario"] = "guest"
    document["otherData"]["seed"] = seed
    document["otherData"]["stride"] = stride
    document["otherData"]["instructions_run"] = instructions
    return document


SCENARIOS = {
    "streaming": record_streaming,
    "guest": record_guest,
}


def _record_document(args) -> dict:
    if args.scenario == "streaming":
        return record_streaming(seed=args.seed,
                                sim_seconds=args.sim_seconds,
                                capacity=args.capacity)
    return record_guest(seed=args.seed, stride=args.stride,
                        instructions=args.instructions,
                        capacity=args.capacity)


def _load(path: str) -> dict:
    with open(path) as handle:
        return json.load(handle)


def _dump(document: dict, path: str) -> None:
    with open(path, "w") as handle:
        json.dump(document, handle, indent=1, sort_keys=True)
        handle.write("\n")


def _category_counts(document: dict) -> dict:
    counts: dict = {}
    for event in document.get("traceEvents", []):
        if event.get("ph") == "M":
            continue
        category = event.get("cat", "?")
        counts[category] = counts.get(category, 0) + 1
    return dict(sorted(counts.items()))


def _print_profile(document: dict, limit: int) -> int:
    profile = document.get("guestProfile")
    if not profile:
        print("no guest profile in this trace "
              "(record with --scenario guest)", file=sys.stderr)
        return 1
    total = profile["total_samples"] or 1
    print(f"guest PC profile: {profile['total_samples']} samples, "
          f"stride {profile['stride']} instructions")
    print(f"{'samples':>8} {'pct':>6}  symbol")
    for row in profile["cumulative"][:limit]:
        pct = 100.0 * row["samples"] / total
        print(f"{row['samples']:>8} {pct:>5.1f}%  {row['symbol']}")
    return 0


def _process_counts(document: dict) -> dict:
    """pid -> event count (metadata excluded)."""
    counts: dict = {}
    for event in document.get("traceEvents", []):
        if event.get("ph") == "M":
            continue
        pid = event.get("pid", "?")
        counts[pid] = counts.get(pid, 0) + 1
    return dict(sorted(counts.items()))


def _fleet_slices(document: dict) -> list:
    """Every slice span, slowest first (stable tie-break)."""
    slices = [event for event in document.get("traceEvents", [])
              if event.get("ph") == "X"
              and event.get("name") == "slice"]
    return sorted(slices,
                  key=lambda e: (-e.get("dur", 0), e.get("pid", 0),
                                 e.get("ts", 0)))


def _print_fleet_metrics(metrics: dict) -> None:
    from repro.obs.distributed.aggregate import histogram_percentile

    print(f"fleet metrics ({len(metrics)}):")
    for name in sorted(metrics):
        snap = metrics[name]
        if snap.get("type") == "histogram":
            parts = []
            for q in (50, 95, 99):
                value = histogram_percentile(snap, q)
                if value is not None:
                    parts.append(f"p{q}={value:g}")
            print(f"  {name}: count={snap['count']} "
                  f"{' '.join(parts)}")
        else:
            workers = snap.get("workers")
            suffix = f" (over {workers} workers)" if workers else ""
            print(f"  {name} = {snap.get('value')}{suffix}")


# ----------------------------------------------------------------------
# Subcommands
# ----------------------------------------------------------------------

def _cmd_record(args) -> int:
    document = _record_document(args)
    problems = validate_chrome_trace(document)
    if problems:
        for problem in problems:
            print(f"schema: {problem}", file=sys.stderr)
        return 1
    _dump(document, args.out)
    counts = _category_counts(document)
    summary = " ".join(f"{cat}={n}" for cat, n in counts.items())
    print(f"{args.scenario}: {sum(counts.values())} events -> "
          f"{args.out}")
    print(f"  {summary}")
    if "guestProfile" in document:
        print(f"  profile: "
              f"{document['guestProfile']['total_samples']} samples")
    print(f"  open in https://ui.perfetto.dev")
    return 0


def _cmd_report(args) -> int:
    document = _load(args.trace)
    problems = validate_chrome_trace(document)
    other = document.get("otherData", {})
    print(f"trace: {args.trace}")
    for key in sorted(other):
        print(f"  {key}: {other[key]}")
    print("events by category:")
    for category, count in _category_counts(document).items():
        print(f"  {category:<10} {count}")
    metrics = document.get("metrics", {})
    if metrics:
        print(f"metrics ({len(metrics)}):")
        for name in sorted(metrics):
            snap = metrics[name]
            if "value" in snap:
                print(f"  {name} = {snap['value']}")
            else:
                print(f"  {name}: count={snap['count']} "
                      f"sum={snap['sum']}")
    if problems:
        print(f"schema problems ({len(problems)}):")
        for problem in problems:
            print(f"  {problem}")
        return 1
    print("schema: ok")
    return 0


def _cmd_export(args) -> int:
    document = _load(args.trace)
    wrote = []
    if args.collapsed:
        profile = document.get("guestProfile")
        if not profile:
            print("no guest profile to export", file=sys.stderr)
            return 1
        lines = [f"ring?;{row['symbol']} {row['samples']}"
                 for row in profile["cumulative"]]
        # Prefer the full collapsed form when flat samples are present.
        flat = profile.get("flat")
        if flat:
            lines = [f"ring{row['ring']};{row['reason']};{row['pc']} "
                     f"{row['samples']}" for row in flat]
        with open(args.collapsed, "w") as handle:
            handle.write("".join(line + "\n" for line in lines))
        wrote.append(args.collapsed)
    if args.metrics:
        metrics = document.get("metrics")
        if metrics is None:
            print("no metrics section to export", file=sys.stderr)
            return 1
        _dump({"format": "repro-metrics-v1", "metrics": metrics},
              args.metrics)
        wrote.append(args.metrics)
    if not wrote:
        print("nothing to do: pass --collapsed and/or --metrics",
              file=sys.stderr)
        return 2
    for path in wrote:
        print(f"wrote {path}")
    return 0


def _cmd_top(args) -> int:
    if args.trace:
        document = _load(args.trace)
    else:
        document = record_guest(seed=args.seed, stride=args.stride,
                                instructions=args.instructions)
    return _print_profile(document, args.limit)


def _cmd_fleet_record(args) -> int:
    from repro.obs.distributed.scenario import record_fleet

    document = record_fleet(seed=args.seed, workers=args.workers,
                            slices=args.slices,
                            slice_insns=args.slice_insns)
    problems = validate_chrome_trace(document)
    if problems:
        for problem in problems:
            print(f"schema: {problem}", file=sys.stderr)
        return 1
    _dump(document, args.out)
    stats = document["otherData"]["collector"]
    print(f"fleet: {args.workers} workers, "
          f"{stats['supervisor_events']} supervisor events, "
          f"{stats['ingested']} worker spans, "
          f"{stats['traces']} traces -> {args.out}")
    print(f"  open in https://ui.perfetto.dev")
    return 0


def _cmd_fleet_report(args) -> int:
    document = _load(args.trace)
    problems = validate_chrome_trace(document)
    other = document.get("otherData", {})
    print(f"fleet trace: {args.trace}")
    for key in sorted(other):
        print(f"  {key}: {other[key]}")
    print("events by process:")
    for pid, count in _process_counts(document).items():
        role = "supervisor" if pid == 1 else f"worker-{pid - 10}"
        print(f"  pid {pid:<3} ({role:<10}) {count}")
    metrics = document.get("fleetMetrics", {})
    if metrics:
        _print_fleet_metrics(metrics)
    slo = document.get("slo")
    if slo:
        print(f"slo panel ({len(slo)}):")
        for name in sorted(slo):
            panel = slo[name]
            state = "FIRING" if panel.get("firing") else "ok"
            print(f"  {name:<16} {state:<7} "
                  f"short={panel.get('burn_short')} "
                  f"long={panel.get('burn_long')}")
    if problems:
        print(f"schema problems ({len(problems)}):")
        for problem in problems:
            print(f"  {problem}")
        return 1
    print("schema: ok")
    return 0


def _cmd_fleet_export(args) -> int:
    document = _load(args.trace)
    metrics = document.get("fleetMetrics")
    if metrics is None:
        print("no fleetMetrics section to export", file=sys.stderr)
        return 1
    _dump({"format": "repro-fleet-metrics-v1", "metrics": metrics},
          args.metrics)
    print(f"wrote {args.metrics}")
    return 0


def _cmd_fleet_top(args) -> int:
    document = _load(args.trace)
    slices = _fleet_slices(document)
    if not slices:
        print("no slice spans in this trace", file=sys.stderr)
        return 1
    print(f"slowest slices ({len(slices)} total):")
    print(f"{'cycles':>10} {'instret':>8} {'worker':>7}  trace")
    for event in slices[:args.limit]:
        span_args = event.get("args", {})
        print(f"{event.get('dur', 0):>10} "
              f"{span_args.get('instret', 0):>8} "
              f"{event.get('pid', 0) - 10:>7}  "
              f"{span_args.get('trace', '?')}")
    return 0


# ----------------------------------------------------------------------

def _add_record_args(sub) -> None:
    sub.add_argument("--scenario", choices=sorted(SCENARIOS),
                     default="streaming")
    sub.add_argument("--seed", type=int, default=DEFAULT_SEED)
    sub.add_argument("--sim-seconds", type=float,
                     default=DEFAULT_SIM_SECONDS,
                     help="streaming window length (simulated)")
    sub.add_argument("--stride", type=int, default=DEFAULT_STRIDE,
                     help="guest profiler sampling stride "
                          "(instructions)")
    sub.add_argument("--instructions", type=int,
                     default=DEFAULT_GUEST_INSTRUCTIONS,
                     help="guest instructions to run")
    sub.add_argument("--capacity", type=int, default=65536,
                     help="trace ring capacity (events)")


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-trace",
        description="Record and inspect structured traces of the "
                    "debugging environment (Perfetto-loadable).")
    subs = parser.add_subparsers(dest="command", required=True)

    record = subs.add_parser(
        "record", help="run a scenario and write a trace")
    _add_record_args(record)
    record.add_argument("-o", "--out", default="trace.json",
                        help="output trace path (trace_event JSON)")

    report = subs.add_parser(
        "report", help="summarize a recorded trace file")
    report.add_argument("trace", help="trace JSON file")

    export = subs.add_parser(
        "export", help="re-export embedded profile/metrics sections")
    export.add_argument("trace", help="trace JSON file")
    export.add_argument("--collapsed", metavar="PATH",
                        help="write flamegraph collapsed-stack text")
    export.add_argument("--metrics", metavar="PATH",
                        help="write the metrics snapshot as JSON")

    top = subs.add_parser(
        "top", help="symbolized guest PC profile")
    top.add_argument("trace", nargs="?",
                     help="trace JSON (default: record the guest "
                          "scenario now)")
    top.add_argument("--seed", type=int, default=DEFAULT_SEED)
    top.add_argument("--stride", type=int, default=DEFAULT_STRIDE)
    top.add_argument("--instructions", type=int,
                     default=DEFAULT_GUEST_INSTRUCTIONS)
    top.add_argument("--limit", type=int, default=20)

    fleet = subs.add_parser(
        "fleet", help="distributed tracing over a supervised fleet")
    fleet_subs = fleet.add_subparsers(dest="fleet_command",
                                      required=True)

    fleet_record = fleet_subs.add_parser(
        "record", help="run a traced fleet and write the merged trace")
    fleet_record.add_argument("--seed", type=int, default=DEFAULT_SEED)
    fleet_record.add_argument("--workers", type=int, default=4)
    fleet_record.add_argument("--slices", type=int, default=4,
                              help="exec slices per job")
    fleet_record.add_argument("--slice-insns", type=int, default=500,
                              help="instructions per slice")
    fleet_record.add_argument("-o", "--out", default="fleet_trace.json",
                              help="output trace path")

    fleet_report = fleet_subs.add_parser(
        "report", help="summarize a recorded fleet trace")
    fleet_report.add_argument("trace", help="fleet trace JSON file")

    fleet_export = fleet_subs.add_parser(
        "export", help="re-export the embedded fleet metrics")
    fleet_export.add_argument("trace", help="fleet trace JSON file")
    fleet_export.add_argument("--metrics", metavar="PATH",
                              required=True,
                              help="write aggregated fleet metrics "
                                   "as JSON")

    fleet_top = fleet_subs.add_parser(
        "top", help="slowest exec slices fleet-wide")
    fleet_top.add_argument("trace", help="fleet trace JSON file")
    fleet_top.add_argument("--limit", type=int, default=10)

    args = parser.parse_args(argv)
    if args.command == "fleet":
        handler = {"record": _cmd_fleet_record,
                   "report": _cmd_fleet_report,
                   "export": _cmd_fleet_export,
                   "top": _cmd_fleet_top}[args.fleet_command]
    else:
        handler = {"record": _cmd_record, "report": _cmd_report,
                   "export": _cmd_export, "top": _cmd_top}[args.command]
    return handler(args)


if __name__ == "__main__":
    sys.exit(main())
