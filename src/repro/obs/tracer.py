"""Instrumentation glue: taps in, trace-bus events + metrics out.

The :class:`Tracer` subscribes to the multicast tap points the rest of
the tree already exposes (:mod:`repro.obs.taps`) and converts what
they observe into :class:`repro.obs.bus.TraceBus` events and
:class:`repro.obs.metrics` counters.  It never installs itself as a
*primary* observer, so it coexists with the flight recorder on the
same hooks — the regression contract is that journals are
byte-identical with and without a tracer attached.

Sources, by category:

===========  ============================================================
category     source
===========  ============================================================
``trap``     monitor :class:`~repro.vmm.trace.TraceBuffer` events
             (trap/exception/reflect/vmcall), rendered as complete
             spans whose duration comes from the monitor's cost model
``irq``      ``PicPair.raise_taps`` (raise) and
             ``InterruptDispatcher.deliver_taps`` (deliver)
``device``   ``IoBus.access_taps`` (guest port/MMIO accesses),
             ``SerialLink.taps`` (debug-link bytes),
             ``Rtc.read_taps``, ``EventQueue.schedule_taps``
``rsp``      ``DebugStub.packet_taps`` (packet in/out)
``fault``    ``FaultPlan.fire_taps`` (fired faults; RNG draws are
             counted but not traced — too hot)
``watchdog`` ``MonitorWatchdog.transition_taps``
``replay``   ``FlightRecorder.frame_taps`` (journal frame kinds)
``monitor``  run-slice begin/end spans from ``monitor.record_taps``
===========  ============================================================

Timestamps are ``max(cpu.cycle_count, queue.now)`` — the two clocks
are synced whenever the guest actually executes, and the max covers
perf-layer scenarios where only the event queue advances.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.obs import bus as _bus
from repro.obs.bus import TraceBus
from repro.obs.metrics import MetricsRegistry, global_registry

#: Monitor trace-buffer kinds rendered as duration (complete) spans,
#: mapped to the cost-model attribute charged for one such event.
_SPAN_COSTS = {
    "trap": "world_switch_cycles",
    "irq": "interrupt_deliver_cycles",
    "reflect": "pic_emulation_cycles",
    "vmcall": "world_switch_cycles",
}


class Tracer:
    """Subscribe to every available tap; emit trace events + metrics."""

    def __init__(self, bus: Optional[TraceBus] = None,
                 registry: Optional[MetricsRegistry] = None) -> None:
        self.bus = bus if bus is not None else TraceBus()
        self.registry = registry if registry is not None \
            else global_registry()
        # Ring wraparound shows up as obs.bus.dropped (lazily created
        # on the first drop, so drop-free runs stay golden-stable).
        self.bus.bind_metrics(self.registry)
        self._subscriptions: List[Tuple[object, object]] = []
        self._machine = None
        self._monitor = None
        self._dispatcher = None
        self._stack = None
        self.attached = False

    # -- wiring --------------------------------------------------------------

    def attach(self, machine=None, monitor=None, stub=None, plan=None,
               recorder=None, dispatcher=None, stack=None) -> "Tracer":
        """Subscribe to whatever tap points the given objects expose.

        ``monitor`` implies its machine and stub; every argument is
        optional so perf-layer scenarios (no monitor) trace too.  With
        a perf ``stack``, intercepted bus accesses additionally become
        ``trap`` spans charged at the stack's world-switch cost — the
        perf layer's stand-in for the monitor trace buffer.  Enables
        the bus.
        """
        if self.attached:
            raise RuntimeError("tracer already attached")
        if monitor is not None:
            machine = machine if machine is not None else monitor.machine
            stub = stub if stub is not None else monitor.stub
        self._machine = machine
        self._monitor = monitor
        self._stack = stack
        if machine is not None:
            self._sub(machine.serial_link.taps, self._on_link_byte)
            self._sub(machine.pic.raise_taps, self._on_irq_raise)
            self._sub(machine.rtc.read_taps, self._on_rtc_read)
            self._sub(machine.queue.schedule_taps, self._on_schedule)
            self._sub(machine.bus.access_taps, self._on_bus_access)
        if monitor is not None:
            self._sub(monitor.trace.taps, self._on_monitor_trace)
            self._sub(monitor.record_taps, self._on_monitor_record)
            if monitor.watchdog is not None:
                self._sub(monitor.watchdog.transition_taps,
                          self._on_watchdog)
        if stub is not None:
            self._sub(stub.packet_taps, self._on_rsp_packet)
        if plan is not None:
            self._sub(plan.fire_taps, self._on_fault_fire)
            self._sub(plan.draw_taps, self._on_fault_draw)
        if recorder is not None:
            self._sub(recorder.frame_taps, self._on_replay_frame)
        if dispatcher is not None:
            self._dispatcher = dispatcher
            self._sub(dispatcher.deliver_taps, self._on_irq_deliver)
        self.bus.enabled = True
        self.attached = True
        return self

    def detach(self) -> None:
        """Unsubscribe everywhere and disable the bus (idempotent)."""
        for tap, callback in self._subscriptions:
            tap.unsubscribe(callback)
        self._subscriptions.clear()
        self.bus.enabled = False
        self.attached = False

    def _sub(self, tap, callback) -> None:
        tap.subscribe(callback)
        self._subscriptions.append((tap, callback))

    def add_stub(self, stub) -> None:
        """Trace a stub created after :meth:`attach` (perf consoles)."""
        self._sub(stub.packet_taps, self._on_rsp_packet)

    def add_plan(self, plan) -> None:
        """Trace a fault plan created after :meth:`attach`."""
        self._sub(plan.fire_taps, self._on_fault_fire)
        self._sub(plan.draw_taps, self._on_fault_draw)

    def add_watchdog(self, watchdog) -> None:
        """Trace a watchdog created after :meth:`attach`."""
        self._sub(watchdog.transition_taps, self._on_watchdog)

    # -- clocks --------------------------------------------------------------

    def _now(self) -> Tuple[int, int]:
        """(cycle, instret) from whichever clock has advanced furthest."""
        machine = self._machine
        if machine is None:
            return 0, 0
        cycle = machine.cpu.cycle_count
        queue_now = machine.queue.now
        if queue_now > cycle:
            cycle = queue_now
        return cycle, machine.cpu.instret

    def _count(self, name: str) -> None:
        self.registry.counter(name).inc()

    # -- tap callbacks -------------------------------------------------------

    def _on_link_byte(self, direction: str, byte: int) -> None:
        cycle, instret = self._now()
        self.bus.instant(_bus.CAT_DEVICE, f"uart-{direction}", cycle,
                         instret, args={"byte": byte})
        self._count(f"trace.device.uart_{direction}_bytes")

    def _on_irq_raise(self, line: int) -> None:
        cycle, instret = self._now()
        self.bus.instant(_bus.CAT_IRQ, "irq-raise", cycle, instret,
                         args={"line": line})
        self._count("trace.irq.raised")

    def _on_irq_deliver(self, line: int, vector: int) -> None:
        cycle, instret = self._now()
        cost = 0
        if self._dispatcher is not None:
            cost = self._dispatcher.stack.cost.interrupt_deliver_cycles
        self.bus.complete(_bus.CAT_IRQ, "irq-deliver", cycle, cost,
                          instret, args={"line": line,
                                         "vector": vector})
        self._count("trace.irq.delivered")

    def _on_rtc_read(self, register: int, value: int) -> None:
        cycle, instret = self._now()
        self.bus.instant(_bus.CAT_DEVICE, "rtc-read", cycle, instret,
                         args={"reg": register, "value": value})
        self._count("trace.device.rtc_reads")

    def _on_schedule(self, time: int, name: str) -> None:
        cycle, instret = self._now()
        self.bus.instant(_bus.CAT_DEVICE, "sched", cycle, instret,
                         args={"at": time, "event": name})
        self._count("trace.device.scheduled")

    def _on_bus_access(self, kind: str, addr: int, size: int,
                       intercepted: bool) -> None:
        cycle, instret = self._now()
        self.bus.instant(_bus.CAT_DEVICE, kind, cycle, instret,
                         args={"addr": addr, "size": size,
                               "intercepted": int(intercepted)})
        self._count(f"trace.device.{kind.replace('-', '_')}")
        if intercepted:
            self._count("trace.device.intercepted")
            if self._stack is not None:
                # Perf-layer stand-in for the monitor trace buffer: an
                # intercepted access is a trap charged one world switch.
                self.bus.complete(
                    _bus.CAT_TRAP, f"trap-{kind}", cycle,
                    self._stack.cost.world_switch_cycles, instret,
                    args={"addr": addr})
                self._count("trace.monitor.trap")

    def _on_monitor_trace(self, event) -> None:
        """One monitor TraceBuffer event (trap/exc/irq/reflect/...)."""
        instret = self._machine.cpu.instret \
            if self._machine is not None else 0
        cost_attr = _SPAN_COSTS.get(event.kind)
        dur = 0
        if cost_attr is not None and self._monitor is not None:
            dur = getattr(self._monitor.cost, cost_attr, 0)
        if dur:
            self.bus.complete(_bus.CAT_TRAP, event.kind, event.cycle,
                              dur, instret, pc=event.pc,
                              args={"detail": event.detail})
        else:
            self.bus.instant(_bus.CAT_TRAP, event.kind, event.cycle,
                             instret, pc=event.pc,
                             args={"detail": event.detail})
        self._count(f"trace.monitor.{event.kind}")

    def _on_monitor_record(self, kind: str, payload: dict) -> None:
        """Nondeterminism-boundary events: run slices become spans."""
        cycle, instret = self._now()
        if kind == "run-begin":
            self.bus.begin(_bus.CAT_MONITOR, "run", cycle, instret,
                           args={"max": payload.get("max", 0)})
        elif kind == "run-end":
            self.bus.end("run", cycle, instret,
                         args={"executed": payload.get("executed", 0)})
            self._count("trace.monitor.run_slices")
        else:
            self.bus.instant(_bus.CAT_MONITOR, kind, cycle, instret,
                             args=dict(payload))
            self._count(f"trace.monitor.{kind.replace('-', '_')}")

    def _on_rsp_packet(self, direction: str, payload: bytes) -> None:
        cycle, instret = self._now()
        preview = payload[:32].decode("latin-1")
        self.bus.instant(_bus.CAT_RSP, f"packet-{direction}", cycle,
                         instret, args={"len": len(payload),
                                        "data": preview})
        self._count(f"trace.rsp.packets_{direction}")

    def _on_fault_fire(self, event) -> None:
        cycle, instret = self._now()
        self.bus.instant(_bus.CAT_FAULT, "fault-fire", cycle, instret,
                         args={"site": event.site, "kind": event.kind,
                               "op": event.opportunity})
        self._count("trace.fault.fired")

    def _on_fault_draw(self, purpose: str, _value) -> None:
        self._count(f"trace.fault.draws_{purpose}")

    def _on_watchdog(self, cycle: int, src: str, dst: str,
                     reason: str) -> None:
        instret = self._machine.cpu.instret \
            if self._machine is not None else 0
        self.bus.instant(_bus.CAT_WATCHDOG, "degrade", cycle, instret,
                         args={"from": src, "to": dst,
                               "reason": reason})
        self._count("trace.watchdog.degradations")

    def _on_replay_frame(self, frame) -> None:
        cycle, instret = self._now()
        kind = frame.data.get("kind", "?")
        self.bus.instant(_bus.CAT_REPLAY, f"frame-{kind}", cycle,
                         instret)
        self._count("trace.replay.frames")
