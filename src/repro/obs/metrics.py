"""The metrics registry.

Before this module every subsystem grew its own ad-hoc stats dict
(``interp_stats``, ``analysis_stats``, ``fault_stats``,
``replay_stats`` in :mod:`repro.perf.export`).  They still work — as
thin adapters — but the counters now live behind one API:

* :class:`Counter` — a monotonically increasing count;
* :class:`Gauge` — a value that can go up and down;
* :class:`Histogram` — observation counts over **fixed** bucket
  boundaries (fixed so two runs of a deterministic scenario bucket
  identically, which keeps metrics snapshots golden-file stable).

:class:`MetricsRegistry` hands out metrics by dotted name with
get-or-create semantics; :func:`global_registry` returns the process
default the tracer and the adapters share.

The ``collect_*`` functions are the bridge from the legacy world: each
walks one subsystem's live counters into registry gauges (dotted
names, e.g. ``interp.decode_cache.hits``) *and* returns the exact
legacy dict shape, so :mod:`repro.perf.export` can delegate without
changing any caller.
"""

from __future__ import annotations

import bisect
from typing import Dict, List, Optional, Sequence, Tuple, Union

Number = Union[int, float]

#: Default histogram buckets for cycle-cost style observations.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    1, 2, 5, 10, 20, 50, 100, 200, 500,
    1000, 2000, 5000, 10000, 50000, 100000,
)


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "help", "value")

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self.value: Number = 0

    def inc(self, amount: Number = 1) -> None:
        if amount < 0:
            raise ValueError(
                f"counter {self.name!r} cannot decrease (got {amount})")
        self.value += amount

    def snapshot(self) -> Dict:
        return {"type": "counter", "value": self.value}


class Gauge:
    """A value that can move in either direction."""

    __slots__ = ("name", "help", "value")

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self.value: Number = 0

    def set(self, value: Number) -> None:
        self.value = value

    def inc(self, amount: Number = 1) -> None:
        self.value += amount

    def dec(self, amount: Number = 1) -> None:
        self.value -= amount

    def snapshot(self) -> Dict:
        return {"type": "gauge", "value": self.value}


class Histogram:
    """Observation counts over fixed, sorted bucket boundaries.

    ``bucket_counts[i]`` counts observations ``<= boundaries[i]``
    (cumulative-upper-bound semantics, the Prometheus convention);
    observations above the last boundary land in the overflow bucket.
    Boundary membership is inclusive: ``observe(10)`` with a boundary
    at 10 lands in the 10-bucket, not the next one.

    ``observe(value, exemplar=...)`` attaches an *exemplar* — an
    opaque string (in the fleet: an encoded trace context) remembered
    per bucket, linking a percentile straight back to one contributing
    causal trace.  Exemplars appear in :meth:`snapshot` only when at
    least one was recorded, so exemplar-free snapshots keep their
    exact legacy shape (golden files depend on it).
    """

    __slots__ = ("name", "help", "boundaries", "bucket_counts",
                 "overflow", "count", "sum", "min", "max", "exemplars")

    def __init__(self, name: str, help: str = "",
                 buckets: Sequence[Number] = DEFAULT_BUCKETS) -> None:
        boundaries = tuple(buckets)
        if not boundaries:
            raise ValueError(f"histogram {name!r} needs >= 1 bucket")
        if list(boundaries) != sorted(set(boundaries)):
            raise ValueError(f"histogram {name!r} buckets must be "
                             f"strictly increasing: {boundaries}")
        self.name = name
        self.help = help
        self.boundaries = boundaries
        self.bucket_counts = [0] * len(boundaries)
        self.overflow = 0
        self.count = 0
        self.sum: Number = 0
        self.min: Optional[Number] = None
        self.max: Optional[Number] = None
        #: bucket key ("10" / "overflow") -> last exemplar string.
        self.exemplars: Dict[str, str] = {}

    def observe(self, value: Number,
                exemplar: Optional[str] = None) -> None:
        self.count += 1
        self.sum += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        index = bisect.bisect_left(self.boundaries, value)
        if index == len(self.boundaries):
            self.overflow += 1
            key = "overflow"
        else:
            self.bucket_counts[index] += 1
            key = str(self.boundaries[index])
        if exemplar is not None:
            self.exemplars[key] = exemplar

    def snapshot(self) -> Dict:
        snap = {
            "type": "histogram",
            "count": self.count,
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
            "buckets": {str(boundary): count for boundary, count
                        in zip(self.boundaries, self.bucket_counts)},
            "overflow": self.overflow,
        }
        if self.exemplars:
            # Key present only when an exemplar was attached, so
            # exemplar-free snapshots keep their legacy golden shape.
            snap["exemplars"] = dict(sorted(self.exemplars.items()))
        return snap


class MetricsRegistry:
    """Named metrics with get-or-create semantics.

    Asking for an existing name returns the existing instance; asking
    for it with a different type (or different histogram buckets)
    raises, so two subsystems cannot silently shadow each other.
    """

    def __init__(self) -> None:
        self._metrics: Dict[str, Union[Counter, Gauge, Histogram]] = {}

    def _get_or_create(self, name: str, kind, **kwargs):
        existing = self._metrics.get(name)
        if existing is not None:
            if type(existing) is not kind:
                raise TypeError(
                    f"metric {name!r} already registered as "
                    f"{type(existing).__name__}, not {kind.__name__}")
            buckets = kwargs.get("buckets")
            if buckets is not None and \
                    existing.boundaries != tuple(buckets):
                raise ValueError(
                    f"histogram {name!r} already registered with "
                    f"buckets {existing.boundaries}")
            return existing
        metric = kind(name, **kwargs)
        self._metrics[name] = metric
        return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get_or_create(name, Counter, help=help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get_or_create(name, Gauge, help=help)

    def histogram(self, name: str, help: str = "",
                  buckets: Sequence[Number] = DEFAULT_BUCKETS
                  ) -> Histogram:
        return self._get_or_create(name, Histogram, help=help,
                                   buckets=buckets)

    def get(self, name: str):
        return self._metrics.get(name)

    def names(self) -> List[str]:
        return sorted(self._metrics)

    def __len__(self) -> int:
        return len(self._metrics)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def clear(self) -> None:
        self._metrics.clear()

    def snapshot(self) -> Dict:
        """All metrics as a plain sorted dict (JSON-ready)."""
        return {name: metric.snapshot()
                for name, metric in sorted(self._metrics.items())}


_GLOBAL = MetricsRegistry()


def global_registry() -> MetricsRegistry:
    """The process-default registry the tracer and adapters share."""
    return _GLOBAL


def _publish(registry: MetricsRegistry, prefix: str, tree: Dict) -> None:
    """Flatten a nested stats dict into dotted gauges.

    Only numeric leaves become gauges (booleans count as 0/1); string
    leaves are skipped — the legacy dicts keep them, the registry does
    not pretend text is a metric.
    """
    for key, value in tree.items():
        name = f"{prefix}.{key}"
        if isinstance(value, dict):
            _publish(registry, name, value)
        elif isinstance(value, bool):
            registry.gauge(name).set(int(value))
        elif isinstance(value, (int, float)):
            registry.gauge(name).set(value)


def collect_interp(cpu, registry: Optional[MetricsRegistry] = None
                   ) -> dict:
    """Interpreter fast-path counters → registry + legacy dict.

    The returned shape is exactly what ``repro.perf.export
    .interp_stats`` always produced.
    """
    stats = {
        "instret": cpu.instret,
        "decode_cache": cpu.decode_cache_stats(),
        "block_cache": cpu.block_cache_stats(),
        "tlb": cpu.mmu.tlb.stats(),
    }
    _publish(registry if registry is not None else _GLOBAL, "interp", stats)
    return stats


def collect_tv(cpu, registry: Optional[MetricsRegistry] = None) -> dict:
    """Translation-validator counters → ``analysis.tv.*`` gauges.

    Publishes the numeric fields of the superblock engine's
    ``tv_stats()`` (enabled as 0/1, blocks validated, blocks rejected);
    the failure-message list stays in the returned dict only.
    """
    engine = getattr(cpu, "_sb_engine", None)
    if engine is None:
        stats = {"enabled": False, "validated": 0, "rejected": 0,
                 "failures": []}
    else:
        stats = engine.tv_stats()
    _publish(registry if registry is not None else _GLOBAL, "analysis.tv",
             {key: value for key, value in stats.items()
              if key != "failures"})
    return stats


def collect_analysis(report, registry: Optional[MetricsRegistry] = None
                     ) -> dict:
    """Static-analyzer counters → registry + legacy dict."""
    stats = {
        "image": {"origin": report.origin, "end": report.end,
                  "entry_ring": report.entry_ring,
                  "monitor_base": report.monitor_base},
        "coverage": dict(report.stats),
        "findings_by_severity": report.counts_by_severity(),
        "findings_by_check": report.counts_by_check(),
        "clean": report.clean,
    }
    _publish(registry if registry is not None else _GLOBAL, "analysis", stats)
    return stats


def collect_fault(plan, client=None, monitor=None,
                  devices: Optional[dict] = None,
                  registry: Optional[MetricsRegistry] = None) -> dict:
    """Fault-injection and recovery counters → registry + legacy dict."""
    stats = {"plan": plan.stats()}
    if client is not None:
        stats["client"] = {
            "acks_seen": client.acks_seen,
            "naks_seen": client.naks_seen,
            "recoveries": dict(sorted(client.recoveries.items())),
        }
    if monitor is not None:
        mon = {
            "degradation_level": monitor.degradation_level,
            "wild_writes_injected": monitor.stats.wild_writes_injected,
            "spurious_interrupts_injected":
                monitor.stats.spurious_interrupts_injected,
            "resumes_refused": monitor.stats.resumes_refused,
            "debug_stops": monitor.stats.debug_stops,
            "guest_dead": monitor.guest_dead,
        }
        if monitor.watchdog is not None:
            mon["watchdog"] = dict(monitor.watchdog.stats)
        stats["monitor"] = mon
    if devices:
        counters = ("faults_injected", "rx_faults_injected",
                    "frames_dropped", "bytes_dropped", "bytes_corrupted")
        stats["devices"] = {
            name: {counter: getattr(device, counter)
                   for counter in counters if hasattr(device, counter)}
            for name, device in sorted(devices.items())}
    _publish(registry if registry is not None else _GLOBAL, "fault", stats)
    return stats


def collect_net(endpoint=None, result=None,
                registry: Optional[MetricsRegistry] = None) -> dict:
    """TCP endpoint / streaming-run counters → ``net.*`` gauges.

    ``endpoint`` is a :class:`repro.net.tcp.TcpEndpoint`; ``result`` a
    :class:`repro.workloads.streaming.TcpStreamResult`.  Either (or
    both) may be given; the server endpoint's aggregate TCP counters
    land under ``net.tcp.*`` (retransmits, rto_expirations, dupacks,
    ...), the streaming-ladder outcome under ``net.stream.*``.  The
    ``net.tcp.cwnd`` histogram and the ``net.rx.malformed`` counter
    are maintained live by their owners and are not touched here.
    """
    stats: dict = {}
    if endpoint is not None:
        stats["tcp"] = endpoint.stats()
    if result is not None:
        if "tcp" not in stats:
            stats["tcp"] = dict(result.server_stats)
        stats["stream"] = {
            "sessions": len(result.sessions),
            "sessions_shed": result.sessions_shed,
            "level": result.level,
            "counts": result.counts(),
            "aggregate_rate_bps": result.aggregate_rate_bps,
            "downlink": dict(result.downlink),
            "uplink": dict(result.uplink),
        }
    _publish(registry if registry is not None else _GLOBAL, "net", stats)
    return stats


def collect_replay(recorder=None, result=None, minimize=None,
                   store=None,
                   registry: Optional[MetricsRegistry] = None) -> dict:
    """Record/replay counters → registry + legacy dict."""
    stats: dict = {}
    if recorder is not None:
        stats["recorder"] = recorder.stats()
    if result is not None:
        stats["replay"] = result.stats()
    if minimize is not None:
        stats["minimize"] = minimize.stats()
    if store is not None:
        stats["checkpoint_store"] = store.stats()
    _publish(registry if registry is not None else _GLOBAL, "replay", stats)
    return stats
