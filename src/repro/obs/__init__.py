"""Unified observability layer.

One cross-cutting layer answers "where does the time go?" for every
other subsystem:

* :mod:`repro.obs.taps` — multicast observation points.  Devices and
  the monitor expose :class:`~repro.obs.taps.TapPoint` hooks so the
  flight recorder and the tracer (and anything else) can observe the
  same boundary simultaneously.
* :mod:`repro.obs.bus` — the structured trace bus: a bounded ring of
  typed trace events (instants and nestable spans) timestamped in
  simulated cycles and retired instructions, never wall-clock.
* :mod:`repro.obs.metrics` — the metrics registry
  (counter/gauge/histogram) that unifies the ad-hoc ``*_stats`` dicts
  behind one API; :mod:`repro.perf.export` keeps its entry points as
  thin adapters.
* :mod:`repro.obs.profiler` — a sampling guest-PC profiler driven from
  the monitor run loop at a configurable instruction stride.
* :mod:`repro.obs.tracer` — the instrumentation glue: subscribes
  guarded hooks across the monitor, devices, RSP stub, faults, replay
  and watchdog, and turns what they observe into trace-bus events and
  registry metrics.
* :mod:`repro.obs.exporters` — Chrome ``trace_event`` JSON (loads in
  Perfetto / about:tracing), collapsed-stack text for flamegraph
  tooling, and metrics snapshots.
* :mod:`repro.obs.cli` — the ``repro-trace`` command
  (record / report / export / top).

Everything here is zero-cost when disabled: hooks are guarded tap
points that cost one truthiness check at the observation site, and the
only per-instruction cost the profiler adds to the monitor run loop is
a single integer compare (see ``benchmarks/bench_obs_overhead.py``).
"""

from repro.obs.bus import SpanHandle, TraceBus, TraceRecord
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    global_registry,
)
from repro.obs.profiler import GuestProfiler
from repro.obs.taps import TapPoint
from repro.obs.tracer import Tracer

__all__ = [
    "Counter",
    "Gauge",
    "GuestProfiler",
    "Histogram",
    "MetricsRegistry",
    "SpanHandle",
    "TapPoint",
    "TraceBus",
    "TraceRecord",
    "Tracer",
    "global_registry",
]
