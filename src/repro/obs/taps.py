"""Multicast observation points.

Before this module, every observation hook in the tree was a single
attribute slot (``SerialLink.tap``, ``EventQueue.schedule_tap``, ...),
so only one observer — in practice the flight recorder — could watch a
boundary at a time.  :class:`TapPoint` keeps that assignment API
working (the *primary* slot) while adding a subscriber list, so the
recorder and the tracer coexist on the same hooks.

Call-site contract: the owner holds a ``TapPoint`` and notifies it with
``if taps: taps(args...)`` — one truthiness check when nobody is
listening, which is what keeps observation zero-cost when disabled.
Observers must only observe; mutating device or RNG state from a tap
breaks the determinism contract the flight recorder depends on.

Notification order is deterministic: the primary slot first, then
subscribers in subscription order.  That pins the recorder (always the
primary) ahead of any tracer, so journals are byte-identical with or
without tracing.
"""

from __future__ import annotations

from typing import Callable, List, Optional


class TapPoint:
    """One observation point with a primary slot plus subscribers.

    The primary slot exists for backward compatibility with the
    ``device.tap = callback`` assignment style (owners expose it via a
    property); new observers use :meth:`subscribe`/:meth:`unsubscribe`.
    """

    __slots__ = ("primary", "subscribers")

    def __init__(self) -> None:
        #: The assignment-style observer (the flight recorder's slot).
        self.primary: Optional[Callable] = None
        #: Additional observers, notified after the primary in order.
        self.subscribers: List[Callable] = []

    def subscribe(self, callback: Callable) -> Callable:
        """Add an observer; returns it so callers can keep the handle."""
        self.subscribers.append(callback)
        return callback

    def unsubscribe(self, callback: Callable) -> None:
        """Remove an observer (a no-op if it is not subscribed)."""
        try:
            self.subscribers.remove(callback)
        except ValueError:
            pass

    def clear(self) -> None:
        self.primary = None
        self.subscribers.clear()

    def __bool__(self) -> bool:
        return self.primary is not None or bool(self.subscribers)

    def __len__(self) -> int:
        return (1 if self.primary is not None else 0) \
            + len(self.subscribers)

    def __call__(self, *args) -> None:
        if self.primary is not None:
            self.primary(*args)
        for callback in tuple(self.subscribers):
            callback(*args)


def tap_property(attr: str, doc: str = "") -> property:
    """A property exposing a TapPoint's primary slot as a plain attribute.

    ``attr`` names the instance attribute holding the :class:`TapPoint`.
    Owners write ``tap = tap_property("taps")`` at class level so legacy
    ``obj.tap = callback`` / ``obj.tap is None`` code keeps working.
    """

    def getter(self):
        return getattr(self, attr).primary

    def setter(self, callback) -> None:
        getattr(self, attr).primary = callback

    return property(getter, setter, doc=doc or
                    f"Primary observer slot of ``{attr}`` (legacy API).")
