"""The deterministic traced-fleet scenario (golden / CLI / bench).

Spawns a real multi-process fleet with tracing on, runs one
``exec-slices`` job per worker, and exports the merged multi-process
trace document.  The document is a pure function of
``(seed, workers, slices, slice_insns)``:

* trace ids are sha256 of the job ids; supervisor span ids are
  per-trace sequences; worker span ids are site-partitioned — none
  depend on scheduling;
* jobs are submitted only after *every* worker has said hello, and
  there are exactly as many jobs as workers, so one dispatch pass
  assigns ``job-i`` to ``worker-i`` regardless of spawn timing;
* every timestamp is a simulated-cycle count (workers) or a per-trace
  logical tick (supervisor); the exporter sorts events on stable keys.

The golden-file test records this scenario twice and compares bytes;
CI compares one run against ``tests/golden/fleet_trace_seed1234.json``.
"""

from __future__ import annotations

from typing import Dict

from repro.obs.exporters import fleet_chrome_trace

DEFAULT_SEED = 1234
DEFAULT_WORKERS = 4
DEFAULT_SLICES = 4
DEFAULT_SLICE_INSNS = 500


def record_fleet(seed: int = DEFAULT_SEED,
                 workers: int = DEFAULT_WORKERS,
                 slices: int = DEFAULT_SLICES,
                 slice_insns: int = DEFAULT_SLICE_INSNS,
                 timeout: float = 120.0) -> Dict:
    """One traced fleet run; returns the merged trace document."""
    from repro.fleet.jobs import Job
    from repro.fleet.supervisor import Fleet, FleetConfig, SLOT_IDLE

    fleet = Fleet(FleetConfig(workers=workers, trace=True))
    fleet.start()
    try:
        # Wait for every worker, not just the first healthy one: with
        # all slots idle before submission, the single dispatch pass
        # that follows assigns job-i to worker-i deterministically.
        import time
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            fleet.poll()
            if all(slot.status == SLOT_IDLE for slot in fleet.slots):
                break
            time.sleep(0.005)
        else:
            raise RuntimeError("fleet workers did not all come up")
        for _ in range(workers):
            fleet.submit(Job(kind="exec-slices",
                             params={"slices": slices,
                                     "slice_insns": slice_insns,
                                     "seed": seed,
                                     "record": True}))
        if not fleet.run_until_idle(timeout=timeout):
            raise RuntimeError("fleet did not finish its jobs")
        # The fleet-level trace carries wall-clock-keyed events (SLO
        # transitions, worker deaths, ladder moves) — real signals,
        # but not functions of the seed.  The golden artifact keeps
        # only the causal job traces, which are.
        fleet.obs.collector.drop_trace(fleet.obs.fleet_trace_id)
        document = fleet_chrome_trace(
            fleet.obs.collector,
            aggregated=fleet.obs.fleet_metrics(),
            label=f"fleet seed={seed}")
    finally:
        fleet.shutdown()
    other = document["otherData"]
    other["scenario"] = "fleet"
    other["seed"] = seed
    other["workers"] = workers
    other["slices"] = slices
    other["slice_insns"] = slice_insns
    return document
