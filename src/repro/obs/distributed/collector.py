"""Supervisor-side span collection and fleet timeline alignment.

The :class:`SpanCollector` is the single sink for every span in a
fleet run:

* **supervisor events** (enqueue, dispatch, retry, restart, resume,
  ladder transitions) are recorded directly via
  :meth:`SpanCollector.supervisor_event`.  The supervisor has no
  simulated machine clock of its own, so its events are timestamped
  with a *per-trace logical tick* — a counter that orders the
  supervisor's actions on one job without pretending to share the
  workers' cycle clocks;
* **worker span batches** (the wire dicts of
  :mod:`repro.obs.distributed.spans`) arrive via
  :meth:`SpanCollector.ingest` — shipped on heartbeats, flushed with
  results, and salvaged from the final drain when a worker dies.

Worker timestamps are each *job machine's* cycle count, which restarts
from zero on every new job.  :meth:`SpanCollector.worker_events`
aligns them onto one monotonic per-worker timeline by detecting clock
restarts (a raw timestamp lower than its predecessor) and shifting
every later span past the furthest point already reached — so a
worker's track in the merged export reads as one continuous lane of
back-to-back jobs, byte-identical across identical seeded runs.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.obs.distributed.context import TraceContext

#: Wire phases a collector accepts from workers.
_WORKER_PHASES = ("X", "i")


class SpanCollector:
    """Merge supervisor and worker spans into one causal record."""

    def __init__(self) -> None:
        #: Supervisor wire dicts, in emission order.
        self.supervisor: List[Dict] = []
        #: worker index -> raw wire dicts, in ingestion order.
        self.workers: Dict[int, List[Dict]] = {}
        #: trace_id -> logical tick counter for supervisor events.
        self._ticks: Dict[int, int] = {}
        #: trace_id -> first-seen ordinal (supervisor track layout).
        self.trace_order: Dict[int, int] = {}
        #: trace_id -> human label (the job id, when known).
        self.trace_labels: Dict[int, str] = {}
        self.ingested = 0
        self.rejected = 0

    # -- supervisor side -----------------------------------------------------

    def supervisor_event(self, ctx: TraceContext, name: str,
                         args: Optional[Dict] = None,
                         cat: str = "fleet") -> Dict:
        """One supervisor action on the trace ``ctx`` belongs to."""
        trace_id = ctx.trace_id
        if trace_id not in self.trace_order:
            self.trace_order[trace_id] = len(self.trace_order)
        tick = self._ticks.get(trace_id, 0)
        self._ticks[trace_id] = tick + 1
        event = {"trace": ctx.encode(), "name": name, "cat": cat,
                 "ph": "i", "ts": tick, "instret": 0}
        if args:
            event["args"] = dict(args)
            label = args.get("job")
            if label is not None and trace_id not in self.trace_labels:
                self.trace_labels[trace_id] = str(label)
        self.supervisor.append(event)
        return event

    def label(self, trace_id: int) -> str:
        """Display label of a trace (job id, else the trace hex)."""
        return self.trace_labels.get(trace_id, f"{trace_id:016x}")

    def drop_trace(self, trace_id: int) -> int:
        """Remove one trace and its lane; returns events removed.

        Used by the deterministic golden scenario to excise the
        fleet-level trace, whose events (SLO transitions, worker
        deaths, ladder moves) are keyed to wall-clock health and so
        cannot be byte-stable.  Remaining lanes are re-numbered in
        first-seen order; :attr:`ingested` stays a lifetime counter.
        """
        removed = len(self.supervisor)
        self.supervisor = [
            event for event in self.supervisor
            if TraceContext.decode(event["trace"]).trace_id != trace_id]
        removed -= len(self.supervisor)
        for index, spans in self.workers.items():
            kept = [span for span in spans
                    if TraceContext.decode(span["trace"]).trace_id
                    != trace_id]
            removed += len(spans) - len(kept)
            self.workers[index] = kept
        if trace_id in self.trace_order:
            del self.trace_order[trace_id]
            survivors = sorted(self.trace_order,
                               key=self.trace_order.get)
            self.trace_order = {tid: ordinal for ordinal, tid
                                in enumerate(survivors)}
        self.trace_labels.pop(trace_id, None)
        self._ticks.pop(trace_id, None)
        return removed

    # -- worker side ---------------------------------------------------------

    def ingest(self, worker_index: int, batch: List[Dict]) -> int:
        """Accept one shipped span batch; returns spans kept.

        Malformed entries (not a dict, unknown phase, missing trace or
        timestamp) are counted in :attr:`rejected` and skipped — a
        corrupt batch from a dying worker must not poison the export.
        """
        kept = 0
        spans = self.workers.setdefault(worker_index, [])
        for span in batch:
            if (not isinstance(span, dict)
                    or span.get("ph") not in _WORKER_PHASES
                    or not isinstance(span.get("trace"), str)
                    or not isinstance(span.get("ts"), int)
                    or not isinstance(span.get("name"), str)):
                self.rejected += 1
                continue
            try:
                ctx = TraceContext.decode(span["trace"])
            except ValueError:
                self.rejected += 1
                continue
            if ctx.trace_id not in self.trace_order:
                self.trace_order[ctx.trace_id] = len(self.trace_order)
            spans.append(span)
            kept += 1
        self.ingested += kept
        return kept

    # -- timeline alignment --------------------------------------------------

    @staticmethod
    def _aligned(spans: List[Dict]) -> List[Dict]:
        """Shift per-job clocks onto one monotonic worker timeline."""
        offset = 0
        frontier = 0
        last_raw: Optional[int] = None
        out: List[Dict] = []
        for span in spans:
            raw = span["ts"]
            if last_raw is not None and raw < last_raw:
                # The job machine's clock restarted: this span starts
                # a new job, which begins where the previous one ended.
                offset = frontier
            last_raw = raw
            aligned = dict(span)
            aligned["ts"] = offset + raw
            end = aligned["ts"] + aligned.get("dur", 0)
            if end > frontier:
                frontier = end
            out.append(aligned)
        return out

    def worker_events(self, worker_index: int) -> List[Dict]:
        """One worker's spans on its aligned monotonic timeline."""
        return self._aligned(self.workers.get(worker_index, []))

    def worker_indices(self) -> List[int]:
        return sorted(self.workers)

    # -- queries -------------------------------------------------------------

    def spans_by_trace(self) -> Dict[int, List[Dict]]:
        """trace_id -> every span of that trace (supervisor first,
        then workers in index order, aligned timestamps)."""
        grouped: Dict[int, List[Dict]] = {
            trace_id: [] for trace_id in self.trace_order}
        for event in self.supervisor:
            ctx = TraceContext.decode(event["trace"])
            grouped[ctx.trace_id].append(event)
        for worker_index in self.worker_indices():
            for span in self.worker_events(worker_index):
                ctx = TraceContext.decode(span["trace"])
                grouped.setdefault(ctx.trace_id, []).append(span)
        return grouped

    def span_tree(self, trace_id: int) -> Dict[int, List[int]]:
        """parent span_id -> child span_ids (0 = roots) for one trace."""
        tree: Dict[int, List[int]] = {}
        for span in self.spans_by_trace().get(trace_id, []):
            ctx = TraceContext.decode(span["trace"])
            tree.setdefault(ctx.parent_id, []).append(ctx.span_id)
        return {parent: sorted(children)
                for parent, children in sorted(tree.items())}

    def stats(self) -> Dict:
        return {
            "supervisor_events": len(self.supervisor),
            "worker_spans": {str(index): len(spans) for index, spans
                             in sorted(self.workers.items())},
            "traces": len(self.trace_order),
            "ingested": self.ingested,
            "rejected": self.rejected,
        }
