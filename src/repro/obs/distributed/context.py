"""Trace-context identity: the causal thread through the fleet.

A :class:`TraceContext` is the W3C-traceparent idea shrunk to this
tree's determinism rules: three integers —

* ``trace_id`` (64-bit, nonzero) names one causal tree.  It is minted
  at :meth:`repro.fleet.jobs.JobQueue.submit` by hashing the job id
  (:func:`mint_trace_id`), so two identical seeded fleet runs mint
  identical trace ids without sharing any state;
* ``span_id`` (64-bit, nonzero) names one span inside that tree;
* ``parent_id`` (64-bit, 0 = root) links the span to its parent.

Span ids are allocated by :class:`SpanAllocator` — a per-*site*
counter where the site (supervisor = 0, worker *w* = *w* + 1) occupies
the high bits.  Two sites can therefore mint span ids concurrently
with no coordination and no collision, and the ids are still pure
functions of (site, local order), which is what keeps the exported
span tree byte-identical across runs.

The wire form (:meth:`TraceContext.encode`) is three fixed-width hex
fields joined by dashes; :meth:`TraceContext.decode` is its exact
inverse (the hypothesis round-trip property in
``tests/property/test_trace_context.py`` holds over the whole id
space).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

#: Inclusive upper bounds of the id spaces.
TRACE_ID_MAX = (1 << 64) - 1
SPAN_ID_MAX = (1 << 64) - 1

#: Site numbers partitioning the span-id space.
SUPERVISOR_SITE = 0
#: Bits reserved for the per-site counter (site lives above them).
_SITE_SHIFT = 48

#: Span id of every trace's supervisor-side root span.  Span ids need
#: only be unique *within* one trace, so giving every trace the same
#: root id keeps roots (and the per-trace children counted up from
#: them) deterministic with no allocator state shared across traces —
#: the order results arrive in cannot perturb another trace's ids.
ROOT_SPAN_ID = 1


def trace_root(trace_id: int) -> "TraceContext":
    """The supervisor-side root span of a trace."""
    return TraceContext(trace_id, ROOT_SPAN_ID, 0)


def worker_site(worker_index: int) -> int:
    """The span-allocator site of worker ``worker_index``."""
    if worker_index < 0:
        raise ValueError(f"worker index must be >= 0, got {worker_index}")
    return worker_index + 1


@dataclass(frozen=True)
class TraceContext:
    """(trace_id, span_id, parent_id) — one span's causal coordinates."""

    trace_id: int
    span_id: int
    parent_id: int = 0

    def __post_init__(self) -> None:
        for name, value, top in (("trace_id", self.trace_id, TRACE_ID_MAX),
                                 ("span_id", self.span_id, SPAN_ID_MAX),
                                 ("parent_id", self.parent_id, SPAN_ID_MAX)):
            if not 0 <= value <= top:
                raise ValueError(
                    f"{name} {value:#x} outside [0, {top:#x}]")
        if self.trace_id == 0:
            raise ValueError("trace_id 0 is reserved (no trace)")
        if self.span_id == 0:
            raise ValueError("span_id 0 is reserved (no span)")

    # -- codec ---------------------------------------------------------------

    def encode(self) -> str:
        """Fixed-width wire form: ``tttttttttttttttt-ssssssssssssssss-pppppppppppppppp``."""
        return (f"{self.trace_id:016x}-{self.span_id:016x}-"
                f"{self.parent_id:016x}")

    @classmethod
    def decode(cls, text: str) -> "TraceContext":
        parts = text.split("-")
        if len(parts) != 3 or not all(len(part) == 16 for part in parts):
            raise ValueError(f"malformed trace context {text!r}")
        try:
            trace_id, span_id, parent_id = (int(part, 16)
                                            for part in parts)
        except ValueError:
            raise ValueError(f"malformed trace context {text!r}") from None
        return cls(trace_id, span_id, parent_id)

    # -- derivation ----------------------------------------------------------

    def child(self, span_id: int) -> "TraceContext":
        """A new span in the same trace, parented to this one."""
        return TraceContext(self.trace_id, span_id, self.span_id)

    @property
    def trace_hex(self) -> str:
        return f"{self.trace_id:016x}"


def mint_trace_id(material: str) -> int:
    """Deterministic nonzero 64-bit trace id from arbitrary material.

    sha256 keeps unrelated materials (job ids, mux client ordinals,
    fleet roots) from colliding; the +1-fold keeps 0 reserved.
    """
    digest = hashlib.sha256(material.encode("utf-8")).digest()
    value = int.from_bytes(digest[:8], "big")
    return (value % TRACE_ID_MAX) + 1


class SpanAllocator:
    """Collision-free deterministic span ids for one site.

    ``site`` occupies the bits above :data:`_SITE_SHIFT`; the low bits
    count allocations (1-based so span id 0 stays reserved).
    """

    def __init__(self, site: int) -> None:
        if not 0 <= site < (1 << (64 - _SITE_SHIFT)):
            raise ValueError(f"site {site} outside the id partition")
        self.site = site
        self._next = 0

    def next_id(self) -> int:
        self._next += 1
        if self._next >= (1 << _SITE_SHIFT):
            raise OverflowError(
                f"site {self.site} exhausted its span-id space")
        return (self.site << _SITE_SHIFT) | self._next

    def root(self, trace_id: int) -> TraceContext:
        """A fresh root span of ``trace_id``."""
        return TraceContext(trace_id, self.next_id(), 0)

    def child(self, parent: TraceContext) -> TraceContext:
        """A fresh child span under ``parent``."""
        return parent.child(self.next_id())
