"""Worker-side span recording and the span wire shape.

A fleet worker owns a local :class:`~repro.obs.bus.TraceBus`; the
:class:`WorkerSpanRecorder` binds the job's :class:`~repro.obs
.distributed.context.TraceContext` into it so the worker's spans
(slice execution, RSP servicing, watchdog transitions) land on the
same causal tree as the supervisor's (enqueue, dispatch, retry,
resume).  Timestamps are the job machine's own simulated cycles —
deterministic, like every other clock in this tree.

Spans leave the worker as plain dicts (the *wire shape*) riding the
existing pipe protocol: a batch on every heartbeat, a final flush on
the result event.  The recorder drains the bus incrementally by
sequence number, so a span is shipped exactly once; spans that fall
out of the ring before a drain are visible as the bus's
``obs.bus.dropped`` metric, never silently lost.

Wire shape (one dict per span)::

    {"trace": "<TraceContext.encode()>", "name": "slice",
     "cat": "fleet", "ph": "X" | "i", "ts": <cycle>, "dur": <cycles>,
     "instret": <retired>, "args": {...}}
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.obs.bus import (CAT_FLEET, PH_COMPLETE, PH_INSTANT, TraceBus,
                           TraceRecord)
from repro.obs.distributed.context import (SpanAllocator, TraceContext,
                                           worker_site)
from repro.obs.metrics import MetricsRegistry, global_registry

#: Histogram buckets for slice/job latency in simulated cycles.
LATENCY_BUCKETS = (100, 200, 500, 1000, 2000, 5000, 10_000, 20_000,
                   50_000, 100_000, 200_000, 500_000, 1_000_000)

#: Merged-histogram names the aggregator derives percentiles from.
SLICE_LATENCY_METRIC = "fleet.slice.cycles"
JOB_LATENCY_METRIC = "fleet.job.cycles"


def record_to_wire(record: TraceRecord) -> Dict:
    """One bus record (carrying a ``trace`` arg) -> wire dict."""
    args = dict(record.args)
    trace = args.pop("trace", "")
    wire = {"trace": trace, "name": record.name, "cat": record.category,
            "ph": record.phase, "ts": record.cycle,
            "instret": record.instret}
    if record.phase == PH_COMPLETE:
        wire["dur"] = record.dur
    if args:
        wire["args"] = args
    return wire


class WorkerSpanRecorder:
    """Bind fleet trace contexts into one worker's local trace bus."""

    def __init__(self, worker_index: int,
                 bus: Optional[TraceBus] = None,
                 registry: Optional[MetricsRegistry] = None,
                 capacity: int = 65536) -> None:
        self.worker_index = worker_index
        self.alloc = SpanAllocator(worker_site(worker_index))
        self.bus = bus if bus is not None else TraceBus(capacity=capacity)
        self.registry = registry if registry is not None \
            else global_registry()
        self.bus.bind_metrics(self.registry)
        self.bus.enabled = True
        self._slice_hist = self.registry.histogram(
            SLICE_LATENCY_METRIC, buckets=LATENCY_BUCKETS,
            help="one exec slice, simulated cycles")
        self._job_hist = self.registry.histogram(
            JOB_LATENCY_METRIC, buckets=LATENCY_BUCKETS,
            help="one whole job on this worker, simulated cycles")
        #: Everything below this bus sequence number has been shipped.
        self._drained = 0
        #: The running job's span context (parent of slice spans).
        self.job_ctx: Optional[TraceContext] = None
        self._job_start_cycle = 0
        self._job_id: Optional[str] = None
        #: The mux client's context (parent of RSP service spans).
        self.rsp_ctx: Optional[TraceContext] = None

    # -- clocks --------------------------------------------------------------

    @staticmethod
    def clock(machine) -> int:
        if machine is None:
            return 0
        cycle = machine.cpu.cycle_count
        return max(cycle, machine.queue.now)

    # -- job lifecycle -------------------------------------------------------

    def start_job(self, encoded: str, job_id: str, machine=None) -> None:
        """Open the worker-side job span under the supervisor's span."""
        parent = TraceContext.decode(encoded)
        self.job_ctx = self.alloc.child(parent)
        self._job_id = job_id
        self._job_start_cycle = self.clock(machine)
        self.bus.instant(
            CAT_FLEET, "job-start", self._job_start_cycle,
            args={"trace": self.job_ctx.encode(), "job": job_id,
                  "worker": self.worker_index})

    def note_slice(self, index: int, start_cycle: int, end_cycle: int,
                   instret: int = 0) -> None:
        """One executed slice: a complete span + a latency observation
        carrying the trace id as its exemplar."""
        if self.job_ctx is None:
            return
        ctx = self.alloc.child(self.job_ctx)
        dur = max(0, end_cycle - start_cycle)
        self.bus.complete(
            CAT_FLEET, "slice", start_cycle, dur, instret,
            args={"trace": ctx.encode(), "slice": index,
                  "worker": self.worker_index})
        self._slice_hist.observe(dur, exemplar=ctx.encode())

    def finish_job(self, ok: bool, machine=None) -> None:
        """Close the job span (a complete span over the whole job)."""
        if self.job_ctx is None:
            return
        end = self.clock(machine)
        dur = max(0, end - self._job_start_cycle)
        self.bus.complete(
            CAT_FLEET, "job-run", self._job_start_cycle, dur,
            args={"trace": self.job_ctx.encode(), "job": self._job_id,
                  "worker": self.worker_index, "ok": int(ok)})
        self._job_hist.observe(dur, exemplar=self.job_ctx.encode())
        self.job_ctx = None
        self._job_id = None

    # -- RSP servicing -------------------------------------------------------

    def bind_rsp(self, encoded: str) -> None:
        """Adopt the mux client's context for RSP service spans."""
        parent = TraceContext.decode(encoded)
        self.rsp_ctx = self.alloc.child(parent)

    def note_rsp(self, direction: str, nbytes: int, machine=None) -> None:
        if self.rsp_ctx is None:
            return
        ctx = self.alloc.child(self.rsp_ctx)
        self.bus.instant(
            CAT_FLEET, f"rsp-{direction}", self.clock(machine),
            args={"trace": ctx.encode(), "bytes": nbytes,
                  "worker": self.worker_index})

    # -- watchdog ------------------------------------------------------------

    def note_watchdog(self, cycle: int, src: str, dst: str,
                      reason: str) -> None:
        parent = self.job_ctx if self.job_ctx is not None \
            else self.rsp_ctx
        if parent is None:
            return
        ctx = self.alloc.child(parent)
        self.bus.instant(
            CAT_FLEET, "watchdog", cycle,
            args={"trace": ctx.encode(), "from": src, "to": dst,
                  "reason": reason, "worker": self.worker_index})

    # -- shipping ------------------------------------------------------------

    def drain(self) -> List[Dict]:
        """Wire dicts for every span not yet shipped (may be empty)."""
        batch = [record_to_wire(record) for record in self.bus
                 if record.seq >= self._drained
                 and record.phase in (PH_COMPLETE, PH_INSTANT)]
        self._drained = self.bus.total_recorded
        return batch
