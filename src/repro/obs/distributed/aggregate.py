"""Cross-worker metric aggregation.

Each fleet worker ships its whole registry snapshot on every heartbeat
(and a final one with the job result).  The
:class:`MetricsAggregator` keeps the latest snapshot per worker and
merges them into one *fleet view*:

* **counters and gauges** of the same name are summed across workers;
* **histograms** are merged *bucket-wise*: same fixed boundaries (the
  registry enforces fixed buckets precisely so this is sound), counts
  added per bucket, ``count``/``sum``/``overflow`` added, ``min`` /
  ``max`` folded.  Exemplars merge by taking, per bucket, the
  lexicographically smallest exemplar across workers — a deterministic
  choice no matter what order snapshots arrived in.

Percentiles are derived from merged buckets the Prometheus way:
:meth:`MetricsAggregator.percentile` walks the cumulative counts and
reports the upper bound of the bucket where the target rank lands (the
conservative answer — the true value is ≤ the reported bound).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

Number = float


def merge_histograms(snaps: List[Dict]) -> Dict:
    """Bucket-wise merge of histogram snapshots (same boundaries).

    Raises ``ValueError`` when the bucket sets disagree — merging
    mismatched boundaries would silently misreport percentiles.
    """
    if not snaps:
        raise ValueError("nothing to merge")
    keys = list(snaps[0]["buckets"])
    merged = {
        "type": "histogram",
        "count": 0,
        "sum": 0,
        "min": None,
        "max": None,
        "buckets": {key: 0 for key in keys},
        "overflow": 0,
    }
    exemplars: Dict[str, str] = {}
    for snap in snaps:
        if list(snap["buckets"]) != keys:
            raise ValueError(
                f"histogram bucket mismatch: {keys} vs "
                f"{list(snap['buckets'])}")
        merged["count"] += snap["count"]
        merged["sum"] += snap["sum"]
        merged["overflow"] += snap["overflow"]
        for key in keys:
            merged["buckets"][key] += snap["buckets"][key]
        if snap["min"] is not None:
            merged["min"] = snap["min"] if merged["min"] is None \
                else min(merged["min"], snap["min"])
        if snap["max"] is not None:
            merged["max"] = snap["max"] if merged["max"] is None \
                else max(merged["max"], snap["max"])
        for key, exemplar in snap.get("exemplars", {}).items():
            held = exemplars.get(key)
            if held is None or exemplar < held:
                exemplars[key] = exemplar
    if exemplars:
        merged["exemplars"] = dict(sorted(exemplars.items()))
    return merged


def histogram_percentile(snap: Dict, q: Number) -> Optional[Number]:
    """The q-th percentile (0..100) from a merged histogram snapshot.

    Returns the upper bound of the bucket holding the target rank;
    ranks landing in the overflow bucket report the observed ``max``.
    ``None`` when the histogram is empty.
    """
    if not 0 <= q <= 100:
        raise ValueError(f"percentile must be in [0, 100], got {q}")
    total = snap["count"]
    if total == 0:
        return None
    target = q / 100.0 * total
    cumulative = 0
    for boundary, count in snap["buckets"].items():
        cumulative += count
        if cumulative >= target:
            return float(boundary)
    return snap["max"]


class MetricsAggregator:
    """Latest-snapshot-per-worker store with fleet-level merging."""

    def __init__(self) -> None:
        #: worker index -> its most recent registry snapshot.
        self._snapshots: Dict[int, Dict] = {}

    def update(self, worker_index: int, snapshot: Dict) -> None:
        """Adopt a worker's newest registry snapshot (replaces prior)."""
        if isinstance(snapshot, dict):
            self._snapshots[worker_index] = snapshot

    def forget(self, worker_index: int) -> None:
        """Drop a worker's snapshot (it left the fleet for good)."""
        self._snapshots.pop(worker_index, None)

    def workers(self) -> List[int]:
        return sorted(self._snapshots)

    # -- merging -------------------------------------------------------------

    def fleet(self) -> Dict:
        """Every metric name merged across workers, sorted by name."""
        by_name: Dict[str, List[Dict]] = {}
        for worker_index in sorted(self._snapshots):
            for name, snap in self._snapshots[worker_index].items():
                if isinstance(snap, dict) and "type" in snap:
                    by_name.setdefault(name, []).append(snap)
        merged: Dict[str, Dict] = {}
        for name, snaps in sorted(by_name.items()):
            kinds = {snap["type"] for snap in snaps}
            if len(kinds) != 1:
                # Same name, different types across workers: skip it
                # rather than fabricate a number.
                continue
            kind = kinds.pop()
            if kind in ("counter", "gauge"):
                merged[name] = {
                    "type": kind,
                    "value": sum(snap["value"] for snap in snaps),
                    "workers": len(snaps),
                }
            elif kind == "histogram":
                try:
                    entry = merge_histograms(snaps)
                except ValueError:
                    continue
                entry["workers"] = len(snaps)
                merged[name] = entry
        return merged

    def histogram(self, name: str) -> Optional[Dict]:
        """The merged histogram of ``name``, or None."""
        entry = self.fleet().get(name)
        if entry is None or entry.get("type") != "histogram":
            return None
        return entry

    def percentile(self, name: str, q: Number) -> Optional[Number]:
        """Fleet-wide percentile of histogram ``name`` (None if absent)."""
        entry = self.histogram(name)
        if entry is None:
            return None
        return histogram_percentile(entry, q)

    def percentiles(self, name: str,
                    qs: Iterable[Number] = (50, 95, 99)
                    ) -> Dict[str, Optional[Number]]:
        entry = self.histogram(name)
        if entry is None:
            return {f"p{q:g}": None for q in qs}
        return {f"p{q:g}": histogram_percentile(entry, q) for q in qs}

    def value(self, name: str) -> Optional[Number]:
        """Fleet-summed value of a counter/gauge ``name``."""
        entry = self.fleet().get(name)
        if entry is None or entry.get("type") == "histogram":
            return None
        return entry["value"]
