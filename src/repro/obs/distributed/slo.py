"""Fleet SLOs with multi-window burn-rate alerting.

An :class:`SloSpec` states an objective over a stream of good/bad
events — "99% of slices complete within the latency target", "95% of
jobs succeed".  Every fleet signal reduces to such a stream:

=====================  ==================================================
SLO                    good / bad event
=====================  ==================================================
``job-success``        a job completing ok / failing (retry or dead)
``slice-latency``      an exec slice within / over the cycle target
``heartbeat-fresh``    a live worker seen fresh / stale at a poll
``resume-success``     a journal resume that worked / was abandoned
=====================  ==================================================

Alerting follows the multi-window burn-rate recipe: with error budget
``1 - objective``, the *burn rate* is the observed error ratio divided
by the budget (1.0 = exactly spending the budget).  An alert fires
only when **both** the long window and the short window burn above the
threshold — the long window gives significance, the short window
confirms the problem is still happening — and resolves when the short
window recovers.  State transitions are delivered to an ``emit``
callback (the fleet wires it to the span collector and the trace bus)
and mirrored as ``fleet.slo.*`` metrics.

The evaluator never acts on the fleet by itself: it is advisory.  The
supervisor may consult :meth:`SloEvaluator.advisory_degrade` behind an
opt-in flag; the default fleet configuration only observes.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, List, Optional, Tuple

#: Default slice-latency target (simulated cycles) for default_slos().
DEFAULT_SLICE_TARGET_CYCLES = 200_000


@dataclass(frozen=True)
class SloSpec:
    """One objective over a good/bad event stream."""

    name: str
    objective: float
    short_window: float
    long_window: float
    burn_threshold: float = 4.0
    description: str = ""

    def __post_init__(self) -> None:
        if not 0.0 < self.objective < 1.0:
            raise ValueError(
                f"slo {self.name!r}: objective must be in (0, 1), "
                f"got {self.objective}")
        if self.short_window <= 0 or self.long_window <= 0:
            raise ValueError(f"slo {self.name!r}: windows must be > 0")
        if self.short_window > self.long_window:
            raise ValueError(
                f"slo {self.name!r}: short window {self.short_window} "
                f"exceeds long window {self.long_window}")
        if self.burn_threshold <= 0:
            raise ValueError(f"slo {self.name!r}: burn threshold "
                             f"must be > 0")

    @property
    def budget(self) -> float:
        """The error budget: tolerable bad fraction."""
        return 1.0 - self.objective


@dataclass(frozen=True)
class SloAlert:
    """One alert state transition ("firing" or "resolved")."""

    slo: str
    state: str
    t: float
    short_burn: float
    long_burn: float


@dataclass
class _Window:
    """Timestamped good/bad samples, pruned to the long window."""

    samples: Deque[Tuple[float, int, int]] = field(default_factory=deque)

    def record(self, t: float, good: int, bad: int) -> None:
        self.samples.append((t, good, bad))

    def prune(self, horizon: float) -> None:
        while self.samples and self.samples[0][0] < horizon:
            self.samples.popleft()

    def ratio(self, now: float, window: float) -> Optional[float]:
        """Bad fraction over [now - window, now]; None with no data."""
        cutoff = now - window
        good = bad = 0
        for t, g, b in reversed(self.samples):
            if t < cutoff:
                break
            good += g
            bad += b
        total = good + bad
        if total == 0:
            return None
        return bad / total


def default_slos(slice_target_cycles: int = DEFAULT_SLICE_TARGET_CYCLES,
                 short_window: float = 2.0,
                 long_window: float = 10.0) -> List[SloSpec]:
    """The fleet's stock objectives (windows in supervisor seconds)."""
    return [
        SloSpec("job-success", objective=0.90,
                short_window=short_window, long_window=long_window,
                burn_threshold=2.0,
                description="jobs complete without retry or dead-letter"),
        SloSpec("slice-latency", objective=0.95,
                short_window=short_window, long_window=long_window,
                burn_threshold=4.0,
                description=f"exec slices within "
                            f"{slice_target_cycles} cycles"),
        SloSpec("heartbeat-fresh", objective=0.95,
                short_window=short_window, long_window=long_window,
                burn_threshold=4.0,
                description="live workers heartbeat within the deadline"),
        SloSpec("resume-success", objective=0.80,
                short_window=short_window, long_window=long_window,
                burn_threshold=2.0,
                description="journal resumes reconstruct the job"),
    ]


class SloEvaluator:
    """Sliding-window burn-rate evaluation over named SLOs."""

    def __init__(self, specs: List[SloSpec],
                 registry=None,
                 emit: Optional[Callable[[str, Dict], None]] = None
                 ) -> None:
        names = [spec.name for spec in specs]
        if len(names) != len(set(names)):
            raise ValueError(f"duplicate slo names in {names}")
        self.specs: Dict[str, SloSpec] = {spec.name: spec
                                          for spec in specs}
        self._windows: Dict[str, _Window] = {name: _Window()
                                             for name in self.specs}
        self.firing: Dict[str, bool] = {name: False
                                        for name in self.specs}
        self.alerts: List[SloAlert] = []
        self._registry = registry
        self._emit = emit
        self._fired_counter = None

    # -- ingestion -----------------------------------------------------------

    def record(self, name: str, good: int = 0, bad: int = 0,
               t: float = 0.0) -> None:
        """Feed good/bad events into one SLO's window (unknown names
        are ignored so call sites need no spec knowledge)."""
        window = self._windows.get(name)
        if window is None or (good == 0 and bad == 0):
            return
        window.record(t, good, bad)
        window.prune(t - self.specs[name].long_window)

    # -- evaluation ----------------------------------------------------------

    def burn_rates(self, name: str, now: float
                   ) -> Tuple[Optional[float], Optional[float]]:
        """(short, long) burn rates of one SLO at ``now``."""
        spec = self.specs[name]
        window = self._windows[name]
        rates = []
        for span in (spec.short_window, spec.long_window):
            ratio = window.ratio(now, span)
            rates.append(None if ratio is None else ratio / spec.budget)
        return rates[0], rates[1]

    def evaluate(self, now: float) -> List[SloAlert]:
        """Advance alert state; returns the transitions made *now*."""
        transitions: List[SloAlert] = []
        for name, spec in self.specs.items():
            short, long_ = self.burn_rates(name, now)
            should_fire = (short is not None and long_ is not None
                           and short >= spec.burn_threshold
                           and long_ >= spec.burn_threshold)
            should_resolve = self.firing[name] and (
                short is None or short < spec.burn_threshold)
            if should_fire and not self.firing[name]:
                self.firing[name] = True
                transitions.append(SloAlert(
                    name, "firing", now, short, long_))
            elif should_resolve:
                self.firing[name] = False
                transitions.append(SloAlert(
                    name, "resolved", now,
                    0.0 if short is None else short,
                    0.0 if long_ is None else long_))
            self._publish_gauges(name, short, long_)
        for alert in transitions:
            self._announce(alert)
        self.alerts.extend(transitions)
        return transitions

    def advisory_degrade(self) -> bool:
        """True when any SLO is currently burning (advisory only)."""
        return any(self.firing.values())

    # -- reporting -----------------------------------------------------------

    def status(self, now: float) -> Dict:
        """JSON-ready SLO panel for the dashboard / control port."""
        panel = {}
        for name, spec in sorted(self.specs.items()):
            short, long_ = self.burn_rates(name, now)
            panel[name] = {
                "objective": spec.objective,
                "description": spec.description,
                "burn_short": short,
                "burn_long": long_,
                "threshold": spec.burn_threshold,
                "firing": self.firing[name],
            }
        return panel

    # -- plumbing ------------------------------------------------------------

    def _publish_gauges(self, name: str, short: Optional[float],
                        long_: Optional[float]) -> None:
        if self._registry is None:
            return
        prefix = f"fleet.slo.{name}"
        if short is not None:
            self._registry.gauge(f"{prefix}.burn_short").set(
                round(short, 6))
        if long_ is not None:
            self._registry.gauge(f"{prefix}.burn_long").set(
                round(long_, 6))
        self._registry.gauge(f"{prefix}.firing").set(
            int(self.firing[name]))

    def _announce(self, alert: SloAlert) -> None:
        if self._registry is not None and alert.state == "firing":
            if self._fired_counter is None:
                self._fired_counter = self._registry.counter(
                    "fleet.slo.alerts_fired",
                    help="slo alert firing transitions")
            self._fired_counter.inc()
        if self._emit is not None:
            self._emit(f"slo-{alert.state}", {
                "slo": alert.slo,
                "burn_short": round(alert.short_burn, 6),
                "burn_long": round(alert.long_burn, 6),
            })
