"""Fleet-wide distributed observability.

Three pillars over the multi-process fleet (see
:mod:`repro.fleet.supervisor`):

* **distributed tracing** — :mod:`~repro.obs.distributed.context`
  mints causal identity at job submission; :mod:`~repro.obs
  .distributed.spans` records worker-side spans against it;
  :mod:`~repro.obs.distributed.collector` merges everything on the
  supervisor into one Perfetto-loadable multi-process timeline;
* **metric aggregation** — :mod:`~repro.obs.distributed.aggregate`
  merges per-worker registry snapshots (bucket-wise histogram merge,
  fleet percentiles, exemplars);
* **SLO burn-rate alerting** — :mod:`~repro.obs.distributed.slo`
  evaluates declarative objectives over sliding windows with
  multi-window burn-rate confirmation, observe-only by default.

:class:`~repro.obs.distributed.service.FleetObservability` is the
facade the supervisor drives.
"""

from repro.obs.distributed.aggregate import (MetricsAggregator,
                                             histogram_percentile,
                                             merge_histograms)
from repro.obs.distributed.collector import SpanCollector
from repro.obs.distributed.context import (ROOT_SPAN_ID, SUPERVISOR_SITE,
                                           SpanAllocator, TraceContext,
                                           mint_trace_id, trace_root,
                                           worker_site)
from repro.obs.distributed.scenario import record_fleet
from repro.obs.distributed.service import FleetObservability
from repro.obs.distributed.slo import (SloAlert, SloEvaluator, SloSpec,
                                       default_slos)
from repro.obs.distributed.spans import (JOB_LATENCY_METRIC,
                                         LATENCY_BUCKETS,
                                         SLICE_LATENCY_METRIC,
                                         WorkerSpanRecorder,
                                         record_to_wire)

__all__ = [
    "FleetObservability",
    "JOB_LATENCY_METRIC",
    "LATENCY_BUCKETS",
    "MetricsAggregator",
    "ROOT_SPAN_ID",
    "SLICE_LATENCY_METRIC",
    "SUPERVISOR_SITE",
    "SloAlert",
    "SloEvaluator",
    "SloSpec",
    "SpanAllocator",
    "SpanCollector",
    "TraceContext",
    "WorkerSpanRecorder",
    "default_slos",
    "histogram_percentile",
    "merge_histograms",
    "mint_trace_id",
    "record_fleet",
    "record_to_wire",
    "trace_root",
    "worker_site",
]
