"""FleetObservability: the supervisor's one observability object.

Composes the three distributed-observability pillars behind a single
facade the fleet control plane calls into:

* the :class:`~repro.obs.distributed.collector.SpanCollector`
  (distributed tracing) — fed by the ``on_*`` lifecycle hooks on the
  supervisor side and :meth:`ingest_spans` on the worker side.  Span
  collection is gated by the ``trace`` flag (default off): a fleet
  with tracing disabled makes *zero* collector calls, so every
  pre-existing golden artifact is byte-identical;
* the :class:`~repro.obs.distributed.aggregate.MetricsAggregator`
  (cross-worker aggregation) — always on; it only stores snapshots the
  workers already ship on heartbeats;
* the :class:`~repro.obs.distributed.slo.SloEvaluator` (burn-rate
  alerting) — always evaluating (throttled to ``slo_interval``),
  never acting: the supervisor consults :meth:`advisory_degrade`
  only when ``FleetConfig.slo_advisory`` opts in.

Supervisor span ids are minted *per trace* (root id
:data:`~repro.obs.distributed.context.ROOT_SPAN_ID`, children counted
up from it): span ids only need to be unique within one trace, and a
per-trace sequence means the order results arrive in can never
perturb another trace's span tree — which is what keeps the golden
fleet export byte-identical across runs.  Worker span ids live in
their own high-bit site partitions, disjoint by construction.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.obs.distributed.aggregate import MetricsAggregator
from repro.obs.distributed.collector import SpanCollector
from repro.obs.distributed.context import (ROOT_SPAN_ID, TraceContext,
                                           mint_trace_id, trace_root)
from repro.obs.distributed.slo import (DEFAULT_SLICE_TARGET_CYCLES,
                                       SloAlert, SloEvaluator, SloSpec,
                                       default_slos)
from repro.obs.distributed.spans import (JOB_LATENCY_METRIC,
                                         SLICE_LATENCY_METRIC)
from repro.obs.metrics import global_registry


class FleetObservability:
    """Tracing + aggregation + SLOs for one supervised fleet."""

    def __init__(self, trace: bool = False,
                 slos: Optional[List[SloSpec]] = None,
                 registry=None,
                 slice_target_cycles: int = DEFAULT_SLICE_TARGET_CYCLES,
                 slo_interval: float = 0.25) -> None:
        self.trace = bool(trace)
        self.registry = registry if registry is not None \
            else global_registry()
        self.collector = SpanCollector()
        self.aggregator = MetricsAggregator()
        specs = slos if slos is not None \
            else default_slos(slice_target_cycles)
        self.evaluator = SloEvaluator(specs, registry=self.registry,
                                      emit=self._on_alert)
        self.slice_target_cycles = slice_target_cycles
        self.slo_interval = slo_interval
        self._last_eval: Optional[float] = None
        #: Per-trace supervisor span-id counters.  Span ids only need
        #: to be unique within their trace, so counting per trace keeps
        #: one trace's ids independent of event order on every other —
        #: result-arrival order cannot perturb a golden span tree.
        self._trace_seq: Dict[int, int] = {}
        #: Root context of fleet-level (not per-job) events.
        self._fleet_root = trace_root(mint_trace_id("fleet-root"))

    @property
    def fleet_trace_id(self) -> int:
        """Trace id of fleet-level (not per-job) supervisor events."""
        return self._fleet_root.trace_id

    # -- span plumbing -------------------------------------------------------

    def _child(self, parent: TraceContext) -> TraceContext:
        """Next supervisor span of ``parent``'s trace (site-0 ids,
        disjoint from the workers' high-bit site partitions)."""
        seq = self._trace_seq.get(parent.trace_id, ROOT_SPAN_ID) + 1
        self._trace_seq[parent.trace_id] = seq
        return parent.child(seq)

    def _event(self, ctx: Optional[TraceContext], name: str,
               args: Optional[Dict] = None, cat: str = "fleet") -> None:
        if not self.trace or ctx is None:
            return
        self.collector.supervisor_event(ctx, name, args, cat=cat)

    def _fleet_ctx(self) -> Optional[TraceContext]:
        """A fresh child of the fleet-level root trace."""
        if not self.trace:
            return None
        return self._child(self._fleet_root)

    # -- supervisor lifecycle hooks ------------------------------------------

    def on_enqueue(self, record) -> None:
        self._event(record.trace, "enqueue",
                    {"job": record.id, "kind": record.job.kind,
                     "priority": record.job.priority})

    def on_dispatch(self, record, worker: int,
                    resume: bool = False) -> Optional[str]:
        """Returns the encoded dispatch context the worker parents its
        job span under (None when tracing is off)."""
        if not self.trace or record.trace is None:
            return None
        ctx = self._child(record.trace)
        self._event(ctx, "resume-dispatch" if resume else "dispatch",
                    {"job": record.id, "worker": worker,
                     "attempt": record.attempts,
                     "resume": record.resumes})
        return ctx.encode()

    def on_complete(self, record, now: float) -> None:
        if record.trace is not None:
            self._event(self._child(record.trace), "done",
                        {"job": record.id})
        self.evaluator.record("job-success", good=1, t=now)
        if record.resumes > 0:
            self.evaluator.record("resume-success", good=1, t=now)

    def on_failure(self, record, error: str, status: str,
                   now: float) -> None:
        """One failed attempt (retry scheduled or dead-lettered)."""
        if record.trace is not None:
            self._event(self._child(record.trace),
                        "dead-letter" if status == "dead-letter"
                        else "retry",
                        {"job": record.id, "error": error,
                         "attempt": record.attempts})
        self.evaluator.record("job-success", bad=1, t=now)
        if status == "dead-letter" and record.resumes > 0:
            self.evaluator.record("resume-success", bad=1, t=now)

    def on_resume_planned(self, record, worker: int,
                          reason: str) -> None:
        if record.trace is not None:
            self._event(self._child(record.trace), "resume-plan",
                        {"job": record.id, "worker": worker,
                         "resume": record.resumes, "reason": reason})

    def on_rsp_attach(self, worker: int,
                      client_ordinal: int) -> Optional[str]:
        """A mux client landed on ``worker``; mint its trace root and
        return the encoded context its RSP service spans parent under
        (None when tracing is off)."""
        if not self.trace:
            return None
        ctx = trace_root(
            mint_trace_id(f"rsp-client-{client_ordinal}"))
        self._event(ctx, "rsp-attach",
                    {"worker": worker, "client": client_ordinal})
        return ctx.encode()

    def on_worker_death(self, worker: int, reason: str) -> None:
        self._event(self._fleet_ctx(), "worker-death",
                    {"worker": worker, "reason": reason})

    def on_restart(self, worker: int, restarts: int) -> None:
        self._event(self._fleet_ctx(), "worker-restart",
                    {"worker": worker, "restarts": restarts})

    def on_transition(self, src: str, dst: str, reason: str) -> None:
        self._event(self._fleet_ctx(), "ladder",
                    {"from": src, "to": dst, "reason": reason})

    # -- worker-side intake --------------------------------------------------

    def ingest_spans(self, worker: int, batch: List[Dict],
                     now: float = 0.0) -> None:
        """Span batch off a heartbeat/result; also feeds the
        slice-latency SLO (a slice is good iff within the target)."""
        if not self.trace or not batch:
            return
        self.collector.ingest(worker, batch)
        for span in batch:
            if isinstance(span, dict) and span.get("name") == "slice" \
                    and isinstance(span.get("dur"), int):
                good = span["dur"] <= self.slice_target_cycles
                self.evaluator.record("slice-latency", good=int(good),
                                      bad=int(not good), t=now)

    def update_metrics(self, worker: int, snapshot: Dict) -> None:
        self.aggregator.update(worker, snapshot)

    def heartbeat_check(self, worker: int, fresh: bool,
                        now: float) -> None:
        self.evaluator.record("heartbeat-fresh", good=int(fresh),
                              bad=int(not fresh), t=now)

    # -- evaluation ----------------------------------------------------------

    def poll(self, now: float) -> List[SloAlert]:
        """Throttled SLO evaluation; returns transitions made now."""
        if self._last_eval is not None \
                and now - self._last_eval < self.slo_interval:
            return []
        self._last_eval = now
        return self.evaluator.evaluate(now)

    def advisory_degrade(self) -> bool:
        return self.evaluator.advisory_degrade()

    def _on_alert(self, name: str, args: Dict) -> None:
        """SLO transition -> a span on the fleet-level trace."""
        self._event(self._fleet_ctx(), name, args, cat="slo")

    # -- reporting -----------------------------------------------------------

    def slo_status(self, now: float) -> Dict:
        return self.evaluator.status(now)

    def fleet_metrics(self) -> Dict:
        return self.aggregator.fleet()

    def percentile_summary(self) -> Dict:
        """The dashboard's latency panel (merged-histogram derived)."""
        return {
            SLICE_LATENCY_METRIC:
                self.aggregator.percentiles(SLICE_LATENCY_METRIC),
            JOB_LATENCY_METRIC:
                self.aggregator.percentiles(JOB_LATENCY_METRIC),
        }
