"""Trace and metrics exporters.

Three output formats, all dependency-free:

* **Chrome trace_event JSON** (:func:`chrome_trace` /
  :func:`write_chrome_trace`) — the object form with a ``traceEvents``
  array, loadable in Perfetto (https://ui.perfetto.dev) and Chrome's
  ``about:tracing``.  The ``ts`` field is the **simulated cycle**
  count, not microseconds; since the modelled CPU is 1.26 GHz the
  numbers read as "cycles" on the timeline and, critically, they are
  deterministic — the golden-trace test depends on two runs producing
  byte-identical files.  Each event category gets its own named thread
  track.
* **collapsed-stack text** (:func:`collapsed_stacks`) — one
  ``frame;frame;frame count`` line per profiler sample site, the input
  format of flamegraph.pl / speedscope / inferno.
* **metrics JSON** (:func:`metrics_json`) — the registry snapshot.

:func:`validate_chrome_trace` is the schema gate CI runs against
recorded traces: structural checks only (required keys, known phases,
balanced B/E nesting per track), no external schema library.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional

from repro.obs.bus import (
    PH_BEGIN,
    PH_COMPLETE,
    PH_END,
    PH_INSTANT,
    TraceBus,
)

#: Category -> thread id of its Perfetto track (stable ordering).
TRACK_IDS = {
    "trap": 1,
    "irq": 2,
    "device": 3,
    "rsp": 4,
    "monitor": 5,
    "fault": 6,
    "watchdog": 7,
    "replay": 8,
    "profile": 9,
}
_PID = 1
_PHASES = (PH_BEGIN, PH_END, PH_INSTANT, PH_COMPLETE, "M")


def _track_id(category: str) -> int:
    return TRACK_IDS.get(category, 15)


def chrome_trace(bus: TraceBus, profiler=None, symbols=None,
                 registry=None, label: str = "repro") -> Dict:
    """The full trace document (a plain dict, ready for json.dump).

    Spans still open on the bus are closed virtually at the last
    event's cycle so viewers never see dangling ``B`` events.  When a
    profiler / registry is given, the symbolized profile and the
    metrics snapshot ride along as extra top-level keys (the
    trace_event object form permits them; viewers ignore them).
    """
    events: List[Dict] = []
    events.append({"ph": "M", "pid": _PID, "tid": 0, "ts": 0,
                   "name": "process_name",
                   "args": {"name": label}})
    for category, tid in sorted(TRACK_IDS.items(),
                                key=lambda item: item[1]):
        events.append({"ph": "M", "pid": _PID, "tid": tid, "ts": 0,
                       "name": "thread_name",
                       "args": {"name": category}})
    last_cycle = 0
    for record in bus:
        event = {
            "name": record.name,
            "cat": record.category,
            "ph": record.phase,
            "ts": record.cycle,
            "pid": _PID,
            "tid": _track_id(record.category),
        }
        args = dict(record.args)
        if record.pc:
            args["pc"] = f"{record.pc:#010x}"
            if symbols is not None:
                near = symbols.nearest(record.pc)
                if near is not None:
                    name, offset = near
                    args["sym"] = name if offset == 0 \
                        else f"{name}+{offset:#x}"
        args["instret"] = record.instret
        event["args"] = args
        if record.phase == PH_COMPLETE:
            event["dur"] = record.dur
        if record.phase == PH_INSTANT:
            event["s"] = "t"  # thread-scoped instant
        events.append(event)
        if record.cycle > last_cycle:
            last_cycle = record.cycle
    for name, category in reversed(bus.open_span_entries()):
        # Virtual close: the span was still open when we exported.
        events.append({"name": name, "cat": category, "ph": PH_END,
                       "ts": last_cycle, "pid": _PID,
                       "tid": _track_id(category),
                       "args": {"virtual-close": 1}})
    document: Dict = {
        "traceEvents": events,
        "displayTimeUnit": "ns",
        "otherData": {
            "clock": "simulated-cycles",
            "events_recorded": bus.total_recorded,
            "events_dropped": bus.dropped,
            "unbalanced_ends": bus.unbalanced_ends,
        },
    }
    if profiler is not None:
        document["guestProfile"] = {
            "stride": profiler.stride,
            "total_samples": profiler.total_samples,
            "cumulative": [
                {"symbol": name, "samples": count}
                for name, count in profiler.cumulative(symbols)],
            "flat": [
                {"pc": f"{pc:#010x}", "ring": ring, "reason": reason,
                 "samples": count}
                for pc, ring, reason, count in profiler.flat()],
        }
    if registry is not None:
        document["metrics"] = registry.snapshot()
    return document


def write_chrome_trace(path, bus: TraceBus, profiler=None,
                       symbols=None, registry=None,
                       label: str = "repro") -> Path:
    """Write the trace document; byte-stable for identical inputs."""
    path = Path(path)
    document = chrome_trace(bus, profiler=profiler, symbols=symbols,
                            registry=registry, label=label)
    with open(path, "w") as handle:
        json.dump(document, handle, indent=1, sort_keys=True)
        handle.write("\n")
    return path


def collapsed_stacks(profiler, symbols=None) -> str:
    """Flamegraph collapsed-stack text (newline-terminated lines)."""
    lines = profiler.collapsed_stacks(symbols)
    return "".join(line + "\n" for line in lines)


def write_collapsed(path, profiler, symbols=None) -> Path:
    path = Path(path)
    path.write_text(collapsed_stacks(profiler, symbols))
    return path


def metrics_json(registry) -> Dict:
    """The registry snapshot wrapped with a format marker."""
    return {"format": "repro-metrics-v1",
            "metrics": registry.snapshot()}


def write_metrics(path, registry) -> Path:
    path = Path(path)
    with open(path, "w") as handle:
        json.dump(metrics_json(registry), handle, indent=1,
                  sort_keys=True)
        handle.write("\n")
    return path


def validate_chrome_trace(document) -> List[str]:
    """Structural schema check; returns problems (empty = valid).

    Checks the properties Perfetto's importer actually depends on:
    ``traceEvents`` is a list; every event has name/ph/ts/pid/tid with
    the right types; phases are known; ``X`` events carry a
    non-negative ``dur``; ``B``/``E`` nest and balance per (pid, tid)
    track.
    """
    problems: List[str] = []
    if not isinstance(document, dict):
        return [f"document is {type(document).__name__}, not an object"]
    events = document.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents missing or not a list"]
    open_stacks: Dict[tuple, List[str]] = {}
    for index, event in enumerate(events):
        where = f"traceEvents[{index}]"
        if not isinstance(event, dict):
            problems.append(f"{where}: not an object")
            continue
        for key, kinds in (("name", str), ("ph", str),
                           ("ts", (int, float)), ("pid", int),
                           ("tid", int)):
            if not isinstance(event.get(key), kinds):
                problems.append(f"{where}: bad or missing {key!r}")
        phase = event.get("ph")
        if phase not in _PHASES:
            problems.append(f"{where}: unknown phase {phase!r}")
            continue
        if phase == PH_COMPLETE:
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                problems.append(f"{where}: X event needs dur >= 0")
        track = (event.get("pid"), event.get("tid"))
        if phase == PH_BEGIN:
            open_stacks.setdefault(track, []).append(event.get("name"))
        elif phase == PH_END:
            stack = open_stacks.get(track)
            if not stack:
                problems.append(f"{where}: E without matching B "
                                f"on track {track}")
            else:
                stack.pop()
    for track, stack in sorted(open_stacks.items()):
        if stack:
            problems.append(
                f"track {track}: {len(stack)} unclosed B event(s): "
                f"{stack}")
    return problems
