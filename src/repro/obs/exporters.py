"""Trace and metrics exporters.

Three output formats, all dependency-free:

* **Chrome trace_event JSON** (:func:`chrome_trace` /
  :func:`write_chrome_trace`) — the object form with a ``traceEvents``
  array, loadable in Perfetto (https://ui.perfetto.dev) and Chrome's
  ``about:tracing``.  The ``ts`` field is the **simulated cycle**
  count, not microseconds; since the modelled CPU is 1.26 GHz the
  numbers read as "cycles" on the timeline and, critically, they are
  deterministic — the golden-trace test depends on two runs producing
  byte-identical files.  Each event category gets its own named thread
  track.
* **collapsed-stack text** (:func:`collapsed_stacks`) — one
  ``frame;frame;frame count`` line per profiler sample site, the input
  format of flamegraph.pl / speedscope / inferno.
* **metrics JSON** (:func:`metrics_json`) — the registry snapshot.

:func:`validate_chrome_trace` is the schema gate CI runs against
recorded traces: structural checks only (required keys, known phases,
balanced B/E nesting per track), no external schema library.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional

from repro.obs.bus import (
    PH_BEGIN,
    PH_COMPLETE,
    PH_END,
    PH_INSTANT,
    TraceBus,
)

#: Category -> thread id of its Perfetto track (stable ordering).
TRACK_IDS = {
    "trap": 1,
    "irq": 2,
    "device": 3,
    "rsp": 4,
    "monitor": 5,
    "fault": 6,
    "watchdog": 7,
    "replay": 8,
    "profile": 9,
}
_PID = 1
_PHASES = (PH_BEGIN, PH_END, PH_INSTANT, PH_COMPLETE, "M")


def _track_id(category: str) -> int:
    return TRACK_IDS.get(category, 15)


def chrome_trace(bus: TraceBus, profiler=None, symbols=None,
                 registry=None, label: str = "repro") -> Dict:
    """The full trace document (a plain dict, ready for json.dump).

    Spans still open on the bus are closed virtually at the last
    event's cycle so viewers never see dangling ``B`` events.  When a
    profiler / registry is given, the symbolized profile and the
    metrics snapshot ride along as extra top-level keys (the
    trace_event object form permits them; viewers ignore them).
    """
    events: List[Dict] = []
    events.append({"ph": "M", "pid": _PID, "tid": 0, "ts": 0,
                   "name": "process_name",
                   "args": {"name": label}})
    for category, tid in sorted(TRACK_IDS.items(),
                                key=lambda item: item[1]):
        events.append({"ph": "M", "pid": _PID, "tid": tid, "ts": 0,
                       "name": "thread_name",
                       "args": {"name": category}})
    last_cycle = 0
    #: Per-track stacks of B names seen in the *retained* window, so a
    #: wrapped ring (whose oldest B events were evicted) never emits an
    #: E without its B — Perfetto rejects such traces.
    retained_open: Dict[int, List[str]] = {}
    orphan_ends = 0
    for record in bus:
        tid = _track_id(record.category)
        if record.phase == PH_BEGIN:
            retained_open.setdefault(tid, []).append(record.name)
        elif record.phase == PH_END:
            stack = retained_open.get(tid)
            if not stack or record.name not in stack:
                # Its B fell out of the ring: drop the E rather than
                # exporting an unbalanced track.
                orphan_ends += 1
                continue
            stack.reverse()
            stack.remove(record.name)
            stack.reverse()
        event = {
            "name": record.name,
            "cat": record.category,
            "ph": record.phase,
            "ts": record.cycle,
            "pid": _PID,
            "tid": tid,
        }
        args = dict(record.args)
        if record.pc:
            args["pc"] = f"{record.pc:#010x}"
            if symbols is not None:
                near = symbols.nearest(record.pc)
                if near is not None:
                    name, offset = near
                    args["sym"] = name if offset == 0 \
                        else f"{name}+{offset:#x}"
        args["instret"] = record.instret
        event["args"] = args
        if record.phase == PH_COMPLETE:
            event["dur"] = record.dur
        if record.phase == PH_INSTANT:
            event["s"] = "t"  # thread-scoped instant
        events.append(event)
        if record.cycle > last_cycle:
            last_cycle = record.cycle
    for name, category in reversed(bus.open_span_entries()):
        # Virtual close: the span was still open when we exported.
        # Skip spans whose B was evicted by wraparound — closing them
        # would orphan the E the same way.
        tid = _track_id(category)
        stack = retained_open.get(tid)
        if not stack or name not in stack:
            orphan_ends += 1
            continue
        stack.reverse()
        stack.remove(name)
        stack.reverse()
        events.append({"name": name, "cat": category, "ph": PH_END,
                       "ts": last_cycle, "pid": _PID,
                       "tid": tid,
                       "args": {"virtual-close": 1}})
    document: Dict = {
        "traceEvents": events,
        "displayTimeUnit": "ns",
        "otherData": {
            "clock": "simulated-cycles",
            "events_recorded": bus.total_recorded,
            "events_dropped": bus.dropped,
            "unbalanced_ends": bus.unbalanced_ends,
        },
    }
    if orphan_ends:
        # Key present only when the ring actually wrapped mid-span, so
        # golden traces recorded without wraparound stay byte-stable.
        document["otherData"]["orphan_ends"] = orphan_ends
    if profiler is not None:
        document["guestProfile"] = {
            "stride": profiler.stride,
            "total_samples": profiler.total_samples,
            "cumulative": [
                {"symbol": name, "samples": count}
                for name, count in profiler.cumulative(symbols)],
            "flat": [
                {"pc": f"{pc:#010x}", "ring": ring, "reason": reason,
                 "samples": count}
                for pc, ring, reason, count in profiler.flat()],
        }
    if registry is not None:
        document["metrics"] = registry.snapshot()
    return document


def write_chrome_trace(path, bus: TraceBus, profiler=None,
                       symbols=None, registry=None,
                       label: str = "repro") -> Path:
    """Write the trace document; byte-stable for identical inputs."""
    path = Path(path)
    document = chrome_trace(bus, profiler=profiler, symbols=symbols,
                            registry=registry, label=label)
    with open(path, "w") as handle:
        json.dump(document, handle, indent=1, sort_keys=True)
        handle.write("\n")
    return path


#: Fleet export pid layout: the supervisor is process 1 (one thread
#: lane per trace); worker ``w`` is process ``10 + w``.
FLEET_SUPERVISOR_PID = 1
FLEET_WORKER_PID_BASE = 10


def fleet_chrome_trace(collector, aggregated=None, slo=None,
                       label: str = "fleet") -> Dict:
    """Multi-process trace document for one fleet run.

    ``collector`` is a :class:`~repro.obs.distributed.collector
    .SpanCollector`; the supervisor's per-trace logical-tick events
    land on process 1 with one named thread lane per trace (labelled
    by job id), and each worker's clock-aligned spans land on their
    own process.  One JSON file opens in Perfetto as the whole fleet.

    Events are emitted sorted by ``(pid, tid, ts, name, trace)`` so
    the document is byte-stable no matter what order heartbeats
    arrived in.  ``aggregated`` (the merged fleet metrics) and ``slo``
    (the SLO panel) ride along as extra top-level keys when given.
    """
    from repro.obs.distributed.context import TraceContext

    events: List[Dict] = []
    events.append({"ph": "M", "pid": FLEET_SUPERVISOR_PID, "tid": 0,
                   "ts": 0, "name": "process_name",
                   "args": {"name": f"{label}-supervisor"}})
    for trace_id, ordinal in sorted(collector.trace_order.items(),
                                    key=lambda item: item[1]):
        events.append({"ph": "M", "pid": FLEET_SUPERVISOR_PID,
                       "tid": ordinal + 1, "ts": 0,
                       "name": "thread_name",
                       "args": {"name": collector.label(trace_id)}})
    for worker_index in collector.worker_indices():
        pid = FLEET_WORKER_PID_BASE + worker_index
        events.append({"ph": "M", "pid": pid, "tid": 0, "ts": 0,
                       "name": "process_name",
                       "args": {"name": f"{label}-worker-"
                                        f"{worker_index}"}})
        events.append({"ph": "M", "pid": pid, "tid": 1, "ts": 0,
                       "name": "thread_name",
                       "args": {"name": "timeline"}})

    def _wire_to_event(wire: Dict, pid: int, tid: int) -> Dict:
        event = {"name": wire["name"], "cat": wire["cat"],
                 "ph": wire["ph"], "ts": wire["ts"], "pid": pid,
                 "tid": tid}
        args = dict(wire.get("args", {}))
        args["trace"] = wire["trace"]
        args["instret"] = wire.get("instret", 0)
        event["args"] = args
        if wire["ph"] == PH_COMPLETE:
            event["dur"] = wire.get("dur", 0)
        if wire["ph"] == PH_INSTANT:
            event["s"] = "t"
        return event

    body: List[Dict] = []
    for wire in collector.supervisor:
        ctx = TraceContext.decode(wire["trace"])
        tid = collector.trace_order[ctx.trace_id] + 1
        body.append(_wire_to_event(wire, FLEET_SUPERVISOR_PID, tid))
    for worker_index in collector.worker_indices():
        pid = FLEET_WORKER_PID_BASE + worker_index
        for wire in collector.worker_events(worker_index):
            body.append(_wire_to_event(wire, pid, 1))
    body.sort(key=lambda e: (e["pid"], e["tid"], e["ts"], e["name"],
                             e["args"]["trace"]))
    events.extend(body)

    document: Dict = {
        "traceEvents": events,
        "displayTimeUnit": "ns",
        "otherData": {
            "clock": "simulated-cycles (per-worker aligned)",
            "collector": collector.stats(),
        },
    }
    if aggregated is not None:
        document["fleetMetrics"] = aggregated
    if slo is not None:
        document["slo"] = slo
    return document


def write_fleet_trace(path, collector, aggregated=None, slo=None,
                      label: str = "fleet") -> Path:
    """Write the fleet trace document; byte-stable for equal inputs."""
    path = Path(path)
    document = fleet_chrome_trace(collector, aggregated=aggregated,
                                  slo=slo, label=label)
    with open(path, "w") as handle:
        json.dump(document, handle, indent=1, sort_keys=True)
        handle.write("\n")
    return path


def collapsed_stacks(profiler, symbols=None) -> str:
    """Flamegraph collapsed-stack text (newline-terminated lines)."""
    lines = profiler.collapsed_stacks(symbols)
    return "".join(line + "\n" for line in lines)


def write_collapsed(path, profiler, symbols=None) -> Path:
    path = Path(path)
    path.write_text(collapsed_stacks(profiler, symbols))
    return path


def export_stats_json(path, experiment: str, stats: Dict,
                      extra: Optional[Dict] = None) -> Path:
    """Write one collected stats dict as an experiment JSON document.

    The canonical writer behind the deprecated ``repro.perf.export``
    ``export_*`` adapters: pair it with a ``collect_*`` function from
    :mod:`repro.obs.metrics` (``export_stats_json(path, "interp-fast-
    path", collect_interp(cpu))``).  ``extra`` keys merge into the
    top-level document, preserving the legacy shapes.
    """
    path = Path(path)
    document: Dict = {"experiment": experiment, "stats": stats}
    if extra:
        document.update(extra)
    with open(path, "w") as handle:
        json.dump(document, handle, indent=2)
    return path


def metrics_json(registry) -> Dict:
    """The registry snapshot wrapped with a format marker."""
    return {"format": "repro-metrics-v1",
            "metrics": registry.snapshot()}


def write_metrics(path, registry) -> Path:
    path = Path(path)
    with open(path, "w") as handle:
        json.dump(metrics_json(registry), handle, indent=1,
                  sort_keys=True)
        handle.write("\n")
    return path


def validate_chrome_trace(document) -> List[str]:
    """Structural schema check; returns problems (empty = valid).

    Checks the properties Perfetto's importer actually depends on:
    ``traceEvents`` is a list; every event has name/ph/ts/pid/tid with
    the right types; phases are known; ``X`` events carry a
    non-negative ``dur``; ``B``/``E`` nest and balance per (pid, tid)
    track.
    """
    problems: List[str] = []
    if not isinstance(document, dict):
        return [f"document is {type(document).__name__}, not an object"]
    events = document.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents missing or not a list"]
    open_stacks: Dict[tuple, List[str]] = {}
    for index, event in enumerate(events):
        where = f"traceEvents[{index}]"
        if not isinstance(event, dict):
            problems.append(f"{where}: not an object")
            continue
        for key, kinds in (("name", str), ("ph", str),
                           ("ts", (int, float)), ("pid", int),
                           ("tid", int)):
            if not isinstance(event.get(key), kinds):
                problems.append(f"{where}: bad or missing {key!r}")
        phase = event.get("ph")
        if phase not in _PHASES:
            problems.append(f"{where}: unknown phase {phase!r}")
            continue
        if phase == PH_COMPLETE:
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                problems.append(f"{where}: X event needs dur >= 0")
        track = (event.get("pid"), event.get("tid"))
        if phase == PH_BEGIN:
            open_stacks.setdefault(track, []).append(event.get("name"))
        elif phase == PH_END:
            stack = open_stacks.get(track)
            if not stack:
                problems.append(f"{where}: E without matching B "
                                f"on track {track}")
            else:
                stack.pop()
    for track, stack in sorted(open_stacks.items()):
        if stack:
            problems.append(
                f"track {track}: {len(stack)} unclosed B event(s): "
                f"{stack}")
    return problems
