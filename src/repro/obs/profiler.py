"""Sampling guest-PC profiler.

Answers "where does the *guest* spend its instructions?" without any
guest cooperation — the monitor's vantage point, exactly the property
the paper leans on.  Every ``stride`` retired instructions the monitor
run loop records the guest PC, its current ring, and the most recent
trap reason (the last monitor trace event kind, threaded in by
whoever wires the profiler up — see ``LightweightVmm.attach_profiler``).

The cost contract: the monitor run loop pays **one integer compare
per instruction** (``instret >= next_sample``), nothing more.  When
the profiler is detached the compare is against :data:`NEVER` and can
never fire; the interpreter's own hot loop (``Cpu.run``) is untouched.

Sampling is deterministic: samples land on exact stride boundaries of
the retired-instruction counter (instret 0 excluded — ``stride, 2 *
stride, ...``), so two runs of a deterministic scenario produce the
same profile.

Reports come in two folds:

* **flat** — samples per exact (pc, ring, reason) site;
* **cumulative** — samples per containing symbol (via
  :class:`repro.debugger.symbols.SymbolTable.nearest`), which is what
  ``repro-trace top`` prints.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

#: A sample threshold no instret counter will ever reach.
NEVER = float("inf")


class GuestProfiler:
    """Guest PC + ring + trap-reason samples at an instruction stride."""

    def __init__(self, stride: int = 4096) -> None:
        if stride < 1:
            raise ValueError(f"profiler stride must be >= 1, "
                             f"got {stride}")
        self.stride = stride
        #: The next instret boundary to sample at; :data:`NEVER` while
        #: disabled so the run loop's compare can never fire.
        self.next_sample = NEVER
        self.enabled = False
        #: (pc, ring, reason) -> sample count.
        self.samples: Dict[Tuple[int, int, str], int] = {}
        self.total_samples = 0
        #: Kind of the last monitor trace event ("trap", "irq",
        #: "reflect", ...) or "run" when nothing trapped since the last
        #: sample.  Maintained by the wiring, not by the profiler.
        self.last_reason = "run"

    # -- control -------------------------------------------------------------

    def start(self, instret: int = 0) -> None:
        """Begin sampling; the first sample lands on the next stride
        boundary strictly after ``instret``."""
        self.enabled = True
        self.next_sample = self.next_boundary(instret)

    def stop(self) -> None:
        self.enabled = False
        self.next_sample = NEVER

    def reset(self) -> None:
        self.samples.clear()
        self.total_samples = 0
        self.last_reason = "run"

    def next_boundary(self, instret: int) -> int:
        """The first stride multiple strictly greater than ``instret``."""
        return (instret // self.stride + 1) * self.stride

    # -- sampling ------------------------------------------------------------

    def sample(self, cpu) -> float:
        """Record one sample; returns the next threshold.

        Called by the monitor run loop when ``cpu.instret`` crosses
        :attr:`next_sample`.  The run loop re-arms its local threshold
        from the return value so the steady-state cost stays one
        compare.
        """
        key = (cpu.pc, cpu.cpl, self.last_reason)
        self.samples[key] = self.samples.get(key, 0) + 1
        self.total_samples += 1
        self.last_reason = "run"
        self.next_sample = self.next_boundary(cpu.instret)
        return self.next_sample

    def note_reason(self, kind: str) -> None:
        """Record the latest trap reason (wired to the monitor trace)."""
        self.last_reason = kind

    # -- reporting -----------------------------------------------------------

    def flat(self) -> List[Tuple[int, int, str, int]]:
        """(pc, ring, reason, count) rows, hottest first.

        Ties break on (pc, ring, reason) so the order is deterministic.
        """
        rows = [(pc, ring, reason, count)
                for (pc, ring, reason), count in self.samples.items()]
        rows.sort(key=lambda row: (-row[3], row[0], row[1], row[2]))
        return rows

    def cumulative(self, symbols=None) -> List[Tuple[str, int]]:
        """(symbol, count) rows, hottest first.

        PCs below the first symbol (or with no table at all) fold into
        a hex bucket per PC so nothing silently disappears.
        """
        folded: Dict[str, int] = {}
        for (pc, _ring, _reason), count in self.samples.items():
            near = symbols.nearest(pc) if symbols is not None else None
            name = near[0] if near is not None else f"{pc:#010x}"
            folded[name] = folded.get(name, 0) + count
        rows = sorted(folded.items(),
                      key=lambda row: (-row[1], row[0]))
        return rows

    def collapsed_stacks(self, symbols=None) -> List[str]:
        """``ring;reason;symbol count`` lines (flamegraph collapsed
        format): one synthetic two-frame stack per sample site."""
        lines = []
        for pc, ring, reason, count in self.flat():
            near = symbols.nearest(pc) if symbols is not None else None
            if near is None:
                frame = f"{pc:#010x}"
            else:
                name, offset = near
                frame = name if offset == 0 else f"{name}+{offset:#x}"
            lines.append(f"ring{ring};{reason};{frame} {count}")
        return lines

    def report(self, symbols=None, limit: int = 20) -> str:
        """The ``repro-trace top`` table."""
        if not self.total_samples:
            return "(no samples)"
        lines = [f"guest profile: {self.total_samples} samples, "
                 f"stride {self.stride} instructions",
                 f"{'samples':>8s}  {'%':>6s}  hot spot"]
        for name, count in self.cumulative(symbols)[:limit]:
            share = 100.0 * count / self.total_samples
            lines.append(f"{count:8d}  {share:6.2f}  {name}")
        flat = self.flat()
        if flat:
            lines.append("")
            lines.append(f"{'samples':>8s}  ring  reason    pc")
            for pc, ring, reason, count in flat[:limit]:
                text = (symbols.format_address(pc) if symbols is not None
                        else f"{pc:#010x}")
                lines.append(f"{count:8d}  {ring:4d}  "
                             f"{reason:<8s}  {text}")
        return "\n".join(lines)

    def stats(self) -> Dict:
        return {
            "stride": self.stride,
            "enabled": self.enabled,
            "total_samples": self.total_samples,
            "unique_sites": len(self.samples),
        }
