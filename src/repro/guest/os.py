"""The HiTactix guest-OS model (performance layer).

HiTactix (Le Moal et al., ACM Multimedia'02) is a real-time OS for
streaming appliances: rate-controlled disk reads feeding a zero-copy
UDP send path, driven by a periodic timer.  This model reproduces that
structure at driver granularity:

* a periodic OS tick (the real PIT, programmed through the bus) runs
  the rate controller;
* a token-bucket rate controller releases 1024 KB segments to the NIC
  driver at the configured transfer rate;
* a read pipeline keeps each disk streaming 2 MB requests so segments
  are always available (bounded buffer);
* all device interaction goes through :mod:`repro.guest.drivers`, i.e.
  through the bus and whatever monitor policy is installed.

Scheduling simplification: HiTactix's priority scheduler is collapsed
into event-driven callbacks (ISRs call the pipeline directly).  The
scheduler's per-tick accounting cost is still charged
(``guest_tick_cycles``), so CPU-load totals include it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.guest.drivers.nic import GuestNicDriver
from repro.guest.drivers.scsi import GuestScsiDriver
from repro.hw.pit import PIT_HZ
from repro.perf.costmodel import CostModel

SEGMENT_SIZE = 1024 * 1024        # the paper's 1024 KB segments
READ_CHUNK = 2 * 1024 * 1024      # the paper's 2 MB reads
BLOCK_SIZE = 512

#: Guest buffer layout: one 2 MB streaming buffer per disk.
STREAM_BUFFER_BASE = 0x40_0000


@dataclass
class _DiskStream:
    target: int
    buffer: int
    next_lba: int = 0
    busy: bool = False
    #: Segments (addr, length) read and not yet transmitted.
    ready: List[tuple] = None

    def __post_init__(self) -> None:
        self.ready = []


class HiTactix:
    """The guest OS model bound to one machine + execution stack."""

    def __init__(self, machine, stack, target_rate_bps: float,
                 cost: Optional[CostModel] = None,
                 segment_size: int = SEGMENT_SIZE,
                 read_chunk: int = READ_CHUNK,
                 max_buffered_segments: int = 12) -> None:
        self.machine = machine
        self.stack = stack
        self.cost = cost or stack.cost
        self.target_rate_bps = target_rate_bps
        self.segment_size = segment_size
        self.read_chunk = read_chunk
        self.max_buffered_segments = max_buffered_segments

        self.scsi = GuestScsiDriver(machine, stack)
        self.nic = GuestNicDriver(machine, stack,
                                  coalesce=self.cost.nic_coalesce)
        self.streams = [
            _DiskStream(target=index,
                        buffer=STREAM_BUFFER_BASE + index * read_chunk)
            for index in range(len(machine.disks))
        ]
        self._rr_next = 0              # round-robin send pointer
        self._tokens = 0.0             # byte tokens for pacing
        self._blocked_segment = None   # segment waiting for ring space
        self.ticks = 0
        self.segments_sent = 0
        self.bytes_sent = 0
        self.reads_issued = 0
        self.read_errors = 0
        self.read_retries = 0
        #: Give up on a chunk after this many CHECK CONDITIONs.
        self.max_read_retries = 3

        # Program the OS tick through the (possibly intercepted) bus.
        divisor = max(1, min(0xFFFF, round(PIT_HZ / self.cost.timer_hz)))
        bus = machine.bus
        bus.port_write(0x43, 0x34, 1)
        bus.port_write(0x40, divisor & 0xFF, 1)
        bus.port_write(0x40, (divisor >> 8) & 0xFF, 1)

    # ------------------------------------------------------------------
    # Read pipeline
    # ------------------------------------------------------------------

    def start(self) -> None:
        """Prime every disk stream."""
        for stream in self.streams:
            self._issue_read(stream)

    def _buffered_segments(self) -> int:
        return sum(len(s.ready) for s in self.streams)

    def _issue_read(self, stream: _DiskStream, retry_lba: int = None,
                    attempt: int = 0) -> None:
        if stream.busy:
            return
        if retry_lba is None \
                and self._buffered_segments() >= self.max_buffered_segments:
            return
        blocks = self.read_chunk // BLOCK_SIZE
        disk = self.machine.disks[stream.target]
        if retry_lba is not None:
            lba = retry_lba
        else:
            if stream.next_lba + blocks > disk.blocks:
                stream.next_lba = 0   # wrap: endless streaming source
            lba = stream.next_lba
            stream.next_lba += blocks
        stream.busy = True
        self.reads_issued += 1

        def complete(status: int, stream=stream, lba=lba,
                     attempt=attempt) -> None:
            stream.busy = False
            if status == 0:
                # Split the 2 MB read into 1024 KB segments.
                for offset in range(0, self.read_chunk, self.segment_size):
                    stream.ready.append(
                        (stream.buffer + offset, self.segment_size))
                self._issue_read(stream)
                return
            # CHECK CONDITION: re-issue the same chunk like a real
            # driver (bounded), then skip it if the medium is hopeless.
            self.read_errors += 1
            if attempt < self.max_read_retries:
                self.read_retries += 1
                self.stack.guest_cycles(
                    self.cost.guest_disk_request_cycles)  # sense + retry
                self._issue_read(stream, retry_lba=lba,
                                 attempt=attempt + 1)
            else:
                self._issue_read(stream)  # give up on this chunk

        self.scsi.read(stream.target, lba, blocks, stream.buffer, complete)

    # ------------------------------------------------------------------
    # Rate-controlled send path
    # ------------------------------------------------------------------

    def on_tick(self) -> None:
        """Periodic OS tick: scheduler accounting + rate controller."""
        self.ticks += 1
        self.stack.guest_cycles(self.cost.guest_tick_cycles)
        self._tokens += self.target_rate_bps / 8.0 / self.cost.timer_hz
        # Cap the bucket: a stall must not produce a later burst beyond
        # one segment's worth (constant-rate discipline).
        self._tokens = min(self._tokens, 2.0 * self.segment_size)
        self._pump_sender()
        self.machine.bus.port_write(0x20, 0x20, 1)  # timer EOI

    def _pump_sender(self) -> None:
        while self._tokens >= self.segment_size:
            segment = self._blocked_segment or self._next_segment()
            self._blocked_segment = None
            if segment is None:
                return  # disks have not caught up
            addr, length = segment
            self.stack.guest_cycles(self.cost.guest_segment_cycles)
            if not self.nic.send_segment(addr, length):
                self._blocked_segment = segment
                return  # ring full: retry next tick
            self._tokens -= length
            self.segments_sent += 1
            self.bytes_sent += length

    def _next_segment(self):
        for _ in range(len(self.streams)):
            stream = self.streams[self._rr_next]
            self._rr_next = (self._rr_next + 1) % len(self.streams)
            if stream.ready:
                segment = stream.ready.pop(0)
                if not stream.busy:
                    self._issue_read(stream)
                return segment
        return None

    # ------------------------------------------------------------------

    # ------------------------------------------------------------------
    # Control plane: ARP responder over the RX ring
    # ------------------------------------------------------------------

    def enable_control_plane(self, mac: bytes, ip: bytes) -> None:
        """Answer ARP queries for our address (receivers need it before
        UDP flows can start on a real segment)."""
        from repro.guest.drivers.nic import GuestNicRxDriver
        self.mac = mac
        self.ip = ip
        self.arp_replies = 0
        self.rx_drops = 0
        self.nic.rx = GuestNicRxDriver(self.machine, self.stack,
                                       on_frame=self._control_frame)

    def _control_frame(self, frame: bytes) -> None:
        from repro.errors import ProtocolError
        from repro.net.arp import OP_REQUEST, ArpPacket, make_reply
        from repro.net.ethernet import (
            ETHERTYPE_ARP,
            EthernetFrame,
        )
        try:
            eth = EthernetFrame.unpack(frame)
            if eth.ethertype != ETHERTYPE_ARP:
                return
            request = ArpPacket.unpack(eth.payload)
        except ProtocolError:
            self.rx_drops += 1
            return
        if request.operation != OP_REQUEST or request.target_ip != self.ip:
            return
        reply = make_reply(request, self.mac)
        out = EthernetFrame(dst=request.sender_mac, src=self.mac,
                            ethertype=ETHERTYPE_ARP,
                            payload=reply.pack()).pack()
        if self.nic.send_raw_frame(out):
            self.arp_replies += 1

    # ------------------------------------------------------------------

    def register_handlers(self, dispatcher) -> None:
        from repro.hw.scsi import IRQ_SCSI
        from repro.hw.nic import IRQ_NIC
        dispatcher.register(0, self.on_tick)                 # PIT
        dispatcher.register(IRQ_SCSI, self._scsi_isr)
        dispatcher.register(IRQ_NIC, self.nic.handle_interrupt)

    def _scsi_isr(self) -> None:
        self.scsi.handle_interrupt()
        # Completions may have refilled the pipeline; send eagerly if
        # tokens were waiting on data.
        self._pump_sender()
