"""A multithreaded guest kernel (cooperative scheduler in assembly).

Real-time OSes are task systems, and debugging one means asking "what
is every task doing?"  This guest gives the debugger something to ask
about: a kernel running several kernel threads over a stack-switching
cooperative scheduler, with a task table the monitor can read.

Design (all offsets are the guest<->monitor ABI used by the
thread-aware debug stub):

* task table header at ``TASK_TABLE``::

      +0  current task index (u32)
      +4  task count         (u32)
      +8  TCB[0], TCB[1], ...   (8 bytes each)

  TCB: ``+0 state`` (0 empty, 1 ready, 2 running, 3 exited),
  ``+4 saved_sp``.

* context switch: ``INT 0x31`` (SYS_YIELD).  The handler pushes
  R0..R6 on the current stack, parks SP in the TCB, round-robins to
  the next ready task, restores its SP, pops R6..R0 and IRETs.  A
  fresh task's stack is pre-fabricated to look exactly like that.

* each thread increments its own counter at ``COUNTER_BASE + 4*id``
  and prints ``'A' + id`` to the monitor console per iteration, so
  interleaving is observable from outside.

* the kernel registers the task table with the monitor via VMCALL
  function 3 — that is what turns on thread-aware debugging.
"""

from __future__ import annotations

from repro.asm import Program, assemble
from repro.hw import firmware

TASK_TABLE = 0x5800
COUNTER_BASE = 0x5900
TASK_STACK_BASE = 0x2_0000
TASK_STACK_SIZE = 0x1000

YIELD_VECTOR = 0x31

STATE_EMPTY = 0
STATE_READY = 1
STATE_RUNNING = 2
STATE_EXITED = 3

#: Saved-frame layout below a parked task's SP (words, ascending):
#: R6 R5 R4 R3 R2 R1 R0 PC CS FLAGS
FRAME_WORDS = 10

SEL_CODE0 = firmware.IDX_CODE0 << 2
SEL_DATA0 = firmware.IDX_DATA0 << 2


def _tcb(index: int) -> int:
    return TASK_TABLE + 8 + index * 8


def _task_stack_top(index: int) -> int:
    return TASK_STACK_BASE + (index + 1) * TASK_STACK_SIZE


def threaded_kernel_source(threads: int = 3,
                           iterations: int = 5,
                           memory_limit: int = 16 << 20,
                           preemptive: bool = False,
                           timer_hz: int = 200,
                           busy_loops: int = 20000) -> str:
    """Cooperative by default; ``preemptive=True`` drops the explicit
    yields and lets the PIT preempt tasks instead — the timer ISR
    shares the same stack-switching tail as the yield gate."""
    if not 1 <= threads <= 8:
        raise ValueError(f"1..8 threads supported, got {threads}")

    flags_image = 0x200 if preemptive else 0
    task_setup = []
    for index in range(threads):
        stack_top = _task_stack_top(index)
        # Fabricate the parked frame: FLAGS, CS, PC then 7 zero regs.
        task_setup.append(f"""
    ; ---- task {index}: fabricate a parked context ----
    MOVI R1, {stack_top - 4}
    MOVI R0, {flags_image}
    ST   [R1+0], R0               ; FLAGS image
    MOVI R0, 0
    MOVI R0, {SEL_CODE0}
    ST   [R1-4], R0               ; CS image
    MOVI R0, task_entry
    ST   [R1-8], R0               ; PC image
    MOVI R0, 0
    ST   [R1-12], R0              ; R0
    ST   [R1-16], R0              ; R1
    ST   [R1-20], R0              ; R2
    ST   [R1-24], R0              ; R3
    ST   [R1-28], R0              ; R4
    ST   [R1-36], R0              ; R6
    MOVI R0, {index}
    ST   [R1-32], R0              ; R5 = task id (argument register)
    MOVI R2, {_tcb(index)}
    MOVI R0, {STATE_READY}
    ST   [R2+0], R0
    MOVI R0, {stack_top - 4 - 36}
    ST   [R2+4], R0               ; saved SP -> R6 slot""")

    divisor = max(1, min(0xFFFF, round(1_193_182 / timer_hz)))
    timer_gate = ""
    timer_setup = ""
    preempt_isr = ""
    if preemptive:
        timer_gate = f"""
    MOVI R0, preempt_isr
    ST   [R1+{32 * 8}], R0
    MOVI R0, {SEL_CODE0}
    ST16 [R1+{32 * 8 + 4}], R0
    MOVI R0, 1
    ST16 [R1+{32 * 8 + 6}], R0"""
        timer_setup = f"""
    ; ---- PIC + PIT: preemption tick at {timer_hz} Hz ----
    MOVI R2, 0x20
    MOVI R0, 0x11
    OUTB R0, R2
    MOVI R2, 0x21
    MOVI R0, 32
    OUTB R0, R2
    MOVI R0, 0x04
    OUTB R0, R2
    MOVI R0, 0x01
    OUTB R0, R2
    MOVI R0, 0x00
    OUTB R0, R2
    MOVI R2, 0x43
    MOVI R0, 0x34
    OUTB R0, R2
    MOVI R2, 0x40
    MOVI R0, {divisor & 0xFF}
    OUTB R0, R2
    MOVI R0, {(divisor >> 8) & 0xFF}
    OUTB R0, R2
    STI"""
        preempt_isr = """
; ------------------------------------------------------------------
; preemption: the timer tick enters here and reuses the switch tail
; ------------------------------------------------------------------
preempt_isr:
    PUSH R0
    PUSH R1
    PUSH R2
    PUSH R3
    PUSH R4
    PUSH R5
    PUSH R6
    MOVI R2, 0x20
    MOVI R0, 0x20
    OUTB R0, R2                   ; EOI the (virtual) PIC
    JMP  switch_save
"""
        task_work = f"""
    ; busy work: an interruptible compute burst
    MOVI R2, {busy_loops}
busy_loop:
    SUBI R2, 1
    JNZ  busy_loop"""
    else:
        task_work = f"""
    INT  {YIELD_VECTOR}"""

    return f"""
; ------------------------------------------------------------------
; {"preemptive" if preemptive else "cooperative"} multithreaded kernel (generated by repro.guest.asmthreads)
; ------------------------------------------------------------------
.org {firmware.GUEST_KERNEL_BASE}
.equ GDT,   {firmware.GDT_BASE}
.equ IDT,   {firmware.IDT_BASE}
.equ TABLE, {TASK_TABLE}
.equ COUNTERS, {COUNTER_BASE}

start:
    ; ---- flat GDT (null, code0, data0) ----
    MOVI R1, GDT
    MOVI R0, 0
    ST   [R1+0], R0
    ST   [R1+4], R0
    ST   [R1+8], R0
    ST   [R1+12], R0
    MOVI R0, {memory_limit}
    ST   [R1+16], R0
    MOVI R0, 7
    ST   [R1+20], R0
    MOVI R0, 0
    ST   [R1+24], R0
    MOVI R0, {memory_limit}
    ST   [R1+28], R0
    MOVI R0, 5
    ST   [R1+32], R0
    MOVI R2, COUNTERS+0x80
    MOVI R0, 36
    ST   [R2+0], R0
    MOVI R0, GDT
    ST   [R2+4], R0
    MOV  R0, R2
    LGDT R0
    MOVI R0, {SEL_DATA0}
    MOVSEG DS, R0
    MOVSEG SS, R0
    MOVI SP, {firmware.RING0_STACK_TOP}

    ; ---- IDT: the yield gate (+ VMCALL noop for bare metal) ----
    MOVI R1, IDT
    MOVI R0, yield_isr
    ST   [R1+{YIELD_VECTOR * 8}], R0
    MOVI R0, {SEL_CODE0}
    ST16 [R1+{YIELD_VECTOR * 8 + 4}], R0
    MOVI R0, 1
    ST16 [R1+{YIELD_VECTOR * 8 + 6}], R0
{timer_gate}
    MOVI R0, vmcall_noop
    ST   [R1+{15 * 8}], R0
    MOVI R0, {SEL_CODE0}
    ST16 [R1+{15 * 8 + 4}], R0
    MOVI R0, 1
    ST16 [R1+{15 * 8 + 6}], R0
    MOVI R2, COUNTERS+0x80
    MOVI R0, {256 * 8}
    ST   [R2+0], R0
    MOVI R0, IDT
    ST   [R2+4], R0
    MOV  R0, R2
    LIDT R0

    ; ---- task table header ----
    MOVI R1, TABLE
    MOVI R0, 0
    ST   [R1+0], R0               ; current = 0
    MOVI R0, {threads}
    ST   [R1+4], R0               ; count
{"".join(task_setup)}

{timer_setup}
    ; ---- tell the monitor where the tasks live (thread debugging) ----
    MOVI R0, 3                    ; VMCALL: register task table
    MOVI R1, TABLE
    VMCALL

    ; ---- become task 0: adopt its fabricated context ----
    MOVI R1, TABLE
    MOVI R0, 0
    ST   [R1+0], R0
    MOVI R2, {_tcb(0)}
    MOVI R0, {STATE_RUNNING}
    ST   [R2+0], R0
    LD   SP, [R2+4]
    POP  R6
    POP  R5
    POP  R4
    POP  R3
    POP  R2
    POP  R1
    POP  R0
    IRET                          ; jump into task 0

; ------------------------------------------------------------------
; the thread body: R5 = task id
; ------------------------------------------------------------------
task_entry:
    MOVI R4, {iterations}
task_loop:
    ; counters[id]++
    MOV  R1, R5
    SHLI R1, 2
    ADDI R1, COUNTERS
    LD   R0, [R1+0]
    ADDI R0, 1
    ST   [R1+0], R0
    ; console: 'A' + id
    MOVI R0, 0
    MOV  R1, R5
    ADDI R1, 'A'
    VMCALL
{task_work}
    SUBI R4, 1
    JNZ  task_loop
    ; ---- exit: mark TCB and yield forever ----
    MOV  R1, R5
    SHLI R1, 3
    ADDI R1, TABLE+8
    MOVI R0, {STATE_EXITED}
    ST   [R1+0], R0
task_exit_spin:
    INT  {YIELD_VECTOR}
    JMP  task_exit_spin

; ------------------------------------------------------------------
; cooperative switch: save caller, round-robin to next ready task
; ------------------------------------------------------------------
yield_isr:
    PUSH R0
    PUSH R1
    PUSH R2
    PUSH R3
    PUSH R4
    PUSH R5
    PUSH R6
switch_save:
    ; park SP in current TCB
    MOVI R1, TABLE
    LD   R2, [R1+0]               ; current index
    MOV  R3, R2
    SHLI R3, 3
    ADDI R3, TABLE+8
    MOV  R0, SP
    ST   [R3+4], R0
    LD   R0, [R3+0]
    CMPI R0, {STATE_RUNNING}
    JNZ  pick_next                ; exited tasks keep their state
    MOVI R0, {STATE_READY}
    ST   [R3+0], R0
pick_next:
    LD   R4, [R1+4]               ; count
    MOV  R5, R2                   ; candidate = current
next_candidate:
    ADDI R5, 1
    CMP  R5, R4
    JL   check_candidate
    MOVI R5, 0
check_candidate:
    MOV  R3, R5
    SHLI R3, 3
    ADDI R3, TABLE+8
    LD   R0, [R3+0]
    CMPI R0, {STATE_READY}
    JZ   switch_to
    CMP  R5, R2
    JNZ  next_candidate
    ; nobody else ready: all exited?  park the machine.
    LD   R0, [R3+0]
    CMPI R0, {STATE_READY}
    JZ   switch_to
    MOVI R0, 0                    ; console marker: scheduler idle
    MOVI R1, '.'
    VMCALL
    CLI
sched_park:
    HLT
    JMP  sched_park
switch_to:
    ST   [R1+0], R5               ; current = candidate
    MOVI R0, {STATE_RUNNING}
    ST   [R3+0], R0
    LD   SP, [R3+4]
    POP  R6
    POP  R5
    POP  R4
    POP  R3
    POP  R2
    POP  R1
    POP  R0
    IRET

vmcall_noop:
    IRET
{preempt_isr}"""


def build_threaded_kernel(threads: int = 3, iterations: int = 5) -> Program:
    return assemble(threaded_kernel_source(threads, iterations))


def read_counters(memory, threads: int) -> list:
    return [memory.read_u32(COUNTER_BASE + 4 * index)
            for index in range(threads)]


def read_task_states(memory, threads: int) -> list:
    return [memory.read_u32(_tcb(index)) for index in range(threads)]
