"""HiTactix's SCSI driver (performance-layer model).

Programs the real HBA model through the bus, so whatever interception
policy the current execution stack installed applies to every register
access — that is where the three stacks start to differ.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.errors import DeviceError
from repro.hw.scsi import (
    CMD_START,
    PORT_BASE_SCSI,
    REG_COMMAND,
    REG_INTSTAT,
    REG_MAILBOX,
    cdb_read10,
    encode_request_block,
)
from repro.sim.budget import CAT_DRIVER

#: Request blocks live at the top of the buffer region, one per target.
REQUEST_BLOCK_BASE = 0x7F00


class GuestScsiDriver:
    """One outstanding request per target, completion callbacks."""

    def __init__(self, machine, stack) -> None:
        self.machine = machine
        self.stack = stack
        self._pending: Dict[int, Callable[[int], None]] = {}
        self.requests = 0
        self.completions = 0

    def _block_addr(self, target: int) -> int:
        return REQUEST_BLOCK_BASE + target * 32

    def read(self, target: int, lba: int, blocks: int, buffer: int,
             on_complete: Callable[[int], None]) -> None:
        """Issue READ(10); ``on_complete(status)`` fires from the ISR."""
        if target in self._pending:
            raise DeviceError(f"target {target} already has a request")
        self._pending[target] = on_complete
        self.requests += 1
        # Driver-side work: build CDB + request block.
        self.stack.guest_cycles(self.stack.cost.guest_disk_request_cycles)
        block = encode_request_block(
            target, cdb_read10(lba, blocks), buffer, blocks * 512)
        self.machine.memory.write(self._block_addr(target), block)
        # Two register accesses: mailbox + doorbell.
        bus = self.machine.bus
        bus.port_write(PORT_BASE_SCSI + REG_MAILBOX,
                       self._block_addr(target), 4)
        bus.port_write(PORT_BASE_SCSI + REG_COMMAND, CMD_START, 4)

    def handle_interrupt(self) -> None:
        """SCSI completion ISR."""
        bus = self.machine.bus
        # Critical section around the completion queue.
        self.stack.privileged_op()
        pending = bus.port_read(PORT_BASE_SCSI + REG_INTSTAT, 4)
        for _ in range(pending):
            addr = self.machine.hba.pop_completion()
            if addr is None:
                break
            target = (addr - REQUEST_BLOCK_BASE) // 32
            status = self.machine.memory.read_u32(addr + 28)
            callback = self._pending.pop(target, None)
            self.completions += 1
            if callback is not None:
                callback(status)
        # Acknowledge the controller interrupt, then EOI the PIC (the
        # bus routes the EOI to the real or virtual PIC per stack).
        bus.port_write(PORT_BASE_SCSI + REG_INTSTAT, 0, 4)
        bus.port_write(0xA0, 0x20, 1)   # slave EOI (IRQ 11)
        bus.port_write(0x20, 0x20, 1)
        self.stack.privileged_op()

    @property
    def outstanding(self) -> int:
        return len(self._pending)
