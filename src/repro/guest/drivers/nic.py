"""HiTactix's gigabit NIC driver (performance-layer model).

Zero-copy send path, as the HiTactix streaming server of Le Moal et
al. (ACM MM'02) describes: TX descriptors point directly into the disk
DMA buffers, so the guest's only per-byte work is the UDP checksum pass
(charged via ``stack.touch_bytes``), not a copy.
"""

from __future__ import annotations

import struct
from typing import List, Tuple

from repro.errors import DeviceError
from repro.hw.nic import (
    ICR_TXDW,
    REG_COALESCE,
    REG_ICR,
    REG_IMS,
    REG_TCTL,
    REG_TDBA,
    REG_TDLEN,
    REG_TDT,
    DESCRIPTOR_SIZE,
)
from repro.net.ethernet import HEADER_LEN as ETH_HEADER
from repro.net.ipv4 import HEADER_LEN as IP_HEADER
from repro.net.udp import HEADER_LEN as UDP_HEADER

#: Per-fragment payload on a 1500-byte MTU (8-byte aligned).
FRAGMENT_PAYLOAD = (1500 - IP_HEADER) & ~7
FRAME_OVERHEAD = ETH_HEADER + IP_HEADER

TX_RING_BASE = 0x0001_0000
TX_RING_LEN = 2048


class GuestNicDriver:
    """Descriptor-ring TX driver with ring-occupancy accounting."""

    def __init__(self, machine, stack, coalesce: int = 1,
                 ring_len: int = TX_RING_LEN) -> None:
        self.machine = machine
        self.stack = stack
        self.ring_len = ring_len
        self._tail = 0
        self._clean = 0           # next descriptor to reclaim
        self.frames_queued = 0
        self.frames_reclaimed = 0
        self.ring_full_events = 0
        self.control_frames_sent = 0
        self._control_slot = 0
        #: Optional receive driver harvested from the same ISR.
        self.rx = None
        self._mmio_base = machine.nic_mmio_base
        bus = machine.bus
        for register, value in (
                (REG_TDBA, TX_RING_BASE),
                (REG_TDLEN, ring_len),
                (REG_COALESCE, coalesce),
                (REG_IMS, ICR_TXDW),
                (REG_TCTL, 0x2)):
            bus.mmio_write(self._mmio_base + register, value, 4)

    # ------------------------------------------------------------------

    def _free_slots(self) -> int:
        used = (self._tail - self._clean) % self.ring_len
        return self.ring_len - 1 - used

    def frames_for_segment(self, length: int) -> int:
        payload = length + UDP_HEADER
        return (payload + FRAGMENT_PAYLOAD - 1) // FRAGMENT_PAYLOAD

    def send_segment(self, buffer_addr: int, length: int) -> bool:
        """Queue one UDP segment as IP fragments, zero-copy.

        Returns False (and counts it) when the ring lacks space — the
        caller must retry after completions drain.
        """
        fragments: List[Tuple[int, int]] = []
        offset = 0
        payload = length + UDP_HEADER
        while offset < payload:
            chunk = min(FRAGMENT_PAYLOAD, payload - offset)
            fragments.append((buffer_addr + offset, chunk + FRAME_OVERHEAD))
            offset += chunk
        if len(fragments) > self._free_slots():
            self.ring_full_events += 1
            return False

        # Guest protocol work: checksum pass over the payload plus
        # per-frame header construction.
        self.stack.touch_bytes(length)
        self.stack.guest_cycles(
            len(fragments) * self.stack.cost.guest_frame_cycles)
        self.stack.privileged_op()   # queue lock around the ring

        memory = self.machine.memory
        for addr, frame_len in fragments:
            descriptor = struct.pack("<IIII", addr, frame_len, 1, 0)
            memory.write(TX_RING_BASE + self._tail * DESCRIPTOR_SIZE,
                         descriptor)
            self._tail = (self._tail + 1) % self.ring_len
        self.frames_queued += len(fragments)

        # One doorbell per segment (the batching real drivers do).
        self.machine.bus.mmio_write(self._mmio_base + REG_TDT, self._tail, 4)
        self.stack.privileged_op()
        return True

    def handle_interrupt(self) -> None:
        """NIC ISR: read ICR, reclaim TX, harvest RX, EOI."""
        bus = self.machine.bus
        self.stack.privileged_op()
        bus.mmio_read(self._mmio_base + REG_ICR, 4)
        if self.rx is not None:
            self.rx.harvest()
        # Reclaim finished descriptors (DD bit set by the NIC).
        memory = self.machine.memory
        while self._clean != self._tail:
            status = memory.read_u32(
                TX_RING_BASE + self._clean * DESCRIPTOR_SIZE + 12)
            if not status & 1:
                break
            self.frames_reclaimed += 1
            self._clean = (self._clean + 1) % self.ring_len
        bus.port_write(0xA0, 0x20, 1)   # slave EOI (IRQ 10)
        bus.port_write(0x20, 0x20, 1)
        self.stack.privileged_op()


RX_RING_BASE = 0x1_8000
RX_BUFFER_BASE = 0x1_9000
RX_BUFFER_SIZE = 2048


class GuestNicRxDriver:
    """Receive side: ring setup, frame harvest, descriptor replenish.

    The streaming workload is transmit-dominated, but the guest still
    needs a control plane (ARP, at minimum) — and the RX path is where
    a new NIC's driver bugs usually live, i.e. what the debugging
    environment exists to debug.
    """

    def __init__(self, machine, stack, ring_len: int = 32,
                 on_frame=None) -> None:
        from repro.hw.nic import (
            ICR_RXDW,
            REG_IMS,
            REG_RDBA,
            REG_RDLEN,
            REG_RDT,
            make_rx_descriptor,
        )
        self.machine = machine
        self.stack = stack
        self.ring_len = ring_len
        self.on_frame = on_frame or (lambda frame: None)
        self._head = 0
        self.frames_received = 0
        self._mmio_base = machine.nic_mmio_base
        memory = machine.memory
        for index in range(ring_len):
            memory.write(RX_RING_BASE + index * DESCRIPTOR_SIZE,
                         make_rx_descriptor(
                             RX_BUFFER_BASE + index * RX_BUFFER_SIZE,
                             RX_BUFFER_SIZE))
        bus = machine.bus
        bus.mmio_write(self._mmio_base + REG_RDBA, RX_RING_BASE, 4)
        bus.mmio_write(self._mmio_base + REG_RDLEN, ring_len, 4)
        bus.mmio_write(self._mmio_base + REG_RDT, ring_len - 1, 4)
        # Enable RX interrupts on top of whatever TX already enabled.
        current = bus.mmio_read(self._mmio_base + REG_IMS, 4)
        bus.mmio_write(self._mmio_base + REG_IMS, current | ICR_RXDW, 4)

    def harvest(self) -> int:
        """Pull completed RX descriptors; returns frames harvested."""
        from repro.hw.nic import REG_RDT, make_rx_descriptor
        memory = self.machine.memory
        harvested = 0
        while True:
            base = RX_RING_BASE + self._head * DESCRIPTOR_SIZE
            status = memory.read_u32(base + 12)
            if not status & 1:   # DD clear: nothing more
                break
            addr = memory.read_u32(base)
            length = memory.read_u32(base + 4)
            frame = memory.read(addr, length)
            self.stack.touch_bytes(length)
            self.stack.guest_cycles(
                self.stack.cost.guest_frame_cycles)
            self.frames_received += 1
            harvested += 1
            # Replenish the descriptor and return it to the hardware.
            memory.write(base, make_rx_descriptor(addr, RX_BUFFER_SIZE))
            self.machine.bus.mmio_write(
                self._mmio_base + REG_RDT, self._head, 4)
            self._head = (self._head + 1) % self.ring_len
            self.on_frame(frame)
        return harvested


CONTROL_STAGING_BASE = 0x1_F000
CONTROL_STAGING_SLOTS = 4
CONTROL_STAGING_SIZE = 2048


def send_raw_frame(driver: "GuestNicDriver", frame: bytes) -> bool:
    """Transmit one control-plane frame (ARP reply etc.) through the
    TX ring, using a small rotating staging area (the control path is
    copying, unlike the zero-copy data path)."""
    if len(frame) > CONTROL_STAGING_SIZE:
        raise DeviceError(f"control frame of {len(frame)} too large")
    if driver._free_slots() < 1:
        driver.ring_full_events += 1
        return False
    slot = driver._control_slot
    driver._control_slot = (slot + 1) % CONTROL_STAGING_SLOTS
    addr = CONTROL_STAGING_BASE + slot * CONTROL_STAGING_SIZE
    memory = driver.machine.memory
    memory.write(addr, frame)
    driver.stack.touch_bytes(len(frame))
    driver.stack.guest_cycles(driver.stack.cost.guest_frame_cycles)
    memory.write(TX_RING_BASE + driver._tail * DESCRIPTOR_SIZE,
                 struct.pack("<IIII", addr, len(frame), 1, 0))
    driver._tail = (driver._tail + 1) % driver.ring_len
    driver.frames_queued += 1
    driver.control_frames_sent += 1
    driver.machine.bus.mmio_write(
        driver._mmio_base + REG_TDT, driver._tail, 4)
    return True


GuestNicDriver.send_raw_frame = send_raw_frame
