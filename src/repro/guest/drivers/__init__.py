"""Guest device drivers (performance-layer models)."""

from repro.guest.drivers.nic import GuestNicDriver
from repro.guest.drivers.scsi import GuestScsiDriver

__all__ = ["GuestNicDriver", "GuestScsiDriver"]
