"""The HiTactix-like mini-kernel, written in HX32 assembly.

This is the functional-layer guest: a small real-time kernel image that

* builds its own GDT (flat ring-0/ring-3 descriptors) and loads it,
* installs IDT gates (timer IRQ, spurious vectors, a ring-3 syscall
  gate) and loads the IDT,
* sets up the TSS ring stacks,
* programs the 8259 PIC pair and the 8254 timer through port I/O,
* enables interrupts and either idles (HLT loop) or launches a ring-3
  user task that talks to the kernel through ``INT 0x30``.

The image is privilege-faithful: it is written as if it owns ring 0.
On bare metal it does.  Under a monitor it actually runs at ring 1 and
every privileged step of the list above traps and is emulated — the
same binary, which is the paper's "works with any OS on PC/AT
interfaces" claim in miniature.

The module generates assembly source (parameterised) and assembles it;
tests and examples use :func:`build_kernel` /
:func:`kernel_layout`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.asm import Program, assemble
from repro.hw import firmware

#: Syscall numbers for INT 0x30 (R0 = number, R1 = argument).
SYS_PUTC = 1
SYS_GET_TICKS = 2
SYS_EXIT = 3

SYSCALL_VECTOR = 0x30
TIMER_VECTOR = 32

#: Kernel data page (physical, below everything interesting).
DATA_BASE = 0x5000
OFF_TICKS = 0       # u32 tick counter
OFF_STATE = 4       # u32: 0 running, 1 target reached, 2 user exited
OFF_SCRATCH = 16    # pseudo-descriptor scratch area

#: Selector values the kernel uses (firmware GDT layout, RPL omitted).
SEL_CODE0 = firmware.IDX_CODE0 << 2
SEL_DATA0 = firmware.IDX_DATA0 << 2
SEL_CODE3 = (firmware.IDX_CODE3 << 2) | 3
SEL_DATA3 = (firmware.IDX_DATA3 << 2) | 3


@dataclass(frozen=True)
class KernelConfig:
    memory_limit: int = 16 << 20
    timer_hz: int = 100
    ticks_to_run: int = 5
    with_user_task: bool = False
    user_iterations: int = 3
    #: Build identity page tables and run with CR0.PG set — exercises
    #: the monitor's CR3/CR0 virtualisation on the real MMU.
    with_paging: bool = False


#: Page-table area used by the paging variant (below everything hot).
PAGE_DIR_BASE = 0x60000
PAGE_TABLES_BASE = 0x61000


def _gdt_descriptor_stmts(index: int, base: int, limit: int,
                          flags: int) -> str:
    offset = index * 12
    return f"""
    MOVI R0, {base}
    ST   [R1+{offset}], R0
    MOVI R0, {limit}
    ST   [R1+{offset + 4}], R0
    MOVI R0, {flags}
    ST   [R1+{offset + 8}], R0"""


def _idt_gate_stmts(vector: int, handler_label: str, selector: int,
                    flags: int) -> str:
    offset = vector * 8
    return f"""
    MOVI R0, {handler_label}
    ST   [R1+{offset}], R0
    MOVI R0, {selector}
    ST16 [R1+{offset + 4}], R0
    MOVI R0, {flags}
    ST16 [R1+{offset + 6}], R0"""


def kernel_source(config: KernelConfig = KernelConfig()) -> str:
    """Generate the kernel's assembly source."""
    divisor = max(1, min(0xFFFF, round(1_193_182 / config.timer_hz)))
    flags_code0 = 0x07                      # present | code | writable
    flags_data0 = 0x05                      # present | writable
    flags_code3 = 0x07 | (3 << 4)
    flags_data3 = 0x05 | (3 << 4)
    gate_ring0 = 0x01                       # present, dpl 0, interrupt
    gate_user = 0x01 | (3 << 1)             # present, dpl 3, interrupt

    pages = config.memory_limit // 4096
    tables = (pages + 1023) // 1024
    paging_setup = ""
    if config.with_paging:
        paging_setup = f"""
    ; ---- identity page tables: {tables} tables over {pages} pages ----
    ; Every page is mapped present|writable|user; the three-level
    ; protection story rides on segmentation, paging provides the
    ; kernel/application split on real deployments (simplified here).
    MOVI R1, {PAGE_DIR_BASE}
    MOVI R2, {PAGE_TABLES_BASE}
    MOVI R3, {tables}
pd_loop:
    MOV  R0, R2
    ORI  R0, 7
    ST   [R1+0], R0
    ADDI R1, 4
    ADDI R2, 0x1000
    SUBI R3, 1
    JNZ  pd_loop
    MOVI R1, {PAGE_TABLES_BASE}
    MOVI R2, 0
    MOVI R3, {pages}
pt_loop:
    MOV  R0, R2
    ORI  R0, 7
    ST   [R1+0], R0
    ADDI R1, 4
    ADDI R2, 0x1000
    SUBI R3, 1
    JNZ  pt_loop
    MOVI R0, {PAGE_DIR_BASE}
    MOVCR CR3, R0
    MOVRC R0, CR0
    MOVI R4, 0x80000000
    OR   R0, R4
    MOVCR CR0, R0                 ; paging on
"""

    user_launch = ""
    if config.with_user_task:
        user_launch = f"""
    ; ---- launch the ring-3 task: build an IRET frame and drop ----
    MOVI R0, {SEL_DATA3}
    PUSH R0                       ; user SS
    MOVI R0, {firmware.RING3_STACK_TOP}
    PUSH R0                       ; user SP
    MOVI R0, 0x200                ; user FLAGS (IF set)
    PUSH R0
    MOVI R0, {SEL_CODE3}
    PUSH R0                       ; user CS
    MOVI R0, {firmware.GUEST_APP_BASE}
    PUSH R0                       ; user PC
    MOVI R0, {SEL_DATA3}
    MOVSEG DS, R0                 ; user data view
    IRET"""
    else:
        user_launch = """
    JMP idle"""

    return f"""
; ------------------------------------------------------------------
; HiTactix-like mini-kernel (generated by repro.guest.asmkernel)
; ------------------------------------------------------------------
.org {firmware.GUEST_KERNEL_BASE}
.equ GDT,  {firmware.GDT_BASE}
.equ IDT,  {firmware.IDT_BASE}
.equ TSS,  {firmware.TSS_BASE}
.equ DATA, {DATA_BASE}

start:
    ; ---- build the GDT ----
    MOVI R1, GDT{_gdt_descriptor_stmts(0, 0, 0, 0)}{_gdt_descriptor_stmts(firmware.IDX_CODE0, 0, config.memory_limit, flags_code0)}{_gdt_descriptor_stmts(firmware.IDX_DATA0, 0, config.memory_limit, flags_data0)}{_gdt_descriptor_stmts(firmware.IDX_CODE1, 0, config.memory_limit, flags_code0 | (1 << 4))}{_gdt_descriptor_stmts(firmware.IDX_DATA1, 0, config.memory_limit, flags_data0 | (1 << 4))}{_gdt_descriptor_stmts(firmware.IDX_CODE3, 0, config.memory_limit, flags_code3)}{_gdt_descriptor_stmts(firmware.IDX_DATA3, 0, config.memory_limit, flags_data3)}

    ; ---- load GDTR and reload the flat data segments ----
    MOVI R2, DATA+{OFF_SCRATCH}
    MOVI R0, {firmware.GDT_DESCRIPTORS * 12}
    ST   [R2+0], R0
    MOVI R0, GDT
    ST   [R2+4], R0
    MOV  R0, R2
    LGDT R0
    MOVI R0, {SEL_DATA0}
    MOVSEG DS, R0
    MOVSEG SS, R0
    MOVI SP, {firmware.RING0_STACK_TOP}
{paging_setup}
    ; ---- install IDT gates ----
    MOVI R1, IDT{_idt_gate_stmts(TIMER_VECTOR, "timer_isr", SEL_CODE0, gate_ring0)}{_idt_gate_stmts(SYSCALL_VECTOR, "syscall_entry", SEL_CODE0, gate_user)}{_idt_gate_stmts(13, "fault_isr", SEL_CODE0, gate_ring0)}{_idt_gate_stmts(14, "fault_isr", SEL_CODE0, gate_ring0)}{_idt_gate_stmts(15, "vmcall_noop", SEL_CODE0, gate_ring0)}
    MOVI R2, DATA+{OFF_SCRATCH}
    MOVI R0, {256 * 8}
    ST   [R2+0], R0
    MOVI R0, IDT
    ST   [R2+4], R0
    MOV  R0, R2
    LIDT R0

    ; ---- TSS ring stacks ----
    MOVI R1, TSS
    MOVI R0, {firmware.RING0_STACK_TOP}
    ST   [R1+0], R0
    MOVI R0, {SEL_DATA0}
    ST   [R1+4], R0
    MOVI R0, TSS
    LTSS R0

    ; ---- zero the counters ----
    MOVI R1, DATA
    MOVI R0, 0
    ST   [R1+{OFF_TICKS}], R0
    ST   [R1+{OFF_STATE}], R0

    ; ---- program the PIC pair (ICW1..4, unmask) ----
    MOVI R2, 0x20                 ; master command port
    MOVI R0, 0x11
    OUTB R0, R2
    MOVI R2, 0x21
    MOVI R0, 32
    OUTB R0, R2                   ; ICW2: base vector 32
    MOVI R0, 0x04
    OUTB R0, R2
    MOVI R0, 0x01
    OUTB R0, R2
    MOVI R0, 0x00
    OUTB R0, R2                   ; OCW1: unmask all
    MOVI R2, 0xA0
    MOVI R0, 0x11
    OUTB R0, R2
    MOVI R2, 0xA1
    MOVI R0, 40
    OUTB R0, R2
    MOVI R0, 0x02
    OUTB R0, R2
    MOVI R0, 0x01
    OUTB R0, R2
    MOVI R0, 0x00
    OUTB R0, R2

    ; ---- program the PIT: channel 0, mode 2, rate {config.timer_hz} Hz ----
    MOVI R2, 0x43
    MOVI R0, 0x34
    OUTB R0, R2
    MOVI R2, 0x40
    MOVI R0, {divisor & 0xFF}
    OUTB R0, R2
    MOVI R0, {(divisor >> 8) & 0xFF}
    OUTB R0, R2

    STI
{user_launch}

idle:
    MOVI R1, DATA
    LD   R0, [R1+{OFF_STATE}]
    CMPI R0, 0
    JNZ  done
    HLT
    JMP  idle

done:
    MOVI R0, 0                    ; VMCALL putc: announce completion
    MOVI R1, 'D'
    VMCALL
    CLI
park:
    HLT
    JMP  park

; ---- timer interrupt: count ticks, flag the target, EOI ----
timer_isr:
    PUSH R0
    PUSH R1
    PUSH R2
    MOVSGR R2, DS
    PUSH R2
    MOVI R2, {SEL_DATA0}
    MOVSEG DS, R2
    MOVI R1, DATA
    LD   R0, [R1+{OFF_TICKS}]
    ADDI R0, 1
    ST   [R1+{OFF_TICKS}], R0
    CMPI R0, {config.ticks_to_run}
    JL   timer_eoi
    MOVI R0, 1
    ST   [R1+{OFF_STATE}], R0
timer_eoi:
    MOVI R2, 0x20
    MOVI R0, 0x20
    OUTB R0, R2                   ; EOI to (virtual) master PIC
    POP  R2
    MOVSEG DS, R2
    POP  R2
    POP  R1
    POP  R0
    IRET

; ---- ring-3 syscall gate: R0 = number, R1 = argument ----
syscall_entry:
    PUSH R2
    MOVSGR R2, DS
    PUSH R2
    MOVI R2, {SEL_DATA0}
    MOVSEG DS, R2
    CMPI R0, {SYS_PUTC}
    JZ   sys_putc
    CMPI R0, {SYS_GET_TICKS}
    JZ   sys_ticks
    CMPI R0, {SYS_EXIT}
    JZ   sys_exit
    JMP  sys_out
sys_putc:
    MOVI R0, 0                    ; monitor console (VMCALL putc)
    VMCALL
    JMP  sys_out
sys_ticks:
    MOVI R2, DATA
    LD   R1, [R2+{OFF_TICKS}]
    JMP  sys_out
sys_exit:
    MOVI R2, DATA
    MOVI R0, 2
    ST   [R2+{OFF_STATE}], R0
    MOVI SP, {firmware.RING0_STACK_TOP}
    JMP  done                     ; task is gone: back to the kernel
sys_out:
    POP  R2
    MOVSEG DS, R2
    POP  R2
    IRET

; ---- VMCALL without a monitor (bare metal): console is a no-op ----
vmcall_noop:
    IRET

; ---- fault handler: record and park ----
fault_isr:
    MOVI R2, DATA
    MOVI R0, 0xF
    ST   [R2+{OFF_STATE}], R0
    CLI
fault_park:
    HLT
    JMP  fault_park
"""


def user_task_source(iterations: int = 3) -> str:
    """A ring-3 task: print, read ticks, then exit via syscall."""
    return f"""
.org {firmware.GUEST_APP_BASE}
user_start:
    MOVI R3, {iterations}
user_loop:
    MOVI R0, {SYS_PUTC}
    MOVI R1, 'u'
    INT  {SYSCALL_VECTOR}
    MOVI R0, {SYS_GET_TICKS}
    INT  {SYSCALL_VECTOR}
    SUBI R3, 1
    JNZ  user_loop
    MOVI R0, {SYS_EXIT}
    INT  {SYSCALL_VECTOR}
user_spin:
    JMP  user_spin
"""


def build_kernel(config: KernelConfig = KernelConfig()) -> Program:
    """Assemble the kernel image at its canonical base."""
    return assemble(kernel_source(config))


def build_user_task(iterations: int = 3) -> Program:
    return assemble(user_task_source(iterations))


def read_ticks(memory) -> int:
    return memory.read_u32(DATA_BASE + OFF_TICKS)


def read_state(memory) -> int:
    return memory.read_u32(DATA_BASE + OFF_STATE)
