"""Guest operating systems: the assembly mini-kernel (functional layer)
and the HiTactix driver-level model (performance layer)."""

from repro.guest.asmkernel import (
    KernelConfig,
    build_kernel,
    build_user_task,
    read_state,
    read_ticks,
)
from repro.guest.asmthreads import build_threaded_kernel
from repro.guest.os import HiTactix

__all__ = [
    "KernelConfig",
    "build_kernel",
    "build_user_task",
    "read_ticks",
    "read_state",
    "HiTactix",
    "build_threaded_kernel",
]
