"""TCP (RFC 793 core + the loss-recovery machinery of RFC 5681/6298).

The paper's evaluation streams one UDP flow over a lossless link — the
one case where "robust transport" means nothing.  This module is the
transport that makes loss, reordering and overload first-class: a real
TCP state machine layered on the existing :mod:`repro.net.ethernet` /
:mod:`repro.net.ipv4` / :mod:`repro.net.checksum` modules.

What is implemented (and tested):

* three-way handshake (active ``connect`` and passive ``listen``),
  FIN teardown through every close state (FIN_WAIT_1/2, CLOSING,
  TIME_WAIT with a 2·MSL timer, CLOSE_WAIT, LAST_ACK) and RST abort;
* full sequence/ack tracking with 32-bit wraparound arithmetic,
  a retransmission queue, and partial-ACK trimming;
* retransmission timeout per RFC 6298 (SRTT/RTTVAR, exponential
  backoff, bounded by ``rto_min``/``rto_max``) with **Karn's rule**:
  retransmitted segments never contribute RTT samples, and backoff is
  kept until an unambiguous sample arrives;
* fast retransmit on the third duplicate ACK;
* a congestion window: slow start to ``ssthresh``, then AIMD; timeout
  collapses cwnd to one MSS, fast retransmit halves it;
* receive-window flow control: the advertised window tracks the unread
  receive buffer, a zero window stops the sender (with a 1-byte window
  probe under the RTO machinery) and reopening the window sends an
  explicit window update;
* out-of-order reassembly on the receive side (bounded stash) —
  every arriving segment is acknowledged, which is what generates the
  duplicate ACKs the sender's fast-retransmit path needs.

Determinism contract: **all** timers are driven by guest cycles on a
:class:`repro.sim.events.EventQueue` — there is no wall clock anywhere,
so a seeded chaos run produces byte-identical traces and identical
counters run-over-run (the same golden-file property as the rest of
the tree).  The only randomness a connection ever sees is whatever the
fault plan does to its frames.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import ProtocolError
from repro.net.checksum import internet_checksum, ones_complement_sum
from repro.net.ethernet import ETHERTYPE_IPV4, EthernetFrame
from repro.net.ipv4 import PROTO_TCP, Ipv4Packet, Reassembler, fragment

HEADER_LEN = 20
SEQ_MASK = 0xFFFFFFFF

FLAG_FIN = 0x01
FLAG_SYN = 0x02
FLAG_RST = 0x04
FLAG_PSH = 0x08
FLAG_ACK = 0x10

#: Connection states (RFC 793 names).
CLOSED = "CLOSED"
LISTEN = "LISTEN"
SYN_SENT = "SYN_SENT"
SYN_RCVD = "SYN_RCVD"
ESTABLISHED = "ESTABLISHED"
FIN_WAIT_1 = "FIN_WAIT_1"
FIN_WAIT_2 = "FIN_WAIT_2"
CLOSE_WAIT = "CLOSE_WAIT"
CLOSING = "CLOSING"
LAST_ACK = "LAST_ACK"
TIME_WAIT = "TIME_WAIT"

#: States where data transfer is allowed to proceed.
SYNCHRONIZED = (ESTABLISHED, FIN_WAIT_1, FIN_WAIT_2, CLOSE_WAIT,
                CLOSING, LAST_ACK, TIME_WAIT)

DEFAULT_MSS = 1460
DEFAULT_RCV_BUF = 65535

#: RTO bounds in *seconds of simulated machine time*; deliberately much
#: tighter than RFC 6298's wall-clock defaults so loss recovery fits in
#: sub-second simulation windows.  All are constructor knobs.
RTO_INITIAL_S = 0.02
RTO_MIN_S = 0.005
RTO_MAX_S = 0.5
MSL_S = 0.02

#: Bound on the out-of-order stash (segments), against reorder floods.
MAX_OOO_SEGMENTS = 64


def seq_lt(a: int, b: int) -> bool:
    """``a < b`` in 32-bit sequence space."""
    return ((a - b) & SEQ_MASK) > 0x7FFFFFFF


def seq_le(a: int, b: int) -> bool:
    return a == b or seq_lt(a, b)


def seq_add(a: int, n: int) -> int:
    return (a + n) & SEQ_MASK


def seq_sub(a: int, b: int) -> int:
    """``a - b`` in sequence space (callers only use small windows)."""
    return (a - b) & SEQ_MASK


def _pseudo_header(src_ip: bytes, dst_ip: bytes, tcp_length: int) -> bytes:
    return src_ip + dst_ip + struct.pack(">BBH", 0, PROTO_TCP, tcp_length)


@dataclass(frozen=True)
class TcpSegment:
    """One TCP segment (fixed 20-byte header, no options)."""

    src_port: int
    dst_port: int
    seq: int
    ack: int
    flags: int
    window: int
    payload: bytes = b""

    def __post_init__(self) -> None:
        for port in (self.src_port, self.dst_port):
            if not 0 <= port <= 0xFFFF:
                raise ProtocolError(f"bad port {port}")
        if not 0 <= self.window <= 0xFFFF:
            raise ProtocolError(f"bad window {self.window}")

    @property
    def seq_len(self) -> int:
        """Sequence space this segment occupies (SYN/FIN count 1)."""
        length = len(self.payload)
        if self.flags & FLAG_SYN:
            length += 1
        if self.flags & FLAG_FIN:
            length += 1
        return length

    def describe(self) -> str:
        names = [(FLAG_SYN, "SYN"), (FLAG_ACK, "ACK"), (FLAG_FIN, "FIN"),
                 (FLAG_RST, "RST"), (FLAG_PSH, "PSH")]
        text = "|".join(label for bit, label in names if self.flags & bit)
        return (f"{text or 'none'} seq={self.seq} ack={self.ack} "
                f"wnd={self.window} len={len(self.payload)}")

    def pack(self, src_ip: bytes, dst_ip: bytes) -> bytes:
        offset_flags = (5 << 12) | (self.flags & 0x3F)
        header = struct.pack(">HHIIHHHH", self.src_port, self.dst_port,
                             self.seq & SEQ_MASK, self.ack & SEQ_MASK,
                             offset_flags, self.window, 0, 0)
        checksum = internet_checksum(
            _pseudo_header(src_ip, dst_ip, HEADER_LEN + len(self.payload))
            + header + self.payload)
        return header[:16] + struct.pack(">H", checksum) + header[18:] \
            + self.payload

    @classmethod
    def unpack(cls, raw: bytes, src_ip: Optional[bytes] = None,
               dst_ip: Optional[bytes] = None) -> "TcpSegment":
        """Parse; verifies the checksum when the IPs are supplied."""
        if len(raw) < HEADER_LEN:
            raise ProtocolError(f"TCP segment of {len(raw)} bytes too short")
        (src_port, dst_port, seq, ack, offset_flags, window, _checksum,
         _urgent) = struct.unpack(">HHIIHHHH", raw[:HEADER_LEN])
        data_offset = (offset_flags >> 12) * 4
        if data_offset < HEADER_LEN or data_offset > len(raw):
            raise ProtocolError(f"bad TCP data offset {data_offset}")
        if src_ip is not None and dst_ip is not None:
            total = ones_complement_sum(
                _pseudo_header(src_ip, dst_ip, len(raw)) + raw)
            if total != 0xFFFF:
                raise ProtocolError("TCP checksum mismatch")
        return cls(src_port=src_port, dst_port=dst_port, seq=seq, ack=ack,
                   flags=offset_flags & 0x3F, window=window,
                   payload=raw[data_offset:])


@dataclass
class TcpStats:
    """Per-connection counters (aggregated by ``collect_net``)."""

    segments_sent: int = 0
    segments_received: int = 0
    bytes_sent: int = 0
    bytes_received: int = 0
    acks_received: int = 0
    retransmits: int = 0
    rto_expirations: int = 0
    fast_retransmits: int = 0
    dupacks: int = 0
    out_of_order: int = 0
    window_probes: int = 0
    zero_window_stalls: int = 0
    resets_received: int = 0
    resets_sent: int = 0

    def as_dict(self) -> Dict[str, int]:
        return dict(self.__dict__)

    def add(self, other: "TcpStats") -> None:
        for key, value in other.__dict__.items():
            self.__dict__[key] += value


@dataclass
class _FlightEntry:
    """One unacknowledged segment on the retransmission queue."""

    seq: int
    flags: int
    payload: bytes
    sent_at: int
    retransmitted: bool = False

    @property
    def end(self) -> int:
        length = len(self.payload)
        if self.flags & FLAG_SYN:
            length += 1
        if self.flags & FLAG_FIN:
            length += 1
        return seq_add(self.seq, length)


class TcpConnection:
    """One endpoint of one TCP connection.

    ``send_segment`` is the wire: a callable taking a
    :class:`TcpSegment` (the :class:`TcpEndpoint` wraps it into
    Ethernet/IPv4 frames; unit tests wire two connections directly).
    All timing comes from ``queue`` (cycles) and ``cpu_hz``.
    """

    def __init__(self, queue, cpu_hz: float, local_port: int,
                 remote_port: int,
                 send_segment: Callable[[TcpSegment], None],
                 iss: int = 0, mss: int = DEFAULT_MSS,
                 rcv_buf: int = DEFAULT_RCV_BUF,
                 rto_initial_s: float = RTO_INITIAL_S,
                 rto_min_s: float = RTO_MIN_S,
                 rto_max_s: float = RTO_MAX_S,
                 msl_s: float = MSL_S,
                 name: str = "", bus=None,
                 cwnd_histogram=None) -> None:
        self.queue = queue
        self.cpu_hz = cpu_hz
        self.local_port = local_port
        self.remote_port = remote_port
        self._send_segment = send_segment
        self.name = name or f"{local_port}>{remote_port}"
        self.bus = bus
        self._cwnd_histogram = cwnd_histogram

        self.state = CLOSED
        self.mss = mss
        self.stats = TcpStats()

        # -- send side -------------------------------------------------------
        self.iss = iss & SEQ_MASK
        self.snd_una = self.iss
        self.snd_nxt = self.iss
        self.snd_wnd = mss          # until the peer advertises
        self.cwnd = 2 * mss
        self.ssthresh = 64 * 1024
        self._sndbuf = bytearray()
        self._flight: List[_FlightEntry] = []
        self._dupacks = 0
        self._fin_pending = False
        self._fin_sent = False

        # -- receive side ----------------------------------------------------
        self.rcv_buf = rcv_buf
        self.irs: Optional[int] = None
        self.rcv_nxt: Optional[int] = None
        self._rcvbuf = bytearray()
        self._ooo: Dict[int, bytes] = {}
        self._fin_received = False
        self._last_advertised_wnd = min(rcv_buf, 0xFFFF)

        # -- timers ----------------------------------------------------------
        self.rto_min = max(1, int(rto_min_s * cpu_hz))
        self.rto_max = max(self.rto_min, int(rto_max_s * cpu_hz))
        self.rto = min(max(int(rto_initial_s * cpu_hz), self.rto_min),
                       self.rto_max)
        self.msl_cycles = max(1, int(msl_s * cpu_hz))
        self.srtt: Optional[int] = None
        self.rttvar = 0
        self._rto_event = None
        self._time_wait_event = None

        # -- callbacks -------------------------------------------------------
        #: Called once on entering ESTABLISHED.
        self.on_established: Optional[Callable[["TcpConnection"], None]] = None
        #: Called when new in-order data is available (``take`` drains).
        self.on_readable: Optional[Callable[["TcpConnection"], None]] = None
        #: Called once on entering CLOSED, with a reason string.
        self.on_closed: Optional[Callable[["TcpConnection", str], None]] = None
        self._open_cycle: Optional[int] = None
        self._closed_reason: Optional[str] = None

    # -- tiny helpers --------------------------------------------------------

    @property
    def rcv_wnd(self) -> int:
        return max(0, min(self.rcv_buf - len(self._rcvbuf), 0xFFFF))

    @property
    def available(self) -> int:
        """In-order bytes received and not yet taken by the app."""
        return len(self._rcvbuf)

    @property
    def flight_bytes(self) -> int:
        return seq_sub(self.snd_nxt, self.snd_una)

    @property
    def sndbuf_bytes(self) -> int:
        return len(self._sndbuf)

    def _set_cwnd(self, value: int) -> None:
        self.cwnd = max(self.mss, value)
        if self._cwnd_histogram is not None:
            self._cwnd_histogram.observe(self.cwnd)

    # -- opening -------------------------------------------------------------

    def connect(self) -> None:
        """Active open: send SYN."""
        if self.state != CLOSED:
            raise ProtocolError(f"connect() in state {self.state}")
        self.state = SYN_SENT
        self._transmit(FLAG_SYN, self.snd_nxt, b"", track=True)
        self.snd_nxt = seq_add(self.snd_nxt, 1)
        self._arm_rto()

    def accept_syn(self, segment: TcpSegment) -> None:
        """Passive open: consume the peer's SYN, answer SYN|ACK."""
        if self.state != CLOSED:
            raise ProtocolError(f"accept_syn() in state {self.state}")
        self.irs = segment.seq
        self.rcv_nxt = seq_add(segment.seq, 1)
        self.snd_wnd = segment.window
        self.state = SYN_RCVD
        self.stats.segments_received += 1
        self._transmit(FLAG_SYN | FLAG_ACK, self.snd_nxt, b"", track=True)
        self.snd_nxt = seq_add(self.snd_nxt, 1)
        self._arm_rto()

    def _enter_established(self) -> None:
        self.state = ESTABLISHED
        self._open_cycle = self.queue.now
        if self.bus is not None:
            self.bus.instant("net", "tcp-open", self.queue.now,
                             args={"conn": self.name})
        if self.on_established is not None:
            self.on_established(self)

    # -- application interface -----------------------------------------------

    def send(self, data: bytes) -> None:
        """Queue application data for transmission."""
        if self.state not in (ESTABLISHED, CLOSE_WAIT):
            raise ProtocolError(f"send() in state {self.state}")
        if self._fin_pending or self._fin_sent:
            raise ProtocolError("send() after close()")
        self._sndbuf += data
        self._push()

    def take(self, limit: Optional[int] = None) -> bytes:
        """Drain up to ``limit`` in-order received bytes (the app read).

        Reopening a closed (or nearly closed) window sends an explicit
        window update so a zero-window-stalled sender wakes up.
        """
        was = self.rcv_wnd
        if limit is None or limit >= len(self._rcvbuf):
            data = bytes(self._rcvbuf)
            del self._rcvbuf[:]
        else:
            data = bytes(self._rcvbuf[:limit])
            del self._rcvbuf[:limit]
        if data and was < self.mss and self.rcv_wnd >= self.mss \
                and self.state in SYNCHRONIZED and self.rcv_nxt is not None:
            self._transmit(FLAG_ACK, self.snd_nxt, b"")   # window update
        return data

    def close(self) -> None:
        """Graceful close: FIN after everything queued has been sent."""
        if self.state in (CLOSED, LISTEN):
            self._enter_closed("closed-local")
            return
        if self.state == SYN_SENT:
            self._cancel_timers()
            self._enter_closed("closed-local")
            return
        if self._fin_pending or self._fin_sent:
            return
        self._fin_pending = True
        self._push()

    def abort(self) -> None:
        """Hard close: RST to the peer, drop all state."""
        if self.state in SYNCHRONIZED or self.state == SYN_RCVD:
            self.stats.resets_sent += 1
            self._emit(TcpSegment(self.local_port, self.remote_port,
                                  self.snd_nxt,
                                  self.rcv_nxt or 0, FLAG_RST | FLAG_ACK,
                                  0))
        self._cancel_timers()
        self._enter_closed("reset-local")

    # -- segment transmission ------------------------------------------------

    def _emit(self, segment: TcpSegment) -> None:
        self.stats.segments_sent += 1
        self.stats.bytes_sent += len(segment.payload)
        self._send_segment(segment)

    def _transmit(self, flags: int, seq: int, payload: bytes,
                  track: bool = False) -> None:
        if self.rcv_nxt is not None:
            flags |= FLAG_ACK
        window = self.rcv_wnd
        self._last_advertised_wnd = window
        self._emit(TcpSegment(self.local_port, self.remote_port, seq,
                              self.rcv_nxt or 0, flags, window, payload))
        if track:
            self._flight.append(_FlightEntry(seq, flags, payload,
                                             self.queue.now))

    def _retransmit_head(self) -> None:
        entry = self._flight[0]
        entry.retransmitted = True
        entry.sent_at = self.queue.now
        self.stats.retransmits += 1
        window = self.rcv_wnd
        self._last_advertised_wnd = window
        flags = entry.flags
        if self.rcv_nxt is not None:
            flags |= FLAG_ACK
        self._emit(TcpSegment(self.local_port, self.remote_port, entry.seq,
                              self.rcv_nxt or 0, flags, window,
                              entry.payload))

    def _push(self) -> None:
        """Send whatever the congestion and peer windows allow."""
        if self.state not in (ESTABLISHED, CLOSE_WAIT, FIN_WAIT_1,
                              CLOSING, LAST_ACK):
            return
        window = min(self.snd_wnd, self.cwnd)
        while self._sndbuf and not self._fin_sent:
            in_flight = self.flight_bytes
            room = window - in_flight
            if room <= 0:
                if self.snd_wnd == 0 and not self._flight:
                    self._window_probe()
                break
            size = min(len(self._sndbuf), self.mss, room)
            payload = bytes(self._sndbuf[:size])
            del self._sndbuf[:size]
            self._transmit(FLAG_PSH | FLAG_ACK, self.snd_nxt, payload,
                           track=True)
            self.snd_nxt = seq_add(self.snd_nxt, size)
        if self._fin_pending and not self._fin_sent and not self._sndbuf:
            self._transmit(FLAG_FIN | FLAG_ACK, self.snd_nxt, b"",
                           track=True)
            self.snd_nxt = seq_add(self.snd_nxt, 1)
            self._fin_sent = True
            if self.state == ESTABLISHED:
                self.state = FIN_WAIT_1
            elif self.state == CLOSE_WAIT:
                self.state = LAST_ACK
        if self._flight:
            self._ensure_rto()

    def _window_probe(self) -> None:
        """Zero-window probe: force one byte past the closed window.

        The probe rides the normal retransmission queue, so the RTO
        machinery (with backoff) keeps probing until the window reopens.
        """
        if not self._sndbuf or self._fin_sent:
            return
        self.stats.window_probes += 1
        self.stats.zero_window_stalls += 1
        payload = bytes(self._sndbuf[:1])
        del self._sndbuf[:1]
        self._transmit(FLAG_PSH | FLAG_ACK, self.snd_nxt, payload,
                       track=True)
        self.snd_nxt = seq_add(self.snd_nxt, 1)
        self._ensure_rto()

    # -- timers --------------------------------------------------------------

    def _arm_rto(self) -> None:
        if self._rto_event is not None:
            self._rto_event.cancel()
        self._rto_event = self.queue.schedule_in(self.rto, self._on_rto,
                                                 name="tcp-rto")

    def _ensure_rto(self) -> None:
        if self._rto_event is None or self._rto_event.fired \
                or self._rto_event.cancelled:
            self._arm_rto()

    def _cancel_timers(self) -> None:
        for event in (self._rto_event, self._time_wait_event):
            if event is not None:
                event.cancel()
        self._rto_event = None
        self._time_wait_event = None

    def _on_rto(self) -> None:
        self._rto_event = None
        if not self._flight or self.state == CLOSED:
            return
        self.stats.rto_expirations += 1
        # Collapse to one MSS and halve ssthresh (RFC 5681 timeout).
        self.ssthresh = max(self.flight_bytes // 2, 2 * self.mss)
        self._set_cwnd(self.mss)
        # Karn part 2: back the timer off; only a fresh (unambiguous)
        # sample will restore it.
        self.rto = min(self.rto * 2, self.rto_max)
        self._dupacks = 0
        self._retransmit_head()
        self._arm_rto()

    def _on_time_wait(self) -> None:
        self._time_wait_event = None
        if self.state == TIME_WAIT:
            self._enter_closed("time-wait-expired")

    def _enter_time_wait(self) -> None:
        self.state = TIME_WAIT
        if self._time_wait_event is not None:
            self._time_wait_event.cancel()
        self._time_wait_event = self.queue.schedule_in(
            2 * self.msl_cycles, self._on_time_wait, name="tcp-timewait")

    def _enter_closed(self, reason: str) -> None:
        already = self.state == CLOSED and self._closed_reason is not None
        self._cancel_timers()
        self.state = CLOSED
        if already:
            return
        self._closed_reason = reason
        if self.bus is not None and self._open_cycle is not None:
            self.bus.complete("net", "tcp-conn", self._open_cycle,
                              max(0, self.queue.now - self._open_cycle),
                              args={"conn": self.name, "reason": reason,
                                    "bytes_sent": self.stats.bytes_sent,
                                    "bytes_received":
                                        self.stats.bytes_received,
                                    "retransmits": self.stats.retransmits})
        if self.on_closed is not None:
            self.on_closed(self, reason)

    # -- inbound segment processing ------------------------------------------

    def on_segment(self, segment: TcpSegment) -> None:
        """Process one inbound segment (already checksum-verified)."""
        if self.state == CLOSED:
            return
        self.stats.segments_received += 1

        if segment.flags & FLAG_RST:
            if self._rst_acceptable(segment):
                self.stats.resets_received += 1
                self._enter_closed("reset-by-peer")
            return

        if self.state == SYN_SENT:
            self._segment_in_syn_sent(segment)
            return

        if segment.flags & FLAG_SYN:
            if self.state == SYN_RCVD and self.irs == segment.seq:
                # Retransmitted SYN (our SYN|ACK was lost): answer again.
                if self._flight:
                    self._retransmit_head()
            elif self.state in SYNCHRONIZED and segment.seq == self.irs:
                # Retransmitted SYN|ACK — our handshake ACK was lost and
                # the peer is stuck in SYN_RCVD.  Re-ACK so it can move.
                self._transmit(FLAG_ACK, self.snd_nxt, b"")
            return

        if segment.flags & FLAG_ACK:
            self._handle_ack(segment)
            if self.state == CLOSED:
                return

        if segment.payload or segment.flags & FLAG_FIN:
            self._handle_data(segment)

    def _rst_acceptable(self, segment: TcpSegment) -> bool:
        if self.state == SYN_SENT:
            return segment.flags & FLAG_ACK != 0 \
                and segment.ack == seq_add(self.iss, 1)
        if self.rcv_nxt is None:
            return True
        # In-window check, loose: the chaos wire never spoofs.
        return seq_le(self.rcv_nxt, segment.seq) \
            or seq_sub(self.rcv_nxt, segment.seq) <= self.rcv_buf

    def _segment_in_syn_sent(self, segment: TcpSegment) -> None:
        if not segment.flags & FLAG_SYN:
            return
        if segment.flags & FLAG_ACK \
                and segment.ack != seq_add(self.iss, 1):
            self.stats.resets_sent += 1
            self._emit(TcpSegment(self.local_port, self.remote_port,
                                  segment.ack, 0, FLAG_RST, 0))
            return
        self.irs = segment.seq
        self.rcv_nxt = seq_add(segment.seq, 1)
        self.snd_wnd = segment.window
        if segment.flags & FLAG_ACK:
            self.snd_una = segment.ack
            self._take_rtt_sample_for_flight(segment.ack)
            self._flight = [entry for entry in self._flight
                            if seq_lt(segment.ack, entry.end)]
            if self._rto_event is not None:
                self._rto_event.cancel()
                self._rto_event = None
            self._enter_established()
            self._transmit(FLAG_ACK, self.snd_nxt, b"")
            self._push()
        else:
            # Simultaneous open: answer SYN|ACK, stay half-open.
            self.state = SYN_RCVD
            self._transmit(FLAG_SYN | FLAG_ACK, self.iss, b"", track=False)

    # -- ACK processing ------------------------------------------------------

    def _take_rtt_sample_for_flight(self, ack: int) -> None:
        """RTT from the newest fully-acked, never-retransmitted entry
        (Karn's rule: ambiguous samples are discarded)."""
        sample: Optional[int] = None
        for entry in self._flight:
            if seq_le(entry.end, ack) and not entry.retransmitted:
                sample = self.queue.now - entry.sent_at
        if sample is None:
            return
        if self.srtt is None:
            self.srtt = sample
            self.rttvar = sample // 2
        else:
            delta = abs(self.srtt - sample)
            self.rttvar = (3 * self.rttvar + delta) // 4
            self.srtt = (7 * self.srtt + sample) // 8
        self.rto = min(max(self.srtt + max(1, 4 * self.rttvar),
                           self.rto_min), self.rto_max)

    def _handle_ack(self, segment: TcpSegment) -> None:
        ack = segment.ack
        prev_wnd = self.snd_wnd
        if seq_lt(self.snd_nxt, ack):
            return  # acks data we never sent; ignore
        if seq_lt(self.snd_una, ack):
            self.stats.acks_received += 1
            newly = seq_sub(ack, self.snd_una)
            self._take_rtt_sample_for_flight(ack)
            self._reclaim_flight(ack)
            self.snd_una = ack
            self._dupacks = 0
            self.snd_wnd = segment.window
            # Congestion window growth (RFC 5681).
            if self.cwnd < self.ssthresh:
                self._set_cwnd(self.cwnd + min(newly, self.mss))
            else:
                self._set_cwnd(self.cwnd
                               + max(1, self.mss * self.mss // self.cwnd))
            if self._flight:
                self._arm_rto()
            elif self._rto_event is not None:
                self._rto_event.cancel()
                self._rto_event = None
            self._after_ack_state_transitions(ack)
            self._push()
        else:
            # ack == snd_una (or older): duplicate or window update.
            self.snd_wnd = segment.window
            is_dup = (ack == self.snd_una and self._flight
                      and not segment.payload
                      and not segment.flags & (FLAG_SYN | FLAG_FIN)
                      and segment.window == prev_wnd)
            if is_dup:
                self._dupacks += 1
                self.stats.dupacks += 1
                if self._dupacks == 3:
                    self.stats.fast_retransmits += 1
                    self.ssthresh = max(self.flight_bytes // 2,
                                        2 * self.mss)
                    self._set_cwnd(self.ssthresh)
                    self._retransmit_head()
                    self._arm_rto()
            elif prev_wnd == 0 and self.snd_wnd > 0 and self._flight:
                # Window reopened: the stalled head (usually the probe)
                # goes out immediately instead of waiting for the RTO.
                self._retransmit_head()
                self._arm_rto()
                self._push()
            else:
                self._push()

    def _reclaim_flight(self, ack: int) -> None:
        kept: List[_FlightEntry] = []
        for entry in self._flight:
            if seq_le(entry.end, ack):
                continue               # fully acknowledged
            if seq_lt(entry.seq, ack) and entry.payload:
                # Partial ack (receiver clamped to its window): trim.
                drop = seq_sub(ack, entry.seq)
                entry.payload = entry.payload[drop:]
                entry.seq = ack
            kept.append(entry)
        self._flight = kept

    def _after_ack_state_transitions(self, ack: int) -> None:
        fin_acked = self._fin_sent and not any(
            entry.flags & FLAG_FIN for entry in self._flight)
        if self.state == SYN_RCVD and seq_le(seq_add(self.iss, 1), ack):
            self._enter_established()
            self._push()
            return
        if self.state == FIN_WAIT_1 and fin_acked:
            self.state = FIN_WAIT_2
        elif self.state == CLOSING and fin_acked:
            self._enter_time_wait()
        elif self.state == LAST_ACK and fin_acked:
            self._enter_closed("closed")

    # -- data receive --------------------------------------------------------

    def _handle_data(self, segment: TcpSegment) -> None:
        if self.state not in SYNCHRONIZED or self.rcv_nxt is None:
            return
        seq = segment.seq
        payload = segment.payload
        fin = bool(segment.flags & FLAG_FIN)

        # Trim history (retransmission overlap with already-received data).
        if payload and seq_lt(seq, self.rcv_nxt):
            behind = seq_sub(self.rcv_nxt, seq)
            if behind >= len(payload):
                payload = b""
                if fin and seq_add(seq, len(segment.payload)) \
                        == self.rcv_nxt and not self._fin_received:
                    pass      # FIN exactly next: handled below
                seq = self.rcv_nxt
            else:
                payload = payload[behind:]
                seq = self.rcv_nxt

        advanced = False
        if payload and seq == self.rcv_nxt:
            space = self.rcv_wnd
            accepted = payload[:space]
            if accepted:
                self._rcvbuf += accepted
                self.rcv_nxt = seq_add(self.rcv_nxt, len(accepted))
                self.stats.bytes_received += len(accepted)
                advanced = True
                if len(accepted) < len(payload):
                    fin = False     # window-clamped: FIN not yet in order
                self._drain_ooo()
        elif payload and seq_lt(self.rcv_nxt, seq):
            # Out of order: stash (bounded) and dup-ack below.
            self.stats.out_of_order += 1
            if len(self._ooo) < MAX_OOO_SEGMENTS \
                    and seq_sub(seq, self.rcv_nxt) <= self.rcv_buf:
                held = self._ooo.get(seq)
                if held is None or len(held) < len(payload):
                    self._ooo[seq] = payload
            fin = False             # FIN cannot be processed out of order

        fin_next = seq_add(segment.seq, len(segment.payload)) \
            if segment.payload else segment.seq
        if fin and not self._fin_received and fin_next == self.rcv_nxt:
            self._fin_received = True
            self.rcv_nxt = seq_add(self.rcv_nxt, 1)
            advanced = True
            if self.state == ESTABLISHED:
                self.state = CLOSE_WAIT
            elif self.state == FIN_WAIT_1:
                self.state = CLOSING
            elif self.state == FIN_WAIT_2:
                self._enter_time_wait()

        # Always acknowledge: in-order data advances rcv_nxt, stale or
        # out-of-order segments regenerate the duplicate ACK the peer's
        # fast-retransmit machinery counts.
        self._transmit(FLAG_ACK, self.snd_nxt, b"")
        if advanced and self._rcvbuf and self.on_readable is not None:
            self.on_readable(self)

    def _drain_ooo(self) -> None:
        while self._ooo:
            payload = self._ooo.pop(self.rcv_nxt, None)
            if payload is None:
                # Also fold stashes that start *behind* rcv_nxt now.
                stale = [seq for seq in self._ooo
                         if seq_le(seq, self.rcv_nxt)]
                folded = False
                for seq in stale:
                    chunk = self._ooo.pop(seq)
                    behind = seq_sub(self.rcv_nxt, seq)
                    if behind < len(chunk):
                        payload = chunk[behind:]
                        folded = True
                        break
                if not folded:
                    return
            space = self.rcv_wnd
            accepted = payload[:space]
            if not accepted:
                return
            self._rcvbuf += accepted
            self.rcv_nxt = seq_add(self.rcv_nxt, len(accepted))
            self.stats.bytes_received += len(accepted)
            if len(accepted) < len(payload):
                return


class TcpListener:
    """A passive port: creates a server connection per inbound SYN."""

    def __init__(self, endpoint: "TcpEndpoint", port: int,
                 on_accept: Callable[[TcpConnection], None],
                 conn_kwargs: Optional[dict] = None) -> None:
        self.endpoint = endpoint
        self.port = port
        self.on_accept = on_accept
        self.conn_kwargs = conn_kwargs or {}
        self.accepted = 0


def mac_for_ip(ip: bytes) -> bytes:
    """The lab network's static addressing: MAC derived from the IP."""
    return b"\x02\x00" + ip


class TcpEndpoint:
    """One host: owns connections, frames segments, demuxes arrivals.

    ``send_frame`` is the NIC: a callable taking packed Ethernet bytes.
    Inbound frames come through :meth:`receive_frame`; anything
    malformed (truncated headers, bad checksums, bad lengths) is
    dropped and counted in :attr:`malformed` — never raised — so a
    chaos wire cannot crash an endpoint.
    """

    def __init__(self, queue, cpu_hz: float, ip: bytes,
                 send_frame: Callable[[bytes], None],
                 mac: Optional[bytes] = None, mtu: int = 1500,
                 name: str = "", bus=None,
                 cwnd_histogram=None) -> None:
        self.queue = queue
        self.cpu_hz = cpu_hz
        self.ip = ip
        self.mac = mac or mac_for_ip(ip)
        self.send_frame = send_frame
        self.mtu = mtu
        self.name = name or "host"
        self.bus = bus
        self._cwnd_histogram = cwnd_histogram
        self._reassembler = Reassembler()
        self.connections: Dict[Tuple[bytes, int, int], TcpConnection] = {}
        self.listeners: Dict[int, TcpListener] = {}
        self._next_id = 0
        self._next_iss = 0x1000
        self._next_port = 0xC000
        self.frames_sent = 0
        self.frames_received = 0
        self.malformed = 0
        self.rst_sent = 0

    # -- wiring --------------------------------------------------------------

    def _next_identification(self) -> int:
        value = self._next_id
        self._next_id = (self._next_id + 1) & 0xFFFF
        return value

    def _allocate_iss(self) -> int:
        value = self._next_iss
        self._next_iss = (self._next_iss + 0x10000) & SEQ_MASK
        return value

    def _allocate_port(self) -> int:
        value = self._next_port
        self._next_port += 1
        if self._next_port > 0xFFFF:
            self._next_port = 0xC000
        return value

    def _segment_sender(self, remote_ip: bytes
                        ) -> Callable[[TcpSegment], None]:
        dst_mac = mac_for_ip(remote_ip)

        def send(segment: TcpSegment) -> None:
            packet = Ipv4Packet(src=self.ip, dst=remote_ip,
                                protocol=PROTO_TCP,
                                payload=segment.pack(self.ip, remote_ip),
                                identification=self._next_identification())
            for piece in fragment(packet, self.mtu):
                self.frames_sent += 1
                self.send_frame(EthernetFrame(
                    dst=dst_mac, src=self.mac, ethertype=ETHERTYPE_IPV4,
                    payload=piece.pack()).pack())
        return send

    # -- opening -------------------------------------------------------------

    def listen(self, port: int, on_accept: Callable[[TcpConnection], None],
               **conn_kwargs) -> TcpListener:
        listener = TcpListener(self, port, on_accept, conn_kwargs)
        self.listeners[port] = listener
        return listener

    def connect(self, remote_ip: bytes, remote_port: int,
                local_port: Optional[int] = None,
                **conn_kwargs) -> TcpConnection:
        port = local_port if local_port is not None \
            else self._allocate_port()
        conn = TcpConnection(
            self.queue, self.cpu_hz, port, remote_port,
            self._segment_sender(remote_ip), iss=self._allocate_iss(),
            name=f"{self.name}:{port}", bus=self.bus,
            cwnd_histogram=self._cwnd_histogram, **conn_kwargs)
        self.connections[(remote_ip, remote_port, port)] = conn
        conn.connect()
        return conn

    # -- inbound -------------------------------------------------------------

    def receive_frame(self, raw: bytes) -> None:
        self.frames_received += 1
        try:
            frame = EthernetFrame.unpack(raw)
            if frame.ethertype != ETHERTYPE_IPV4:
                return
            packet = Ipv4Packet.unpack(frame.payload)
        except ProtocolError:
            self.malformed += 1
            return
        if packet.dst != self.ip:
            return
        whole = self._reassembler.push(packet)
        if whole is None or whole.protocol != PROTO_TCP:
            return
        try:
            segment = TcpSegment.unpack(whole.payload, whole.src,
                                        whole.dst)
        except ProtocolError:
            self.malformed += 1
            return
        self._demux(whole.src, segment)

    def _demux(self, src_ip: bytes, segment: TcpSegment) -> None:
        key = (src_ip, segment.src_port, segment.dst_port)
        conn = self.connections.get(key)
        if conn is not None and conn.state != CLOSED:
            conn.on_segment(segment)
            return
        listener = self.listeners.get(segment.dst_port)
        if listener is not None and segment.flags & FLAG_SYN \
                and not segment.flags & FLAG_ACK:
            conn = TcpConnection(
                self.queue, self.cpu_hz, segment.dst_port,
                segment.src_port, self._segment_sender(src_ip),
                iss=self._allocate_iss(),
                name=f"{self.name}:{segment.dst_port}"
                     f"<{segment.src_port}",
                bus=self.bus, cwnd_histogram=self._cwnd_histogram,
                **listener.conn_kwargs)
            self.connections[key] = conn
            listener.accepted += 1
            listener.on_accept(conn)
            conn.accept_syn(segment)
            return
        if not segment.flags & FLAG_RST:
            # Closed port (or dead connection): RFC 793 reset.
            self.rst_sent += 1
            if segment.flags & FLAG_ACK:
                reply = TcpSegment(segment.dst_port, segment.src_port,
                                   segment.ack, 0, FLAG_RST, 0)
            else:
                reply = TcpSegment(
                    segment.dst_port, segment.src_port, 0,
                    seq_add(segment.seq, segment.seq_len),
                    FLAG_RST | FLAG_ACK, 0)
            self._segment_sender(src_ip)(reply)

    # -- bookkeeping ---------------------------------------------------------

    def aggregate_stats(self) -> TcpStats:
        total = TcpStats()
        for conn in self.connections.values():
            total.add(conn.stats)
        return total

    def stats(self) -> dict:
        aggregate = self.aggregate_stats()
        return {
            "frames_sent": self.frames_sent,
            "frames_received": self.frames_received,
            "malformed": self.malformed,
            "rst_sent": self.rst_sent,
            "connections": len(self.connections),
            **aggregate.as_dict(),
        }
