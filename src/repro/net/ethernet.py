"""Ethernet II framing."""

from __future__ import annotations

import struct
from dataclasses import dataclass

from repro.errors import ProtocolError

ETHERTYPE_IPV4 = 0x0800
ETHERTYPE_ARP = 0x0806

HEADER_LEN = 14
MIN_PAYLOAD = 46
MAX_PAYLOAD = 1500  # standard MTU
BROADCAST = b"\xff" * 6


def parse_mac(text: str) -> bytes:
    """``"00:11:22:33:44:55"`` -> 6 bytes."""
    parts = text.split(":")
    if len(parts) != 6:
        raise ProtocolError(f"bad MAC address {text!r}")
    try:
        raw = bytes(int(p, 16) for p in parts)
    except ValueError as exc:
        raise ProtocolError(f"bad MAC address {text!r}") from exc
    return raw


def format_mac(mac: bytes) -> str:
    return ":".join(f"{b:02x}" for b in mac)


@dataclass(frozen=True)
class EthernetFrame:
    dst: bytes
    src: bytes
    ethertype: int
    payload: bytes

    def __post_init__(self) -> None:
        if len(self.dst) != 6 or len(self.src) != 6:
            raise ProtocolError("MAC addresses must be 6 bytes")
        if len(self.payload) > MAX_PAYLOAD:
            raise ProtocolError(
                f"payload of {len(self.payload)} exceeds MTU {MAX_PAYLOAD}")

    def pack(self) -> bytes:
        payload = self.payload
        if len(payload) < MIN_PAYLOAD:
            payload = payload + b"\x00" * (MIN_PAYLOAD - len(payload))
        return (self.dst + self.src
                + struct.pack(">H", self.ethertype) + payload)

    @classmethod
    def unpack(cls, raw: bytes) -> "EthernetFrame":
        if len(raw) < HEADER_LEN + MIN_PAYLOAD:
            raise ProtocolError(f"runt frame of {len(raw)} bytes")
        dst, src = raw[0:6], raw[6:12]
        ethertype = struct.unpack(">H", raw[12:14])[0]
        return cls(dst=dst, src=src, ethertype=ethertype,
                   payload=raw[HEADER_LEN:])
