"""IPv4: header packing, header checksum, fragmentation and reassembly."""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import ProtocolError
from repro.net.checksum import internet_checksum, verify_checksum

PROTO_TCP = 6
PROTO_UDP = 17
HEADER_LEN = 20
#: Reassembly guard: an IPv4 datagram can never exceed 65535 bytes, so
#: any fragment whose end would land past that is malformed.
MAX_DATAGRAM = 0xFFFF
FLAG_DF = 0x2
FLAG_MF = 0x1


def parse_ipv4(text: str) -> bytes:
    parts = text.split(".")
    if len(parts) != 4:
        raise ProtocolError(f"bad IPv4 address {text!r}")
    try:
        raw = bytes(int(p) for p in parts)
    except ValueError as exc:
        raise ProtocolError(f"bad IPv4 address {text!r}") from exc
    return raw


def format_ipv4(addr: bytes) -> str:
    return ".".join(str(b) for b in addr)


@dataclass(frozen=True)
class Ipv4Packet:
    src: bytes
    dst: bytes
    protocol: int
    payload: bytes
    identification: int = 0
    ttl: int = 64
    flags: int = 0
    fragment_offset: int = 0  # in 8-byte units

    def __post_init__(self) -> None:
        if len(self.src) != 4 or len(self.dst) != 4:
            raise ProtocolError("IPv4 addresses must be 4 bytes")

    def pack(self) -> bytes:
        total_length = HEADER_LEN + len(self.payload)
        flags_frag = (self.flags << 13) | (self.fragment_offset & 0x1FFF)
        header = struct.pack(
            ">BBHHHBBH4s4s",
            (4 << 4) | 5,            # version 4, IHL 5
            0,                       # DSCP/ECN
            total_length,
            self.identification,
            flags_frag,
            self.ttl,
            self.protocol,
            0,                       # checksum placeholder
            self.src,
            self.dst)
        checksum = internet_checksum(header)
        return header[:10] + struct.pack(">H", checksum) + header[12:] \
            + self.payload

    @classmethod
    def unpack(cls, raw: bytes) -> "Ipv4Packet":
        if len(raw) < HEADER_LEN:
            raise ProtocolError(f"IPv4 packet of {len(raw)} bytes too short")
        version_ihl = raw[0]
        if version_ihl >> 4 != 4:
            raise ProtocolError(f"not IPv4: version {version_ihl >> 4}")
        ihl = (version_ihl & 0xF) * 4
        if ihl < HEADER_LEN or len(raw) < ihl:
            raise ProtocolError(f"bad IHL {ihl}")
        if not verify_checksum(raw[:ihl]):
            raise ProtocolError("IPv4 header checksum mismatch")
        (_, _, total_length, identification, flags_frag, ttl, protocol,
         _, src, dst) = struct.unpack(">BBHHHBBH4s4s", raw[:HEADER_LEN])
        if total_length > len(raw):
            raise ProtocolError(
                f"total length {total_length} exceeds frame {len(raw)}")
        if total_length < ihl:
            raise ProtocolError(
                f"total length {total_length} shorter than header {ihl}")
        return cls(src=src, dst=dst, protocol=protocol,
                   payload=raw[ihl:total_length],
                   identification=identification, ttl=ttl,
                   flags=flags_frag >> 13,
                   fragment_offset=flags_frag & 0x1FFF)


def fragment(packet: Ipv4Packet, mtu: int) -> List[Ipv4Packet]:
    """Split a packet so every fragment fits in ``mtu`` bytes on the wire."""
    max_payload = (mtu - HEADER_LEN) & ~7  # offsets count 8-byte units
    if max_payload <= 0:
        raise ProtocolError(f"MTU {mtu} cannot carry IPv4")
    if HEADER_LEN + len(packet.payload) <= mtu:
        return [packet]
    if packet.flags & FLAG_DF:
        raise ProtocolError("fragmentation needed but DF set")
    fragments = []
    offset = 0
    while offset < len(packet.payload):
        chunk = packet.payload[offset:offset + max_payload]
        last = offset + len(chunk) >= len(packet.payload)
        fragments.append(Ipv4Packet(
            src=packet.src, dst=packet.dst, protocol=packet.protocol,
            payload=chunk, identification=packet.identification,
            ttl=packet.ttl,
            flags=packet.flags | (0 if last else FLAG_MF),
            fragment_offset=(packet.fragment_offset * 8 + offset) // 8))
        offset += len(chunk)
    return fragments


@dataclass
class _ReassemblyState:
    chunks: Dict[int, bytes] = field(default_factory=dict)
    total_length: Optional[int] = None


class Reassembler:
    """Collects fragments keyed by (src, dst, protocol, identification)."""

    def __init__(self) -> None:
        self._flows: Dict[Tuple[bytes, bytes, int, int],
                          _ReassemblyState] = {}

    def push(self, packet: Ipv4Packet) -> Optional[Ipv4Packet]:
        """Feed one fragment; returns the whole packet when complete.

        Malformed flows raise :class:`ProtocolError` (and drop all state
        for the flow so one poisoned fragment cannot wedge the
        identification slot): fragments extending past the 65535-byte
        datagram limit, overlapping fragments that disagree on content,
        and trailing data past a shorter final fragment.  An exact
        duplicate of an already-held fragment is silently ignored (the
        chaos wire duplicates frames on purpose).
        """
        if packet.fragment_offset == 0 and not packet.flags & FLAG_MF:
            return packet  # unfragmented
        key = (packet.src, packet.dst, packet.protocol,
               packet.identification)
        state = self._flows.setdefault(key, _ReassemblyState())
        byte_offset = packet.fragment_offset * 8
        end = byte_offset + len(packet.payload)
        if end > MAX_DATAGRAM:
            del self._flows[key]
            raise ProtocolError(
                f"fragment at {byte_offset}+{len(packet.payload)} exceeds "
                f"the {MAX_DATAGRAM}-byte datagram limit")
        for offset, chunk in state.chunks.items():
            if byte_offset < offset + len(chunk) and offset < end:
                same = (offset == byte_offset
                        and chunk == packet.payload)
                if not same:
                    del self._flows[key]
                    raise ProtocolError(
                        f"overlapping fragment at {byte_offset} "
                        f"(held {offset}+{len(chunk)})")
        state.chunks[byte_offset] = packet.payload
        if not packet.flags & FLAG_MF:
            if state.total_length is not None \
                    and state.total_length != end:
                del self._flows[key]
                raise ProtocolError("conflicting final fragments")
            state.total_length = end
        if state.total_length is None:
            return None
        if any(offset + len(chunk) > state.total_length
               for offset, chunk in state.chunks.items()):
            del self._flows[key]
            raise ProtocolError(
                f"fragment past total length {state.total_length}")
        have = sum(len(c) for c in state.chunks.values())
        if have < state.total_length:
            return None
        payload = bytearray(state.total_length)
        cursor = 0
        for offset in sorted(state.chunks):
            chunk = state.chunks[offset]
            if offset != cursor:
                return None  # hole: keep waiting
            payload[offset:offset + len(chunk)] = chunk
            cursor = offset + len(chunk)
        del self._flows[key]
        return Ipv4Packet(src=packet.src, dst=packet.dst,
                          protocol=packet.protocol,
                          payload=bytes(payload),
                          identification=packet.identification,
                          ttl=packet.ttl)

    @property
    def pending_flows(self) -> int:
        return len(self._flows)
