"""RFC 1071 internet checksum.

Used by the IPv4 header checksum and the UDP/TCP checksums (over the
pseudo-header).  Properties the test suite verifies: inserting the
computed checksum makes the recomputation zero; the sum is independent
of 16-bit word order; odd-length data is padded with a zero byte.

The sum is computed with :mod:`array` in 16-bit words: because the
one's-complement sum is independent of word *byte order* (RFC 1071
§2(B)), we can sum the words in host endianness and byte-swap the
folded result once, which is ~30x faster than a per-byte Python loop —
this is on the per-segment hot path of the TCP streaming workload.
"""

from __future__ import annotations

import sys
from array import array

_LITTLE_ENDIAN = sys.byteorder == "little"


def ones_complement_sum(data: bytes) -> int:
    """16-bit one's-complement sum with end-around carry."""
    if len(data) % 2:
        data = data + b"\x00"
    total = sum(array("H", data))
    while total > 0xFFFF:
        total = (total & 0xFFFF) + (total >> 16)
    if _LITTLE_ENDIAN:
        total = ((total & 0xFF) << 8) | (total >> 8)
    return total


def internet_checksum(data: bytes) -> int:
    """The checksum field value for ``data`` (checksum field zeroed)."""
    return (~ones_complement_sum(data)) & 0xFFFF


def verify_checksum(data: bytes) -> bool:
    """True when ``data`` (checksum field included) sums to all-ones."""
    return ones_complement_sum(data) == 0xFFFF
