"""RFC 1071 internet checksum.

Used by the IPv4 header checksum and the UDP checksum (over the
pseudo-header).  Properties the test suite verifies: inserting the
computed checksum makes the recomputation zero; the sum is independent
of 16-bit word order; odd-length data is padded with a zero byte.
"""

from __future__ import annotations


def ones_complement_sum(data: bytes) -> int:
    """16-bit one's-complement sum with end-around carry."""
    if len(data) % 2:
        data = data + b"\x00"
    total = 0
    for index in range(0, len(data), 2):
        total += (data[index] << 8) | data[index + 1]
    while total > 0xFFFF:
        total = (total & 0xFFFF) + (total >> 16)
    return total


def internet_checksum(data: bytes) -> int:
    """The checksum field value for ``data`` (checksum field zeroed)."""
    return (~ones_complement_sum(data)) & 0xFFFF


def verify_checksum(data: bytes) -> bool:
    """True when ``data`` (checksum field included) sums to all-ones."""
    return ones_complement_sum(data) == 0xFFFF
