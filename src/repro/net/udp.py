"""UDP datagrams with pseudo-header checksum (RFC 768)."""

from __future__ import annotations

import struct
from dataclasses import dataclass

from repro.errors import ProtocolError
from repro.net.checksum import internet_checksum, ones_complement_sum
from repro.net.ipv4 import PROTO_UDP

HEADER_LEN = 8


def _pseudo_header(src_ip: bytes, dst_ip: bytes, udp_length: int) -> bytes:
    return src_ip + dst_ip + struct.pack(">BBH", 0, PROTO_UDP, udp_length)


@dataclass(frozen=True)
class UdpDatagram:
    src_port: int
    dst_port: int
    payload: bytes

    def __post_init__(self) -> None:
        for port in (self.src_port, self.dst_port):
            if not 0 <= port <= 0xFFFF:
                raise ProtocolError(f"bad port {port}")
        if HEADER_LEN + len(self.payload) > 0xFFFF:
            raise ProtocolError(f"UDP payload of {len(self.payload)} too big")

    def pack(self, src_ip: bytes, dst_ip: bytes) -> bytes:
        length = HEADER_LEN + len(self.payload)
        header = struct.pack(">HHHH", self.src_port, self.dst_port,
                             length, 0)
        checksum = internet_checksum(
            _pseudo_header(src_ip, dst_ip, length) + header + self.payload)
        if checksum == 0:
            checksum = 0xFFFF  # 0 means "no checksum" on the wire
        return struct.pack(">HHHH", self.src_port, self.dst_port, length,
                           checksum) + self.payload

    @classmethod
    def unpack(cls, raw: bytes, src_ip: bytes = None,
               dst_ip: bytes = None) -> "UdpDatagram":
        """Parse; verifies the checksum when the IPs are supplied."""
        if len(raw) < HEADER_LEN:
            raise ProtocolError(f"UDP datagram of {len(raw)} bytes too short")
        src_port, dst_port, length, checksum = struct.unpack(">HHHH",
                                                             raw[:8])
        if length < HEADER_LEN or length > len(raw):
            raise ProtocolError(f"bad UDP length {length}")
        if checksum and src_ip is not None and dst_ip is not None:
            total = ones_complement_sum(
                _pseudo_header(src_ip, dst_ip, length) + raw[:length])
            if total != 0xFFFF:
                raise ProtocolError("UDP checksum mismatch")
        return cls(src_port=src_port, dst_port=dst_port,
                   payload=raw[HEADER_LEN:length])
