"""ARP (RFC 826), IPv4-over-Ethernet flavour only."""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Dict, Optional

from repro.errors import ProtocolError

OP_REQUEST = 1
OP_REPLY = 2
PACKET_LEN = 28


@dataclass(frozen=True)
class ArpPacket:
    operation: int
    sender_mac: bytes
    sender_ip: bytes
    target_mac: bytes
    target_ip: bytes

    def pack(self) -> bytes:
        return struct.pack(">HHBBH6s4s6s4s",
                           1,            # hardware: Ethernet
                           0x0800,       # protocol: IPv4
                           6, 4,
                           self.operation,
                           self.sender_mac, self.sender_ip,
                           self.target_mac, self.target_ip)

    @classmethod
    def unpack(cls, raw: bytes) -> "ArpPacket":
        if len(raw) < PACKET_LEN:
            raise ProtocolError(f"ARP packet of {len(raw)} bytes too short")
        (hw, proto, hw_len, proto_len, operation, sender_mac, sender_ip,
         target_mac, target_ip) = struct.unpack(">HHBBH6s4s6s4s",
                                                raw[:PACKET_LEN])
        if hw != 1 or proto != 0x0800 or hw_len != 6 or proto_len != 4:
            raise ProtocolError("not an IPv4-over-Ethernet ARP packet")
        return cls(operation=operation, sender_mac=sender_mac,
                   sender_ip=sender_ip, target_mac=target_mac,
                   target_ip=target_ip)


def make_request(sender_mac: bytes, sender_ip: bytes,
                 target_ip: bytes) -> ArpPacket:
    return ArpPacket(OP_REQUEST, sender_mac, sender_ip, b"\x00" * 6,
                     target_ip)


def make_reply(request: ArpPacket, my_mac: bytes) -> ArpPacket:
    return ArpPacket(OP_REPLY, my_mac, request.target_ip,
                     request.sender_mac, request.sender_ip)


class ArpCache:
    """IP -> MAC cache with learn-on-reply semantics."""

    def __init__(self) -> None:
        self._entries: Dict[bytes, bytes] = {}

    def learn(self, ip: bytes, mac: bytes) -> None:
        self._entries[ip] = mac

    def lookup(self, ip: bytes) -> Optional[bytes]:
        return self._entries.get(ip)

    def handle(self, packet: ArpPacket) -> None:
        """Learn the sender mapping from any ARP packet we see."""
        self.learn(packet.sender_ip, packet.sender_mac)

    def __len__(self) -> int:
        return len(self._entries)
