"""Ethernet / ARP / IPv4 / UDP / TCP protocol stack."""

from repro.net.arp import ArpCache, ArpPacket, make_reply, make_request
from repro.net.checksum import internet_checksum, verify_checksum
from repro.net.ethernet import (
    ETHERTYPE_ARP,
    ETHERTYPE_IPV4,
    EthernetFrame,
    format_mac,
    parse_mac,
)
from repro.net.ipv4 import (
    Ipv4Packet,
    Reassembler,
    format_ipv4,
    fragment,
    parse_ipv4,
)
from repro.net.stack import ReceivedDatagram, UdpReceiver, UdpStack
from repro.net.tcp import (
    TcpConnection,
    TcpEndpoint,
    TcpListener,
    TcpSegment,
    TcpStats,
)
from repro.net.udp import UdpDatagram

__all__ = [
    "ArpCache",
    "ArpPacket",
    "make_reply",
    "make_request",
    "internet_checksum",
    "verify_checksum",
    "EthernetFrame",
    "ETHERTYPE_ARP",
    "ETHERTYPE_IPV4",
    "format_mac",
    "parse_mac",
    "Ipv4Packet",
    "Reassembler",
    "fragment",
    "parse_ipv4",
    "format_ipv4",
    "UdpDatagram",
    "UdpStack",
    "UdpReceiver",
    "ReceivedDatagram",
    "TcpSegment",
    "TcpConnection",
    "TcpEndpoint",
    "TcpListener",
    "TcpStats",
]
