"""A small UDP/IP stack bound to an Ethernet endpoint.

The guest OS driver uses :class:`UdpStack.build_udp_frames` to turn an
application payload into wire frames (with IP fragmentation when the
payload exceeds the MTU), and the host-side measurement sink uses
:class:`UdpReceiver` to parse, reassemble and validate what arrives —
that validation is what the throughput benchmarks count.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

from repro.errors import ProtocolError
from repro.net.arp import ArpCache
from repro.net.ethernet import (
    ETHERTYPE_IPV4,
    MAX_PAYLOAD,
    EthernetFrame,
)
from repro.net.ipv4 import (
    PROTO_UDP,
    Ipv4Packet,
    Reassembler,
    fragment,
)
from repro.net.udp import UdpDatagram
from repro.obs.metrics import global_registry


@dataclass
class UdpStack:
    """Sender-side stack state: addresses plus an IP identification seq."""

    mac: bytes
    ip: bytes
    mtu: int = MAX_PAYLOAD
    _next_id: int = 0
    arp: ArpCache = field(default_factory=ArpCache)

    def next_identification(self) -> int:
        value = self._next_id
        self._next_id = (self._next_id + 1) & 0xFFFF
        return value

    def build_udp_frames(self, payload: bytes, src_port: int,
                         dst_mac: bytes, dst_ip: bytes,
                         dst_port: int) -> List[bytes]:
        """Application payload -> list of packed Ethernet frames."""
        datagram = UdpDatagram(src_port, dst_port, payload)
        packet = Ipv4Packet(src=self.ip, dst=dst_ip, protocol=PROTO_UDP,
                            payload=datagram.pack(self.ip, dst_ip),
                            identification=self.next_identification())
        frames = []
        for piece in fragment(packet, self.mtu):
            frames.append(EthernetFrame(dst=dst_mac, src=self.mac,
                                        ethertype=ETHERTYPE_IPV4,
                                        payload=piece.pack()).pack())
        return frames

    def frames_for_payload(self, payload_len: int) -> int:
        """How many wire frames a payload of this size produces."""
        udp_len = 8 + payload_len
        max_fragment = (self.mtu - 20) & ~7
        if udp_len + 20 <= self.mtu:
            return 1
        return (udp_len + max_fragment - 1) // max_fragment


@dataclass
class ReceivedDatagram:
    src_ip: bytes
    dst_ip: bytes
    datagram: UdpDatagram


class UdpReceiver:
    """Host-side sink: frames in, validated UDP datagrams out.

    Robustness contract: :meth:`receive_frame` never raises, no matter
    how malformed the input — truncated Ethernet/IPv4 headers, bad
    total-length fields, checksum mismatches, and overlapping or
    oversized fragments are all dropped and counted (``malformed``,
    mirrored to the ``net.rx.malformed`` registry counter; ``errors``
    keeps its legacy meaning as an alias of the same count).
    """

    def __init__(self, ip: Optional[bytes] = None) -> None:
        self.ip = ip
        self._reassembler = Reassembler()
        self.datagrams: List[ReceivedDatagram] = []
        self.bytes_received = 0
        self.frames_seen = 0
        self.errors = 0
        self.malformed = 0
        #: Optional callback per delivered datagram.
        self.on_datagram: Optional[Callable[[ReceivedDatagram], None]] = None

    def _drop_malformed(self) -> None:
        self.errors += 1
        self.malformed += 1
        global_registry().counter(
            "net.rx.malformed",
            help="frames dropped for malformed headers/fragments").inc()

    def receive_frame(self, raw: bytes) -> Optional[ReceivedDatagram]:
        self.frames_seen += 1
        try:
            frame = EthernetFrame.unpack(raw)
            if frame.ethertype != ETHERTYPE_IPV4:
                return None
            packet = Ipv4Packet.unpack(frame.payload)
        except ProtocolError:
            self._drop_malformed()
            return None
        if self.ip is not None and packet.dst != self.ip:
            return None
        try:
            whole = self._reassembler.push(packet)
        except ProtocolError:
            self._drop_malformed()
            return None
        if whole is None or whole.protocol != PROTO_UDP:
            return None
        try:
            datagram = UdpDatagram.unpack(whole.payload, whole.src,
                                          whole.dst)
        except ProtocolError:
            self._drop_malformed()
            return None
        received = ReceivedDatagram(whole.src, whole.dst, datagram)
        self.datagrams.append(received)
        self.bytes_received += len(datagram.payload)
        if self.on_datagram is not None:
            self.on_datagram(received)
        return received
