"""Test-support utilities shared by the tests and benchmark suites."""
