"""Global per-test timeout, without any pytest plugin dependency.

A supervisor bug that stops the fleet poll loop from converging would
otherwise stall CI until the job-level timeout; this hook makes the
*test* fail fast with a stack-trace-bearing error instead.  SIGALRM
fires only on the main thread and only on platforms that have it
(POSIX); elsewhere the hook is a no-op.

Wire-up: a ``conftest.py`` re-exports the hook::

    from repro.testing.timeout import pytest_runtest_call  # noqa: F401

Override the default with ``REPRO_TEST_TIMEOUT`` (seconds; ``0``
disables).
"""

from __future__ import annotations

import os
import signal
import threading

DEFAULT_TIMEOUT_S = 300


def _timeout_seconds() -> int:
    raw = os.environ.get("REPRO_TEST_TIMEOUT", "")
    if raw:
        try:
            return max(0, int(float(raw)))
        except ValueError:
            pass
    return DEFAULT_TIMEOUT_S


def pytest_runtest_call(item):
    """pytest hook: arm SIGALRM around the test body."""
    seconds = _timeout_seconds()
    if seconds <= 0 or not hasattr(signal, "SIGALRM") \
            or threading.current_thread() \
            is not threading.main_thread():
        yield
        return

    def _expired(_signum, _frame):
        raise TimeoutError(
            f"test exceeded the global {seconds}s timeout "
            f"(REPRO_TEST_TIMEOUT overrides)")

    previous = signal.signal(signal.SIGALRM, _expired)
    signal.alarm(seconds)
    try:
        yield
    finally:
        signal.alarm(0)
        signal.signal(signal.SIGALRM, previous)


# pytest>=7 treats the hook as a plain function unless marked; wrap it
# explicitly so `yield` runs the test body.
try:
    import pytest
    pytest_runtest_call = pytest.hookimpl(hookwrapper=True)(
        pytest_runtest_call)
except ImportError:   # pragma: no cover — pytest always present in CI
    pass
